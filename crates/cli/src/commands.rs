//! The `pgl` subcommand implementations.

use crate::args::ArgParser;
use draw::{rasterize, to_svg, DrawOptions};
use gpu_sim::{GpuEngine, GpuSpec, KernelConfig};
use layout_core::batch::BatchEngine;
use layout_core::coords::{DataLayout, Precision};
use layout_core::cpu::CpuEngine;
use layout_core::{LayoutConfig, Toggle};
use pangraph::lean::LeanGraph;
use pangraph::stats::GraphStats;
use pangraph::{parse_gfa_reader, write_gfa, VariationGraph};
use pgio::{layout_to_tsv, load_lay, save_lay};
use pgl_service::{
    run_batch, BatchOptions, EngineRegistry, HttpConfig, HttpServer, JobState, LayoutService,
    Priority, ServiceConfig,
};
use pgmetrics::{path_stress, sampled_path_stress, SamplingConfig};
use std::path::Path;
use std::sync::Arc;
use workloads::hprc_catalog;

type CmdResult = Result<(), String>;

/// Parse an `auto|on|off` toggle flag (absent ⇒ auto).
fn parse_toggle(p: &ArgParser, flag: &str) -> Result<Toggle, String> {
    match p.value(flag) {
        None => Ok(Toggle::Auto),
        Some(v) => Toggle::parse_name(v).ok_or_else(|| format!("bad {flag} {v:?} (auto, on, off)")),
    }
}

/// Per-subcommand usage text for `pgl <cmd> --help`.
pub fn usage(cmd: &str) -> Option<&'static str> {
    Some(match cmd {
        "gen" => {
            "pgl gen --preset <hla|mhc|chr1..chr22|chrX|chrY> [--scale F] [--seed N] -o <out.gfa>\n\
             Synthesize an HPRC-like pangenome graph."
        }
        "stats" => "pgl stats <in.gfa>\nPrint Table I-style graph properties.",
        "sort" => {
            "pgl sort <in.gfa> -o <out.gfa> [--iters N] [--seed N]\n\
             1D path-SGD node sort (odgi `sort -p Y` analog); run before `layout`\n\
             on graphs whose node numbering does not follow the backbone."
        }
        "layout" => {
            "pgl layout <in.gfa> -o <out.lay> [--gpu | --gpu-a100 | --batch <size>]\n\
             \u{20}          [--threads N] [--iters N] [--seed N] [--soa] [--f32]\n\
             \u{20}          [--term-block N] [--simd auto|on|off]\n\
             \u{20}          [--write-shard auto|on|off]\n\
             Run path-guided SGD layout with the chosen engine.\n\
             --f32 stores and computes coordinates in single precision (the paper's\n\
             GPU coordinate format; half the memory traffic, stress parity within\n\
             5%). --soa uses odgi's struct-of-arrays memory layout instead of the\n\
             cache-friendly AoS default. --term-block N sets how many terms each\n\
             worker samples before applying them in one batched pass (default 256;\n\
             purely a performance knob — single-threaded results are bit-identical\n\
             across block sizes). --simd selects the lane-vectorized apply kernel\n\
             (auto: on for multithreaded runs; single-thread runs keep the scalar\n\
             loop, which is bit-stable and measured faster). --write-shard gives each thread a node\n\
             range it alone writes, exchanging cross-range terms through spill\n\
             buffers (auto: on at >= 4 threads; off = pure Hogwild)."
        }
        "stress" => {
            "pgl stress <in.gfa> <in.lay> [--exact] [--samples-per-node N] [--seed N]\n\
             Score a layout with sampled (and optionally exact) path stress."
        }
        "draw" => {
            "pgl draw <in.gfa> <in.lay> -o <out.svg|out.ppm> [--width N] [--links] [--ppm]\n\
             Render a layout."
        }
        "tsv" => "pgl tsv <in.lay> -o <out.tsv>\nExport layout coordinates as TSV.",
        "serve" => {
            "pgl serve [--addr HOST] [--port N] [--workers N] [--cache N] [--graphs N]\n\
             \u{20}         [--cache-dir DIR] [--cache-max-bytes N] [--cache-ttl SECS]\n\
             \u{20}         [--preload-graphs DIR] [--graph-quota N]\n\
             \u{20}         [--max-conns N] [--keep-alive SECS] [--rate-limit REQ_PER_SEC]\n\
             \u{20}         [--join COORD_ADDR] [--advertise HOST:PORT] [--heartbeat-ms N]\n\
             \u{20}         [--log-level debug|info|warn|error|off] [--log-json]\n\
             Serve layouts over HTTP. The API is versioned under /v1 (unversioned\n\
             paths remain as deprecated aliases). Upload-once workflow: POST\n\
             /v1/graphs (GFA body) parses the graph once and returns {graph_id,...};\n\
             then POST /v1/jobs?graph=<id> lays it out by reference (engine=cpu|\n\
             batch|gpu|gpu-a100, iters, threads, seed, batch, soa, precision=f32|\n\
             f64, term_block=N) with no re-upload\n\
             or re-parse — plus scheduling params priority=interactive|normal|bulk,\n\
             client=<key> (fair-share identity, default: peer IP), ttl_ms=<n> (fail\n\
             if still queued after n ms). Jobs are scheduled by priority band with\n\
             deficit round-robin across clients inside each band, so one client's\n\
             bulk flood cannot starve another's interactive job.\n\
             GET /v1/jobs/<id> polls status; GET /v1/jobs/<id>/events streams the\n\
             job's event log (chunked NDJSON: state transitions + progress) until\n\
             the job is terminal — no polling. GET /v1/graphs lists stored graphs\n\
             with an ETag (If-None-Match => 304), DELETE /v1/graphs/<id> drops one.\n\
             POST /v1/jobs/<id>/cancel, GET /v1/result/<id>[?format=lay],\n\
             GET /v1/stats, /v1/metrics, /v1/engines, /v1/healthz as before.\n\
             --preload-graphs DIR interns every .gfa/.lean in DIR at startup so a\n\
             fresh server answers by-reference requests immediately (counted in\n\
             /stats as graphs.preloaded). Identical requests are answered from the\n\
             content-addressed layout cache (capacity --cache, default 64); --graphs\n\
             bounds resident parsed graphs (default 16, 0 = unbounded); --cache-dir\n\
             adds disk tiers for both that survive restarts, each capped at\n\
             --cache-max-bytes (oldest spills evicted first; 0 = unbounded) and\n\
             aged out by --cache-ttl seconds (0 = keep forever; expiries are\n\
             counted in /stats as disk_ttl_evictions). --graph-quota N caps\n\
             concurrently running jobs per graph (0 = unlimited), so one hot\n\
             graph cannot monopolize the worker pool.\n\
             Connections are bounded: --max-conns handler threads (default 64) plus\n\
             an equal-sized queue; beyond that the server sheds load with 503 +\n\
             Retry-After. --rate-limit N throttles each client IP to N req/s (429\n\
             beyond a one-second burst; 0 = off). HTTP/1.1 keep-alive is on by\n\
             default (idle timeout --keep-alive seconds, default 5; 0 closes after\n\
             every response).\n\
             Observability: structured logs go to stderr (--log-level, default\n\
             info; --log-json emits one JSON object per line for collectors).\n\
             GET /v1/jobs/<id>/trace returns the job's phase timeline (queue wait,\n\
             parse, layout, spill — offsets + durations); /v1/metrics serves\n\
             Prometheus text with sliding-window latency/phase histograms, queue\n\
             and cache gauges, and live engine updates/s.\n\
             --join COORD_ADDR enrolls this server as a worker in a pgl\n\
             coordinator fleet: it registers, heartbeats on the coordinator's\n\
             interval (--heartbeat-ms is only the initial cadence), and reports\n\
             role/coordinator/last-heartbeat age in /healthz. --advertise is the\n\
             address the coordinator forwards jobs to (default: 127.0.0.1 with\n\
             the bound port — set it when workers are on other hosts)."
        }
        "coordinator" => {
            "pgl coordinator [--addr HOST] [--port N] [--heartbeat-ms N] [--max-conns N]\n\
             \u{20}               [--graph-quota N] [--journal-dir DIR] [--vault-max-bytes N]\n\
             \u{20}               [--log-level debug|info|warn|error|off] [--log-json]\n\
             Run the cluster coordinator: speaks the same /v1 surface as pgl serve\n\
             and routes each job across a fleet of pgl serve --join workers.\n\
             Placement is rendezvous (consistent) hashing on the job's graph\n\
             content hash, so every job for a graph lands on the worker whose\n\
             caches already hold it, and membership changes remap only ~1/N of\n\
             graphs. POST /v1/graphs interns GFA at the coordinator; job bodies\n\
             are forwarded by reference and the graph is pushed to the owning\n\
             worker on its first miss. Inline-GFA submissions are interned\n\
             transparently. Workers heartbeat every --heartbeat-ms (default\n\
             2000); after 3 missed intervals a worker is declared dead, its\n\
             in-flight jobs are requeued and re-routed to the next worker in the\n\
             ring order (at-least-once; a job is failed after 5 attempts).\n\
             Queueing is the same fair scheduler as a single server — priority\n\
             bands, deficit round-robin across clients, optional --graph-quota\n\
             cap on concurrently forwarded jobs per graph — now fleet-wide.\n\
             GET /v1/jobs/<id>, /events, /trace, /result/<id> proxy to the\n\
             owning worker with ids rewritten; an event stream held across a\n\
             worker death re-attaches to the replacement, resuming from the\n\
             last relayed sequence for the same run and deduplicating replays.\n\
             GET /v1/stats aggregates per-worker queue depth, cache hit\n\
             ratios, and pgl_engine_* telemetry into a fleet rollup;\n\
             /v1/metrics exposes pgl_coord_* counters; /v1/healthz reports\n\
             role=coordinator plus alive/total worker counts.\n\
             Durability: --journal-dir DIR arms a write-ahead job journal —\n\
             every accepted job is fsync'd before its 202, uploaded graphs\n\
             spill to DIR/vault (LRU-capped by --vault-max-bytes; 0 = no cap),\n\
             and a restart on the same DIR replays the journal: queued jobs\n\
             re-enter the scheduler, in-flight jobs are adopted or requeued by\n\
             probing their recorded worker (at-least-once), and finished jobs\n\
             keep answering GET /v1/jobs/<id>. Each boot bumps a journal epoch\n\
             advertised in heartbeat replies, so workers log coordinator\n\
             restarts. PGL_FAULT_PLAN=\"seed=S,refuse=N,drop=N,delay=N:MS,\n\
             err500=N\" arms deterministic fault injection on outbound cluster\n\
             requests (testing only); retries use jittered exponential backoff."
        }
        "bench" => {
            "pgl bench [-o <out.json>] [--preset small|medium|large] [--threads N]\n\
             \u{20}         [--threads-sweep 1,2,4] [--iters N] [--repeat N] [--quick]\n\
             \u{20}         [--simd auto|on|off] [--write-shard auto|on|off] [--ab]\n\
             \u{20}         [--baseline UPDATES_PER_SEC] [--validate <bench.json>]\n\
             \u{20}         [--guard <bench.json>] [--tolerance F]\n\
             Reproducible SGD-throughput harness over the bundled workload presets.\n\
             Sweeps the hot-path axes (engine x precision x memory layout), reports\n\
             applied updates/sec per configuration, and writes a pgl-bench/2 JSON\n\
             document (committed as BENCH_<n>.json per perf PR, so the repository\n\
             records its own performance trajectory). --threads-sweep repeats the\n\
             headline rows at each listed thread count (the multi-core scaling\n\
             trajectory; host core count is recorded in the document). --simd and\n\
             --write-shard force the kernel shape; auto follows the engine defaults.\n\
             --quick is the CI smoke mode: a tiny graph, 3 iterations, only the\n\
             headline rows. --repeat N runs each configuration N times; records\n\
             carry both the best repetition and mean/stddev/cv. --ab interleaves\n\
             every row's repeats with a fixed anchor workload (cpu f64 aos 1t,\n\
             scalar) and records the row:anchor ratio, so machine-wide performance\n\
             drift cancels when gating. --baseline takes a previous run's\n\
             updates/sec and adds speedup_vs_baseline to every record. --validate\n\
             checks an existing document's structure and exits (accepts pgl-bench/1\n\
             and /2). --guard <bench.json> compares this run's records against a\n\
             committed baseline per (engine, precision, layout, threads) row and\n\
             fails on regression beyond --tolerance (default 0.02 = 2%) widened by\n\
             2 sigma of the two runs' combined cv; with --ab and an --ab baseline\n\
             the gate compares anchor ratios instead of raw throughput."
        }
        "batch" => {
            "pgl batch <dir> -o <outdir> [--engine cpu|batch|gpu|gpu-a100[,more...]]\n\
             \u{20}         [--workers N] [--iters N] [--threads N] [--seed N] [--tsv]\n\
             \u{20}         [--timeout SECS] [--resume] [--priority P] [--client KEY]\n\
             Lay out every .gfa in <dir> concurrently through the service worker pool,\n\
             writing <outdir>/<stem>.lay (and .tsv with --tsv), then print a summary.\n\
             --engine accepts a comma-separated list; each input is parsed exactly\n\
             once and fanned across all engines (outputs <stem>.<engine>.lay).\n\
             --resume skips inputs whose .lay in <outdir> is already up to date.\n\
             --priority interactive|normal|bulk and --client KEY set the scheduling\n\
             identity of the submitted jobs (matters when sharing a service)."
        }
        "submit" => {
            "pgl submit <in.gfa> [--addr HOST] [--port N] [--engine E] [--iters N]\n\
             \u{20}          [--threads N] [--seed N] [--batch N] [--soa] [--f32]\n\
             \u{20}          [--term-block N] [--simd auto|on|off]\n\
             \u{20}          [--write-shard auto|on|off]\n\
             \u{20}          [--priority interactive|normal|bulk] [--client KEY]\n\
             \u{20}          [--ttl-ms N] [--watch]\n\
             Submit one layout job to a running `pgl serve` (POST /v1/jobs) and print\n\
             the ticket. --priority/--client/--ttl-ms set the typed JobSpec's\n\
             scheduling fields; --watch then streams the job's event log (like\n\
             `pgl watch`) until it reaches a terminal state."
        }
        "watch" => {
            "pgl watch <job-id> [--addr HOST] [--port N] [--from SEQ]\n\
             Stream a job's event log from a running `pgl serve`\n\
             (GET /v1/jobs/<id>/events): one line per state transition or progress\n\
             update, no polling; exits when the job reaches a terminal state.\n\
             --from resumes mid-log after a dropped connection."
        }
        _ => return None,
    })
}

fn load_graph(path: &str) -> Result<VariationGraph, String> {
    // Stream the file through the parser: ingestion never holds both
    // the raw GFA text and the parsed graph at peak.
    let file = std::fs::File::open(path).map_err(|e| format!("read {path}: {e}"))?;
    parse_gfa_reader(std::io::BufReader::new(file)).map_err(|e| format!("parse {path}: {e}"))
}

/// `pgl gen` — synthesize a pangenome graph.
pub fn gen(p: ArgParser) -> CmdResult {
    let preset = p.value("--preset").unwrap_or("hla").to_lowercase();
    let scale: f64 = p.parse_or("--scale", 0.001)?;
    let seed: u64 = p.parse_or("--seed", 0)?;
    let out = p.out()?;

    let mut spec = if preset == "hla" || preset == "hla-drb1" {
        workloads::hla_drb1()
    } else if preset == "mhc" {
        workloads::mhc_like(scale.clamp(1e-4, 1.0))
    } else {
        let entry = hprc_catalog()
            .into_iter()
            .find(|c| c.name.eq_ignore_ascii_case(&preset))
            .ok_or_else(|| format!("unknown preset {preset:?} (hla, mhc, chr1..chrY)"))?;
        entry.spec(scale.clamp(1e-6, 1.0))
    };
    if seed != 0 {
        spec.seed = seed;
    }
    let graph = workloads::generate(&spec);
    std::fs::write(out, write_gfa(&graph)).map_err(|e| format!("write {out}: {e}"))?;
    eprintln!(
        "generated {}: {} nodes, {} edges, {} paths → {out}",
        spec.name,
        graph.node_count(),
        graph.edge_count(),
        graph.path_count()
    );
    Ok(())
}

/// `pgl stats` — Table I-style properties.
pub fn stats(p: ArgParser) -> CmdResult {
    let g = load_graph(p.pos(0, "in.gfa")?)?;
    let s = GraphStats::measure(&g);
    println!("{s}");
    println!(
        "total path steps: {}   total path length: {} bp   longest path: {} bp",
        s.total_path_steps,
        s.total_path_nuc,
        LeanGraph::from_graph(&g).max_path_nuc_len()
    );
    Ok(())
}

/// `pgl sort` — 1D path-SGD node sorting (odgi `sort -p Y` analog); run
/// before `layout` on graphs whose node numbering does not follow the
/// backbone.
pub fn sort(p: ArgParser) -> CmdResult {
    let g = load_graph(p.pos(0, "in.gfa")?)?;
    let out = p.out()?;
    let lean = LeanGraph::from_graph(&g);
    let lcfg = LayoutConfig {
        iter_max: p.parse_or("--iters", 20u32)?,
        seed: p.parse_or("--seed", 0x1D50u64)?,
        ..LayoutConfig::default()
    };
    let before = layout_core::sort1d::order_quality(&lean);
    let order = layout_core::sort1d::path_sgd_order(&lean, &lcfg);
    let sorted = g.permute_nodes(&order);
    let after = layout_core::sort1d::order_quality(&LeanGraph::from_graph(&sorted));
    std::fs::write(out, write_gfa(&sorted)).map_err(|e| format!("write {out}: {e}"))?;
    eprintln!("order quality {before:.3} → {after:.3}; wrote {out}");
    Ok(())
}

/// `pgl layout` — run PG-SGD with the chosen engine.
pub fn layout(p: ArgParser) -> CmdResult {
    let g = load_graph(p.pos(0, "in.gfa")?)?;
    let out = p.out()?;
    let lean = LeanGraph::from_graph(&g);

    let lcfg = LayoutConfig {
        iter_max: p.parse_or("--iters", 30u32)?,
        threads: p.parse_or("--threads", 0usize)?,
        seed: p.parse_or("--seed", LayoutConfig::default().seed)?,
        data_layout: if p.has("--soa") {
            DataLayout::OriginalSoa
        } else {
            DataLayout::CacheFriendlyAos
        },
        precision: if p.has("--f32") {
            Precision::F32
        } else {
            Precision::F64
        },
        term_block: p.parse_or("--term-block", LayoutConfig::default().term_block)?,
        simd: parse_toggle(&p, "--simd")?,
        write_shard: parse_toggle(&p, "--write-shard")?,
        ..LayoutConfig::default()
    };

    let (layout, label) = if p.has("--gpu") || p.has("--gpu-a100") {
        let spec = if p.has("--gpu-a100") {
            GpuSpec::a100()
        } else {
            GpuSpec::a6000()
        };
        let name = spec.name;
        // Cache scale: assume the graph is a scaled chromosome; ratio of
        // its node count to Chr.1's full size is the best default.
        let mem_scale = (g.node_count() as f64 / 1.1e7).clamp(1e-6, 1.0);
        let engine = GpuEngine::new(spec, lcfg, KernelConfig::optimized(mem_scale));
        let (l, r) = engine.run(&lean);
        eprintln!(
            "simulated {name}: modeled {:.3}s on device ({} launches, {:.1} sectors/req), \
             {:.2?} host simulation",
            r.modeled_s(),
            r.launches,
            r.mem.sectors_per_request(),
            r.sim_wall
        );
        (l, "gpu-sim")
    } else if let Some(b) = p.value("--batch") {
        let batch: usize = b.parse().map_err(|_| format!("bad --batch {b:?}"))?;
        let engine = BatchEngine::new(lcfg, batch);
        let (l, r) = engine.run(&lean);
        eprintln!(
            "batch engine: {:.2?} host, {} kernels, modeled API share {:.1}%",
            r.wall,
            r.kernels_launched,
            r.api_time_pct()
        );
        (l, "batch")
    } else {
        let engine = CpuEngine::new(lcfg);
        let (l, r) = engine.run(&lean);
        eprintln!(
            "cpu engine: {:.2?} on {} threads ({:.1}M updates/s)",
            r.wall,
            r.threads,
            r.updates_per_sec() / 1e6
        );
        (l, "cpu")
    };

    save_lay(&layout, Path::new(out)).map_err(|e| format!("write {out}: {e}"))?;
    eprintln!("[{label}] wrote {out}");
    Ok(())
}

/// `pgl stress` — score a layout.
pub fn stress(p: ArgParser) -> CmdResult {
    let g = load_graph(p.pos(0, "in.gfa")?)?;
    let lay = load_lay(Path::new(p.pos(1, "in.lay")?)).map_err(|e| e.to_string())?;
    let lean = LeanGraph::from_graph(&g);
    if lay.node_count() != lean.node_count() {
        return Err(format!(
            "layout has {} nodes but graph has {}",
            lay.node_count(),
            lean.node_count()
        ));
    }
    let cfg = SamplingConfig {
        samples_per_node: p.parse_or("--samples-per-node", 100u32)?,
        seed: p.parse_or("--seed", 0x5EED_5EEDu64)?,
    };
    let s = sampled_path_stress(&lay, &lean, cfg);
    println!(
        "sampled path stress: {:.6}  CI95 [{:.6}, {:.6}]  (n = {})",
        s.mean, s.ci_lo, s.ci_hi, s.n
    );
    if p.has("--exact") {
        let e = path_stress(&lay, &lean);
        println!(
            "exact path stress:   {:.6}  ({} node pairs)",
            e.stress, e.pairs
        );
    }
    Ok(())
}

/// `pgl draw` — render a layout to SVG or PPM.
pub fn draw_cmd(p: ArgParser) -> CmdResult {
    let g = load_graph(p.pos(0, "in.gfa")?)?;
    let lay = load_lay(Path::new(p.pos(1, "in.lay")?)).map_err(|e| e.to_string())?;
    let lean = LeanGraph::from_graph(&g);
    let out = p.out()?;
    let width: u32 = p.parse_or("--width", 1200u32)?;
    if p.has("--ppm") || out.ends_with(".ppm") {
        rasterize(&lay, &lean, width)
            .write_ppm(Path::new(out))
            .map_err(|e| format!("write {out}: {e}"))?;
    } else {
        let opts = DrawOptions {
            width,
            path_links: p.has("--links"),
            ..DrawOptions::default()
        };
        std::fs::write(out, to_svg(&lay, &lean, &opts)).map_err(|e| format!("write {out}: {e}"))?;
    }
    eprintln!("wrote {out}");
    Ok(())
}

/// `pgl serve` — run the layout service behind its HTTP front end.
pub fn serve(p: ArgParser) -> CmdResult {
    let level = match p.value("--log-level") {
        None => pgl_service::LogLevel::Info,
        Some(v) => pgl_service::LogLevel::parse_name(v)
            .ok_or_else(|| format!("bad --log-level {v:?} (debug, info, warn, error, off)"))?,
    };
    pgl_service::obs::init(level, p.has("--log-json"));
    let addr = format!(
        "{}:{}",
        p.value("--addr").unwrap_or("127.0.0.1"),
        p.parse_or("--port", 7878u16)?
    );
    let cache_ttl_secs = p.parse_or("--cache-ttl", 0u64)?;
    let cfg = ServiceConfig {
        workers: p.parse_or("--workers", 0usize)?,
        cache_entries: p.parse_or("--cache", 64usize)?,
        graph_entries: p.parse_or("--graphs", 16usize)?,
        cache_dir: p.value("--cache-dir").map(std::path::PathBuf::from),
        cache_max_bytes: p.parse_or("--cache-max-bytes", 0u64)?,
        cache_ttl: (cache_ttl_secs > 0).then(|| std::time::Duration::from_secs(cache_ttl_secs)),
        graph_quota: p.parse_or("--graph-quota", 0usize)?,
        ..ServiceConfig::default()
    };
    let http_defaults = HttpConfig::default();
    let http_cfg = HttpConfig {
        max_conns: p.parse_or("--max-conns", http_defaults.max_conns)?,
        keep_alive: std::time::Duration::from_secs(
            p.parse_or("--keep-alive", http_defaults.keep_alive.as_secs())?,
        ),
        rate_limit: p.parse_or("--rate-limit", 0.0f64)?,
        ..http_defaults
    };
    let workers = cfg.resolved_workers();
    let cache_note = cfg
        .cache_dir
        .as_ref()
        .map(|d| format!(", disk cache {}", d.display()))
        .unwrap_or_default();
    let limit_note = if http_cfg.rate_limit > 0.0 {
        format!(", rate limit {}/s per client", http_cfg.rate_limit)
    } else {
        String::new()
    };
    let service = Arc::new(LayoutService::start(
        EngineRegistry::with_default_engines(),
        cfg,
    ));
    let preload_note = match p.value("--preload-graphs") {
        None => String::new(),
        Some(dir) => {
            let report = service
                .preload_dir(Path::new(dir))
                .map_err(|e| format!("preload {dir}: {e}"))?;
            format!(
                ", preloaded {} graph(s) from {dir} ({} dedup, {} failed)",
                report.loaded, report.dedup, report.failed
            )
        }
    };
    let mut server = HttpServer::bind(&addr, Arc::clone(&service))
        .map_err(|e| format!("bind {addr}: {e}"))?
        .with_config(http_cfg.clone());
    // --join: enroll as a fleet worker — a cluster role in /healthz plus
    // a background join/heartbeat loop against the coordinator. The
    // advertised address is what the coordinator forwards jobs to.
    let mut cluster_note = String::new();
    if let Some(coordinator) = p.value("--join") {
        let advertise = match p.value("--advertise") {
            Some(a) => a.to_string(),
            None => format!("127.0.0.1:{}", server.local_addr().port()),
        };
        let role = pgl_service::ClusterRole::worker(coordinator.to_string());
        server = server.with_role(Arc::clone(&role));
        cluster_note = format!(", worker in fleet at {coordinator} (advertising {advertise})");
        // Runs for the life of the process; `pgl serve` stops via signal.
        let never_stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let _ = pgl_service::spawn_heartbeat(
            coordinator.to_string(),
            advertise,
            std::time::Duration::from_millis(p.parse_or("--heartbeat-ms", 2000u64)?.max(50)),
            role,
            never_stop,
        );
    }
    pgl_service::obs::info(
        "serve",
        &format!(
            "listening on http://{} ({} workers, {} conns max, keep-alive {}s{}{}{}{}, engines: {})",
            server.local_addr(),
            workers,
            http_cfg.max_conns,
            http_cfg.keep_alive.as_secs(),
            cache_note,
            limit_note,
            preload_note,
            cluster_note,
            service.engine_names().join(", ")
        ),
        &[],
    );
    server.serve();
    Ok(())
}

/// `pgl coordinator` — run the cluster coordinator tier.
pub fn coordinator(p: ArgParser) -> CmdResult {
    let level = match p.value("--log-level") {
        None => pgl_service::LogLevel::Info,
        Some(v) => pgl_service::LogLevel::parse_name(v)
            .ok_or_else(|| format!("bad --log-level {v:?} (debug, info, warn, error, off)"))?,
    };
    pgl_service::obs::init(level, p.has("--log-json"));
    let addr = format!(
        "{}:{}",
        p.value("--addr").unwrap_or("127.0.0.1"),
        p.parse_or("--port", 7979u16)?
    );
    let defaults = pgl_service::CoordinatorConfig::default();
    let cfg = pgl_service::CoordinatorConfig {
        heartbeat: std::time::Duration::from_millis(
            p.parse_or("--heartbeat-ms", defaults.heartbeat.as_millis() as u64)?
                .max(50),
        ),
        graph_quota: p.parse_or("--graph-quota", defaults.graph_quota)?,
        max_conns: p.parse_or("--max-conns", defaults.max_conns)?.max(1),
        journal_dir: p.value("--journal-dir").map(std::path::PathBuf::from),
        vault_max_bytes: p.parse_or("--vault-max-bytes", defaults.vault_max_bytes)?,
        ..defaults
    };
    let heartbeat_ms = cfg.heartbeat.as_millis();
    let max_conns = cfg.max_conns;
    let coordinator =
        pgl_service::Coordinator::bind(&addr, cfg).map_err(|e| format!("bind {addr}: {e}"))?;
    pgl_service::obs::info(
        "coordinator",
        &format!(
            "coordinating on http://{} (heartbeat {heartbeat_ms}ms, {max_conns} conns max); \
             workers join with: pgl serve --join {}",
            coordinator.local_addr(),
            coordinator.local_addr()
        ),
        &[],
    );
    coordinator.serve();
    Ok(())
}

/// Parse `--priority` into the typed scheduling class.
fn parse_priority(p: &ArgParser) -> Result<Priority, String> {
    match p.value("--priority") {
        None => Ok(Priority::Normal),
        Some(v) => Priority::parse_name(v)
            .ok_or_else(|| format!("bad --priority {v:?} (interactive, normal, bulk)")),
    }
}

/// Server address from `--addr` / `--port`.
fn server_addr(p: &ArgParser) -> Result<String, String> {
    Ok(format!(
        "{}:{}",
        p.value("--addr").unwrap_or("127.0.0.1"),
        p.parse_or("--port", 7878u16)?
    ))
}

/// Minimal query-component escaping for client-supplied strings.
fn encode_query(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for b in value.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// Pull `"field":<digits>` out of a flat JSON body.
fn json_u64_field(json: &str, field: &str) -> Option<u64> {
    let needle = format!("\"{field}\":");
    let at = json.find(&needle)? + needle.len();
    let digits: String = json[at..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

/// `pgl submit` — send one job to a running server over the /v1 API.
pub fn submit(p: ArgParser) -> CmdResult {
    let input = p.pos(0, "in.gfa")?;
    let addr = server_addr(&p)?;
    let gfa = std::fs::read(input).map_err(|e| format!("read {input}: {e}"))?;
    let mut query = vec![format!(
        "engine={}",
        encode_query(p.value("--engine").unwrap_or("cpu"))
    )];
    for flag in ["--iters", "--threads", "--seed", "--batch"] {
        if let Some(v) = p.value(flag) {
            query.push(format!("{}={}", &flag[2..], encode_query(v)));
        }
    }
    if let Some(v) = p.value("--term-block") {
        query.push(format!("term_block={}", encode_query(v)));
    }
    for (flag, param) in [("--simd", "simd"), ("--write-shard", "write_shard")] {
        if let Some(v) = p.value(flag) {
            query.push(format!("{param}={}", encode_query(v)));
        }
    }
    if p.has("--soa") {
        query.push("soa=1".into());
    }
    if p.has("--f32") {
        query.push("precision=f32".into());
    }
    query.push(format!("priority={}", parse_priority(&p)?.as_str()));
    if let Some(client) = p.value("--client") {
        query.push(format!("client={}", encode_query(client)));
    }
    if let Some(ttl) = p.value("--ttl-ms") {
        query.push(format!("ttl_ms={}", encode_query(ttl)));
    }
    let path = format!("/v1/jobs?{}", query.join("&"));
    let (status, body) = crate::client::request(&addr, "POST", &path, &gfa)?;
    let text = String::from_utf8_lossy(&body);
    if status != 202 {
        return Err(format!("server answered {status}: {}", text.trim()));
    }
    println!("{}", text.trim());
    if p.has("--watch") {
        let job =
            json_u64_field(&text, "job").ok_or_else(|| format!("no job id in response: {text}"))?;
        return watch_job(&addr, job, 0);
    }
    Ok(())
}

/// `pgl watch` — stream a job's event log from a running server.
pub fn watch(p: ArgParser) -> CmdResult {
    let job: u64 = p
        .pos(0, "job-id")?
        .parse()
        .map_err(|_| format!("bad job id {:?}", p.pos(0, "job-id").unwrap_or("")))?;
    let addr = server_addr(&p)?;
    watch_job(&addr, job, p.parse_or("--from", 0u64)?)
}

fn json_state(json: &str) -> Option<String> {
    let at = json.find("\"state\":\"")?;
    Some(
        json[at + 9..]
            .chars()
            .take_while(|c| *c != '"')
            .collect::<String>(),
    )
}

fn watch_job(addr: &str, job: u64, from: u64) -> CmdResult {
    let path = format!("/v1/jobs/{job}/events?from={from}");
    let mut last_state = String::new();
    crate::client::stream_lines(addr, &path, &mut |line| {
        if !line.contains("\"event\":\"heartbeat\"") {
            println!("{line}");
        }
        if let Some(state) = json_state(line) {
            last_state = state;
        }
    })?;
    if last_state.is_empty() {
        // The stream replayed nothing — e.g. a --from cursor past the
        // terminal event after a dropped connection. The job's status
        // still knows how it ended.
        let (status, body) = crate::client::request(addr, "GET", &format!("/v1/jobs/{job}"), b"")?;
        let text = String::from_utf8_lossy(&body);
        if status != 200 {
            return Err(format!("server answered {status}: {}", text.trim()));
        }
        println!("{}", text.trim());
        last_state = json_state(&text).unwrap_or_default();
    }
    match last_state.as_str() {
        "done" => Ok(()),
        "" => Err(format!("could not determine job {job}'s state")),
        other => Err(format!("job {job} ended {other}")),
    }
}

/// `pgl batch` — lay out a directory of graphs through the worker pool.
pub fn batch_cmd(p: ArgParser) -> CmdResult {
    let dir = p.pos(0, "dir")?;
    let out = p.out()?;
    let engines: Vec<String> = p
        .value("--engine")
        .unwrap_or("cpu")
        .split(',')
        .map(|e| e.trim().to_string())
        .filter(|e| !e.is_empty())
        .collect();
    let multi = engines.len() > 1;
    let opts = BatchOptions {
        engines,
        config: LayoutConfig {
            iter_max: p.parse_or("--iters", 30u32)?,
            threads: p.parse_or("--threads", 0usize)?,
            seed: p.parse_or("--seed", LayoutConfig::default().seed)?,
            precision: if p.has("--f32") {
                Precision::F32
            } else {
                Precision::F64
            },
            term_block: p.parse_or("--term-block", LayoutConfig::default().term_block)?,
            ..LayoutConfig::default()
        },
        batch_size: p.parse_or("--batch", 1024usize)?,
        workers: p.parse_or("--workers", 0usize)?,
        write_tsv: p.has("--tsv"),
        timeout: std::time::Duration::from_secs(p.parse_or("--timeout", 3600u64)?),
        resume: p.has("--resume"),
        priority: parse_priority(&p)?,
        client: p.value("--client").map(str::to_string),
    };
    let report = run_batch(Path::new(dir), Path::new(out), &opts)?;
    for o in &report.outcomes {
        let label = if multi {
            format!("{} [{}]", o.name, o.engine)
        } else {
            o.name.clone()
        };
        match o.state {
            JobState::Done if o.skipped => {
                eprintln!(
                    "  {label:<30} skip   (up-to-date)  → {}",
                    o.output
                        .as_ref()
                        .map(|p| p.display().to_string())
                        .unwrap_or_default()
                );
            }
            JobState::Done => eprintln!(
                "  {label:<30} done   {:>8} nodes  {:>7} ms{}  → {}",
                o.nodes,
                o.wall_ms,
                if o.cached { "  (cached)" } else { "" },
                o.output
                    .as_ref()
                    .map(|p| p.display().to_string())
                    .unwrap_or_default()
            ),
            _ => {
                eprintln!(
                    "  {label:<30} {}  {}",
                    o.state.as_str(),
                    o.error.as_deref().unwrap_or("")
                );
            }
        }
    }
    let failed = report.failed();
    let skipped = report.skipped();
    eprintln!(
        "pgl batch: {}/{} layouts done, {} GFA parse(s){}",
        report.outcomes.len() - failed,
        report.outcomes.len(),
        report.graph_parses,
        if skipped > 0 {
            format!(" ({skipped} skipped, up-to-date)")
        } else {
            String::new()
        }
    );
    if failed > 0 {
        return Err(format!("{failed} layout(s) failed"));
    }
    Ok(())
}

/// `pgl bench` — the SGD-throughput harness (see `crates/bench`).
pub fn bench(p: ArgParser) -> CmdResult {
    if let Some(path) = p.value("--validate") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
        pgl_bench::validate_json(&text).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("{path}: valid {} document", pgl_bench::BENCH_SCHEMA);
        return Ok(());
    }
    let threads_sweep = match p.value("--threads-sweep") {
        None => Vec::new(),
        Some(list) => {
            let counts: Result<Vec<usize>, _> =
                list.split(',').map(|s| s.trim().parse::<usize>()).collect();
            let counts =
                counts.map_err(|_| format!("bad --threads-sweep {list:?} (e.g. 1,2,4)"))?;
            if counts.is_empty() || counts.contains(&0) {
                return Err(format!(
                    "bad --threads-sweep {list:?} (counts must be >= 1)"
                ));
            }
            counts
        }
    };
    let opts = pgl_bench::BenchOptions {
        preset: p.value("--preset").unwrap_or("medium").to_string(),
        threads: p.parse_or("--threads", 1usize)?,
        threads_sweep,
        write_shard: parse_toggle(&p, "--write-shard")?,
        simd: parse_toggle(&p, "--simd")?,
        iters: p.parse_or("--iters", 15u32)?,
        repeat: p.parse_or("--repeat", 2usize)?,
        ab: p.has("--ab"),
        quick: p.has("--quick"),
        baseline_updates_per_sec: match p.value("--baseline") {
            None => None,
            Some(v) => Some(
                v.parse()
                    .map_err(|_| format!("bad --baseline {v:?} (updates/sec)"))?,
            ),
        },
    };
    let report = pgl_bench::run_bench(&opts)?;
    if let Some(best) = report.best() {
        let speedup = opts
            .baseline_updates_per_sec
            .map(|b| format!(" ({:.2}x vs baseline)", best.updates_per_sec / b))
            .unwrap_or_default();
        eprintln!(
            "pgl bench: best {:.2}M updates/s — {} {} {}{}",
            best.updates_per_sec / 1e6,
            best.engine,
            best.precision,
            best.layout,
            speedup
        );
    }
    let json = pgl_bench::to_json(&report);
    match p.value("-o") {
        Some(out) => {
            std::fs::write(out, &json).map_err(|e| format!("write {out}: {e}"))?;
            eprintln!("wrote {out}");
        }
        None => print!("{json}"),
    }
    if let Some(baseline) = p.value("--guard") {
        let tolerance = p.parse_or("--tolerance", pgl_bench::GUARD_DEFAULT_TOLERANCE)?;
        let text =
            std::fs::read_to_string(baseline).map_err(|e| format!("read {baseline}: {e}"))?;
        let summary = pgl_bench::guard_against_baseline(&report, &text, tolerance)
            .map_err(|e| format!("{baseline}: {e}"))?;
        eprintln!(
            "pgl bench: guard vs {baseline} passed (tolerance {:.1}%)\n{summary}",
            tolerance * 100.0
        );
    }
    Ok(())
}

/// `pgl tsv` — export layout coordinates.
pub fn tsv(p: ArgParser) -> CmdResult {
    let lay = load_lay(Path::new(p.pos(0, "in.lay")?)).map_err(|e| e.to_string())?;
    let out = p.out()?;
    std::fs::write(out, layout_to_tsv(&lay)).map_err(|e| format!("write {out}: {e}"))?;
    eprintln!("wrote {out}");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::ArgParser;

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("pgl_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    fn parser(s: &str) -> ArgParser {
        ArgParser::new(s.split_whitespace().map(String::from).collect())
    }

    #[test]
    fn full_pipeline_through_commands() {
        let gfa = tmp("p.gfa");
        let lay = tmp("p.lay");
        let svg = tmp("p.svg");
        let tsv_out = tmp("p.tsv");

        gen(parser(&format!("--preset chr21 --scale 0.0001 -o {gfa}"))).unwrap();
        stats(parser(&gfa)).unwrap();
        sort(parser(&format!("{gfa} --iters 4 -o {gfa}"))).unwrap();
        layout(parser(&format!("{gfa} --iters 6 --threads 2 -o {lay}"))).unwrap();
        stress(parser(&format!("{gfa} {lay} --samples-per-node 20"))).unwrap();
        draw_cmd(parser(&format!("{gfa} {lay} -o {svg}"))).unwrap();
        tsv(parser(&format!("{lay} -o {tsv_out}"))).unwrap();

        assert!(std::fs::read_to_string(&svg).unwrap().contains("<svg"));
        assert!(std::fs::read_to_string(&tsv_out)
            .unwrap()
            .starts_with("#idx"));
    }

    #[test]
    fn gpu_and_batch_engines_reachable() {
        let gfa = tmp("q.gfa");
        let lay = tmp("q.lay");
        gen(parser(&format!("--preset hla -o {gfa}"))).unwrap();
        layout(parser(&format!("{gfa} --iters 3 --gpu -o {lay}"))).unwrap();
        layout(parser(&format!("{gfa} --iters 3 --batch 512 -o {lay}"))).unwrap();
        stress(parser(&format!(
            "{gfa} {lay} --samples-per-node 10 --exact"
        )))
        .unwrap();
    }

    #[test]
    fn batch_command_lays_out_a_directory() {
        let dir = std::env::temp_dir().join(format!("pgl_cli_batch_{}", std::process::id()));
        let out_dir = dir.join("out");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let gfa = dir.join("g1.gfa");
        gen(parser(&format!("--preset hla -o {}", gfa.display()))).unwrap();
        batch_cmd(parser(&format!(
            "{} --iters 3 --threads 1 --workers 1 --tsv -o {}",
            dir.display(),
            out_dir.display()
        )))
        .unwrap();
        assert!(out_dir.join("g1.lay").exists());
        assert!(out_dir.join("g1.tsv").exists());
        // A resumed run finds everything up to date and still succeeds.
        batch_cmd(parser(&format!(
            "{} --iters 3 --threads 1 --workers 1 --resume -o {}",
            dir.display(),
            out_dir.display()
        )))
        .unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_command_has_usage_text() {
        for cmd in [
            "gen",
            "stats",
            "sort",
            "layout",
            "stress",
            "draw",
            "tsv",
            "serve",
            "coordinator",
            "batch",
            "bench",
            "submit",
            "watch",
        ] {
            let text = usage(cmd).expect(cmd);
            assert!(text.contains(cmd), "{cmd} usage names itself");
        }
        assert!(usage("no-such-command").is_none());
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        assert!(load_graph("/nonexistent/x.gfa").is_err());
        assert!(gen(parser("--preset marschromosome -o /tmp/x.gfa")).is_err());
        assert!(layout(parser("/nonexistent/x.gfa -o /tmp/x.lay")).is_err());
        // Mismatched layout/graph sizes:
        let gfa = tmp("r.gfa");
        let lay = tmp("r.lay");
        gen(parser(&format!("--preset chrY --scale 0.0001 -o {gfa}"))).unwrap();
        layout(parser(&format!("{gfa} --iters 2 -o {lay}"))).unwrap();
        let gfa2 = tmp("r2.gfa");
        gen(parser(&format!(
            "--preset chrY --scale 0.0002 --seed 9 -o {gfa2}"
        )))
        .unwrap();
        assert!(stress(parser(&format!("{gfa2} {lay}"))).is_err());
    }
}
