//! `pgl` — the pangenome graph layout pipeline in one binary.
//!
//! The paper stresses that its GPU implementation "can be seamlessly
//! integrated into the ODGI framework … a user can simply add the
//! `--gpu` argument". This binary is that integration story for the Rust
//! reproduction: one tool covering the pipeline from graph to picture,
//! plus the multi-graph orchestration service.
//!
//! ```text
//! pgl gen      --preset chr1 --scale 0.001 -o g.gfa     # synthesize a pangenome
//! pgl stats    g.gfa                                    # Table I-style properties
//! pgl layout   g.gfa -o g.lay [--gpu | --batch N]       # PG-SGD layout
//! pgl stress   g.gfa g.lay [--exact]                    # sampled path stress (+CI)
//! pgl draw     g.gfa g.lay -o g.svg [--ppm]             # render
//! pgl tsv      g.lay -o g.tsv                           # export coordinates
//! pgl serve    [--port 7878]                            # HTTP layout service (/v1 API)
//! pgl batch    graphs/ -o layouts/ [--engine gpu]       # lay out a directory
//! pgl submit   g.gfa --priority interactive --watch     # job via a running server
//! pgl watch    17                                       # stream a job's events
//! ```

mod args;
mod client;
mod commands;

use args::ArgParser;

fn main() {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        print_usage();
        std::process::exit(2);
    }
    let cmd = argv.remove(0);
    let parser = ArgParser::new(argv);

    if parser.wants_help() {
        match commands::usage(&cmd) {
            Some(text) => println!("{text}"),
            None => print_usage(),
        }
        return;
    }
    if let Err(e) = parser.validate() {
        eprintln!("pgl {cmd}: {e}");
        if let Some(text) = commands::usage(&cmd) {
            eprintln!("\n{text}");
        }
        std::process::exit(2);
    }

    let result = match cmd.as_str() {
        "gen" => commands::gen(parser),
        "stats" => commands::stats(parser),
        "sort" => commands::sort(parser),
        "layout" => commands::layout(parser),
        "stress" => commands::stress(parser),
        "draw" => commands::draw_cmd(parser),
        "tsv" => commands::tsv(parser),
        "serve" => commands::serve(parser),
        "coordinator" => commands::coordinator(parser),
        "batch" => commands::batch_cmd(parser),
        "bench" => commands::bench(parser),
        "submit" => commands::submit(parser),
        "watch" => commands::watch(parser),
        "help" | "--help" | "-h" => {
            print_usage();
            Ok(())
        }
        other => Err(format!("unknown command `{other}`; try `pgl help`")),
    };
    if let Err(e) = result {
        eprintln!("pgl: {e}");
        std::process::exit(1);
    }
}

fn print_usage() {
    println!(
        "pgl — pangenome graph layout (Rust reproduction of SC'24 'Rapid GPU-Based \
         Pangenome Graph Layout')\n\n\
         USAGE: pgl <command> [args]   (pgl <command> --help for details)\n\n\
         COMMANDS:\n\
         \u{20}  gen     --preset <hla|mhc|chr1..chr22|chrX|chrY> [--scale F] [--seed N] -o <out.gfa>\n\
         \u{20}  stats   <in.gfa>\n\
         \u{20}  sort    <in.gfa> -o <out.gfa> [--iters N] [--seed N]   (1D path-SGD sort)\n\
         \u{20}  layout  <in.gfa> -o <out.lay> [--gpu] [--gpu-a100] [--batch <size>]\n\
         \u{20}          [--threads N] [--iters N] [--seed N] [--soa] [--f32]\n\
         \u{20}          [--term-block N]\n\
         \u{20}  bench   [-o <out.json>] [--preset small|medium|large] [--threads N]\n\
         \u{20}          [--iters N] [--repeat N] [--quick] [--baseline UPS]\n\
         \u{20}          [--validate <bench.json>] [--guard <bench.json>] [--tolerance F]\n\
         \u{20}          (SGD throughput harness; --guard fails on >F regression)\n\
         \u{20}  stress  <in.gfa> <in.lay> [--exact] [--samples-per-node N] [--seed N]\n\
         \u{20}  draw    <in.gfa> <in.lay> -o <out.svg|out.ppm> [--width N] [--links]\n\
         \u{20}  tsv     <in.lay> -o <out.tsv>\n\
         \u{20}  serve   [--addr HOST] [--port N] [--workers N] [--cache N] [--graphs N]\n\
         \u{20}          [--cache-dir DIR] [--cache-max-bytes N] [--cache-ttl SECS]\n\
         \u{20}          [--preload-graphs DIR] [--graph-quota N]\n\
         \u{20}          [--max-conns N] [--keep-alive SECS] [--rate-limit N]\n\
         \u{20}          [--join COORD_ADDR] [--advertise HOST:PORT] [--heartbeat-ms N]\n\
         \u{20}          [--log-level L] [--log-json]\n\
         \u{20}          (HTTP /v1 API: POST /v1/graphs uploads once, POST /v1/jobs\n\
         \u{20}          lays out by reference with priority/client/ttl_ms scheduling,\n\
         \u{20}          GET /v1/jobs/<id>/events streams progress, /v1/jobs/<id>/trace\n\
         \u{20}          returns the phase timeline, /v1/metrics serves Prometheus text)\n\
         \u{20}  coordinator [--addr HOST] [--port N] [--heartbeat-ms N] [--max-conns N]\n\
         \u{20}          [--graph-quota N] [--log-level L] [--log-json]\n\
         \u{20}          (cluster front door: routes /v1 jobs across pgl serve --join\n\
         \u{20}          workers by consistent-hashing each job's graph; fleet-wide\n\
         \u{20}          fair scheduling, failover with requeue, /v1/stats rollup)\n\
         \u{20}  batch   <dir> -o <outdir> [--engine E[,E2...]] [--workers N] [--tsv]\n\
         \u{20}          [--resume] [--priority P] [--client KEY]\n\
         \u{20}          (each input parsed once across all engines)\n\
         \u{20}  submit  <in.gfa> [--addr HOST] [--port N] [--engine E] [--priority P]\n\
         \u{20}          [--client KEY] [--ttl-ms N] [--watch]   (POST /v1/jobs)\n\
         \u{20}  watch   <job-id> [--addr HOST] [--port N] [--from SEQ]\n\
         \u{20}          (stream GET /v1/jobs/<id>/events until terminal)\n"
    );
}
