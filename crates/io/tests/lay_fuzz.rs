//! Fuzz-style decoding tests: `read_lay` must never panic or
//! over-allocate on malformed bytes.

use pangraph::layout2d::Layout2D;
use pgio::{read_lay, write_lay};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary byte soup never panics the decoder.
    #[test]
    fn arbitrary_bytes_never_panic(data in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = read_lay(&data);
    }

    /// A valid file with any prefix truncation either succeeds (only at
    /// full length) or errors cleanly.
    #[test]
    fn truncations_error_cleanly(n_nodes in 0usize..20, cut in 0usize..700) {
        let mut layout = Layout2D::zeros(n_nodes);
        for i in 0..n_nodes as u32 {
            layout.set(i, false, i as f64, -(i as f64));
        }
        let bytes = write_lay(&layout);
        let cut = cut.min(bytes.len());
        let result = read_lay(&bytes[..cut]);
        if cut == bytes.len() {
            prop_assert!(result.is_ok());
        } else {
            prop_assert!(result.is_err(), "truncated to {cut} of {}", bytes.len());
        }
    }

    /// Corrupting the declared node count never causes huge allocation or
    /// panic — just an error (or a valid smaller read when the count
    /// shrinks consistently, which cannot happen here since payload
    /// length mismatches).
    #[test]
    fn corrupted_counts_are_rejected(n_nodes in 1usize..10, bogus in 100u64..u64::MAX / 64) {
        let layout = Layout2D::zeros(n_nodes);
        let mut bytes = write_lay(&layout).to_vec();
        bytes[8..16].copy_from_slice(&bogus.to_le_bytes());
        prop_assert!(read_lay(&bytes).is_err());
    }
}

#[test]
fn header_only_inputs() {
    assert!(read_lay(b"").is_err());
    assert!(read_lay(b"PGLAY\x01\0\0").is_err()); // magic but no count
                                                  // magic + zero count and no payload: valid empty layout.
    let mut v = b"PGLAY\x01\0\0".to_vec();
    v.extend_from_slice(&0u64.to_le_bytes());
    assert_eq!(read_lay(&v).unwrap().node_count(), 0);
}
