//! Plain-text exports: layout tables and generic report tables.

use pangraph::layout2d::Layout2D;
use std::fmt::Write as _;

/// Export a layout as TSV in odgi's `layout -T` style: one row per
/// endpoint with `idx  X  Y` (idx = `2·node + end`).
pub fn layout_to_tsv(layout: &Layout2D) -> String {
    let mut out = String::with_capacity(24 * 2 * layout.node_count());
    out.push_str("#idx\tX\tY\n");
    for node in 0..layout.node_count() as u32 {
        for end in [false, true] {
            let (x, y) = layout.get(node, end);
            let _ = writeln!(out, "{}\t{x:.6}\t{y:.6}", 2 * node + end as u32);
        }
    }
    out
}

/// A simple column-aligned text table used by the `repro` harness to
/// print paper-style tables.
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows are present.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                let pad = widths[i];
                let _ = write!(out, "{cell:<pad$}");
                if i + 1 < cols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        };
        fmt_row(&self.header, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &widths, &mut out);
        }
        out
    }

    /// Render as TSV (for file export).
    pub fn to_tsv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join("\t"));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join("\t"));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_tsv_rows_and_values() {
        let mut l = Layout2D::zeros(2);
        l.set(0, true, 1.5, -2.0);
        let tsv = layout_to_tsv(&l);
        let lines: Vec<&str> = tsv.lines().collect();
        assert_eq!(lines.len(), 1 + 4);
        assert_eq!(lines[0], "#idx\tX\tY");
        assert_eq!(lines[2], "1\t1.500000\t-2.000000");
    }

    #[test]
    fn table_render_aligns_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "2".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("---"));
        // Column 2 starts at the same offset in all rows.
        let col2 = lines[0].find("value").unwrap();
        assert_eq!(lines[2].len().min(col2), col2);
        assert!(lines[3].starts_with("long-name"));
    }

    #[test]
    fn table_tsv_round_trips_cells() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1".into(), "x y".into()]);
        assert_eq!(t.to_tsv(), "a\tb\n1\tx y\n");
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn wrong_row_width_rejected() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
