//! File-level I/O for the `.lean` parsed-graph spill format.
//!
//! The codec itself lives in `pangraph::store` (the graph store uses it
//! directly for its disk tier); this module is the thin file-path
//! counterpart of [`crate::lay`], so tools and tests can persist and
//! reload parsed graphs with the same idioms they use for layouts.

use pangraph::store::{lean_from_bytes, lean_to_bytes};
use pangraph::LeanGraph;
use std::path::Path;

/// Serialize a lean graph to its `.lean` byte form.
pub fn write_lean(graph: &LeanGraph) -> Vec<u8> {
    lean_to_bytes(graph)
}

/// Deserialize a `.lean` buffer, validating structural invariants.
pub fn read_lean(data: &[u8]) -> std::io::Result<LeanGraph> {
    lean_from_bytes(data)
}

/// Write a lean graph to a file path.
pub fn save_lean(graph: &LeanGraph, path: &Path) -> std::io::Result<()> {
    std::fs::write(path, lean_to_bytes(graph))
}

/// Read a lean graph from a file path.
pub fn load_lean(path: &Path) -> std::io::Result<LeanGraph> {
    lean_from_bytes(&std::fs::read(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pangraph::fig1_graph;

    #[test]
    fn file_round_trip_is_exact() {
        let lean = LeanGraph::from_graph(&fig1_graph());
        let dir = std::env::temp_dir().join("pgio_lean_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.lean");
        save_lean(&lean, &path).unwrap();
        let back = load_lean(&path).unwrap();
        assert_eq!(back.node_len, lean.node_len);
        assert_eq!(back.step_offset, lean.step_offset);
        assert_eq!(back.step_node, lean.step_node);
        assert_eq!(back.step_rev, lean.step_rev);
        assert_eq!(back.step_pos, lean.step_pos);
        assert_eq!(back.path_nuc_len, lean.path_nuc_len);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn byte_round_trip_and_corruption() {
        let lean = LeanGraph::from_graph(&fig1_graph());
        let bytes = write_lean(&lean);
        assert_eq!(read_lean(&bytes).unwrap().node_len, lean.node_len);
        assert!(read_lean(&bytes[..10]).is_err());
        assert!(read_lean(b"XXXXXXXXrest").is_err());
    }

    #[test]
    fn missing_file_is_not_found() {
        let err = load_lean(Path::new("/nonexistent/g.lean")).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::NotFound);
    }
}
