//! # pgio — layout persistence and report export
//!
//! * [`lay`] — a binary layout format mirroring the role of odgi's
//!   `.lay` files (the artifact ships `layouts_cpu/chr*.lay` /
//!   `layouts_gpu/chr*.lay`): magic + node count + both endpoints' f64
//!   coordinates, little-endian, with integrity checks on read.
//! * [`tsv`] — plain-text exports: per-endpoint layout tables (odgi's
//!   `layout -T` equivalent) and generic report tables used by the
//!   benchmark harness.

pub mod lay;
pub mod tsv;

pub use lay::{load_lay, read_lay, save_lay, write_lay, LayError};
pub use tsv::{layout_to_tsv, Table};
