//! # pgio — layout persistence and report export
//!
//! * [`lay`] — a binary layout format mirroring the role of odgi's
//!   `.lay` files (the artifact ships `layouts_cpu/chr*.lay` /
//!   `layouts_gpu/chr*.lay`): magic + node count + both endpoints' f64
//!   coordinates, little-endian, with integrity checks on read.
//! * [`lean`] — file I/O for `.lean` parsed-graph spills (the graph
//!   store's disk tier format; codec in `pangraph::store`).
//! * [`tsv`] — plain-text exports: per-endpoint layout tables (odgi's
//!   `layout -T` equivalent) and generic report tables used by the
//!   benchmark harness.

pub mod lay;
pub mod lean;
pub mod tsv;

pub use lay::{load_lay, read_lay, save_lay, write_lay, LayError};
pub use lean::{load_lean, read_lean, save_lean, write_lean};
pub use tsv::{layout_to_tsv, Table};
