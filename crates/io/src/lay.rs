//! The binary `.lay` layout format.
//!
//! Layout files let the quality pipeline (sampled path stress, rendering)
//! run decoupled from layout computation, exactly as the paper's artifact
//! does with its pre-generated `layouts_cpu/` and `layouts_gpu/`
//! directories.
//!
//! Format (little-endian):
//!
//! ```text
//! magic   8 B   "PGLAY\x01\0\0"
//! nodes   8 B   u64 node count N
//! xs      16N B f64 × 2N (start,end interleaved)
//! ys      16N B f64 × 2N
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};
use pangraph::layout2d::Layout2D;
use std::fmt;

const MAGIC: &[u8; 8] = b"PGLAY\x01\0\0";

/// Errors from `.lay` decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayError {
    /// The magic prefix did not match.
    BadMagic,
    /// The buffer is shorter than the header + payload demand.
    Truncated {
        /// Bytes expected.
        expected: usize,
        /// Bytes present.
        actual: usize,
    },
    /// Node count is implausible for the buffer size.
    BadCount(u64),
}

impl fmt::Display for LayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayError::BadMagic => write!(f, "not a PGLAY file (bad magic)"),
            LayError::Truncated { expected, actual } => {
                write!(
                    f,
                    "truncated lay file: need {expected} bytes, have {actual}"
                )
            }
            LayError::BadCount(n) => write!(f, "implausible node count {n}"),
        }
    }
}

impl std::error::Error for LayError {}

/// Serialize a layout.
pub fn write_lay(layout: &Layout2D) -> Bytes {
    let n = layout.node_count();
    let mut buf = BytesMut::with_capacity(16 + 32 * n);
    buf.put_slice(MAGIC);
    buf.put_u64_le(n as u64);
    for &x in layout.xs() {
        buf.put_f64_le(x);
    }
    for &y in layout.ys() {
        buf.put_f64_le(y);
    }
    buf.freeze()
}

/// Deserialize a layout.
pub fn read_lay(mut data: &[u8]) -> Result<Layout2D, LayError> {
    if data.len() < 16 {
        return Err(LayError::Truncated {
            expected: 16,
            actual: data.len(),
        });
    }
    if &data[..8] != MAGIC {
        return Err(LayError::BadMagic);
    }
    data.advance(8);
    let n = data.get_u64_le();
    let payload = (n as usize).checked_mul(32).ok_or(LayError::BadCount(n))?;
    if data.len() < payload {
        return Err(LayError::Truncated {
            expected: 16 + payload,
            actual: 16 + data.len(),
        });
    }
    let mut xs = Vec::with_capacity(2 * n as usize);
    for _ in 0..2 * n {
        xs.push(data.get_f64_le());
    }
    let mut ys = Vec::with_capacity(2 * n as usize);
    for _ in 0..2 * n {
        ys.push(data.get_f64_le());
    }
    Ok(Layout2D::from_flat(xs, ys))
}

/// Write a layout to a file path.
pub fn save_lay(layout: &Layout2D, path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, write_lay(layout))
}

/// Read a layout from a file path.
pub fn load_lay(path: &std::path::Path) -> std::io::Result<Layout2D> {
    let data = std::fs::read(path)?;
    read_lay(&data).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_layout() -> Layout2D {
        let mut l = Layout2D::zeros(5);
        for n in 0..5u32 {
            l.set(n, false, n as f64 * 1.5, -(n as f64));
            l.set(n, true, n as f64 * 1.5 + 0.25, n as f64 * 0.5);
        }
        l
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let l = sample_layout();
        let bytes = write_lay(&l);
        let back = read_lay(&bytes).unwrap();
        assert_eq!(back, l);
    }

    #[test]
    fn empty_layout_round_trips() {
        let l = Layout2D::zeros(0);
        assert_eq!(read_lay(&write_lay(&l)).unwrap().node_count(), 0);
    }

    #[test]
    fn special_floats_survive() {
        let mut l = Layout2D::zeros(1);
        l.set(0, false, f64::MAX, f64::MIN_POSITIVE);
        l.set(0, true, -0.0, 1e-300);
        let back = read_lay(&write_lay(&l)).unwrap();
        assert_eq!(back, l);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = write_lay(&sample_layout()).to_vec();
        bytes[0] = b'X';
        assert_eq!(read_lay(&bytes), Err(LayError::BadMagic));
    }

    #[test]
    fn truncation_detected() {
        let bytes = write_lay(&sample_layout());
        let cut = &bytes[..bytes.len() - 7];
        match read_lay(cut) {
            Err(LayError::Truncated { .. }) => {}
            other => panic!("expected Truncated, got {other:?}"),
        }
        assert!(matches!(
            read_lay(&bytes[..4]),
            Err(LayError::Truncated { .. })
        ));
    }

    #[test]
    fn absurd_count_rejected() {
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u64_le(u64::MAX);
        match read_lay(&buf) {
            Err(LayError::BadCount(_)) | Err(LayError::Truncated { .. }) => {}
            other => panic!("expected failure, got {other:?}"),
        }
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("pgio_lay_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.lay");
        let l = sample_layout();
        save_lay(&l, &path).unwrap();
        assert_eq!(load_lay(&path).unwrap(), l);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn error_messages_are_informative() {
        assert!(LayError::BadMagic.to_string().contains("magic"));
        assert!(LayError::Truncated {
            expected: 10,
            actual: 5
        }
        .to_string()
        .contains("10"));
    }
}
