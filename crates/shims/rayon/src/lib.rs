//! In-workspace, std-only shim for the subset of [`rayon`] used by this
//! workspace (the build environment has no crates.io access).
//!
//! Unlike a stub, this is *actually parallel*: work is split into
//! contiguous chunks across `std::thread::available_parallelism()` scoped
//! threads. It is eager rather than work-stealing — `flat_map_iter`
//! materializes its output, and `map` defers execution to the terminal
//! `collect`/`for_each`, which preserves input order.
//!
//! Provided: `IntoParallelIterator` for ranges and `Vec`, `par_iter_mut`
//! on slices, and the `map` / `flat_map_iter` / `for_each` / `collect`
//! combinators.
//!
//! [`rayon`]: https://docs.rs/rayon

use std::sync::Mutex;

/// The commonly glob-imported trait surface, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSliceMutExt};
}

fn pool_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Order-preserving parallel map: `out[i] = f(items[i])`.
fn par_map_vec<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = pool_threads().min(n.max(1));
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let mut slots: Vec<Option<T>> = items.into_iter().map(Some).collect();
    let chunk = n.div_ceil(threads);
    let parts: Mutex<Vec<(usize, Vec<R>)>> = Mutex::new(Vec::with_capacity(threads));
    std::thread::scope(|scope| {
        for (ci, slice) in slots.chunks_mut(chunk).enumerate() {
            let f = &f;
            let parts = &parts;
            scope.spawn(move || {
                let out: Vec<R> = slice.iter_mut().map(|s| f(s.take().unwrap())).collect();
                parts.lock().unwrap().push((ci, out));
            });
        }
    });
    let mut parts = parts.into_inner().unwrap();
    parts.sort_by_key(|(ci, _)| *ci);
    parts.into_iter().flat_map(|(_, out)| out).collect()
}

/// Conversion into a parallel iterator (eagerly materialized item list).
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Convert into the shim's parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

macro_rules! impl_range_par_iter {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}
impl_range_par_iter!(u8, u16, u32, u64, usize, i32, i64);

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// A materialized parallel iterator.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Sequentially flatten `f(item)` iterators into a new parallel
    /// iterator (parallelism is applied by the downstream stage).
    pub fn flat_map_iter<U, I, F>(self, f: F) -> ParIter<U>
    where
        U: Send,
        I: IntoIterator<Item = U>,
        F: Fn(T) -> I,
    {
        ParIter {
            items: self.items.into_iter().flat_map(f).collect(),
        }
    }

    /// Defer `f` to the terminal operation, which runs it in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Run `f` over all items in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        par_map_vec(self.items, f);
    }
}

/// A parallel iterator with one pending `map` stage.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T, R, F> ParMap<T, F>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    /// Execute the map in parallel (input order preserved) and collect.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        par_map_vec(self.items, self.f).into_iter().collect()
    }

    /// Execute in parallel and sum the results.
    pub fn sum<S: std::iter::Sum<R>>(self) -> S {
        par_map_vec(self.items, self.f).into_iter().sum()
    }
}

/// `par_iter_mut` on slices (and, via deref, `Vec`).
pub trait ParallelSliceMutExt<T: Send> {
    /// A parallel iterator over mutable references.
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T>;
}

impl<T: Send> ParallelSliceMutExt<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T> {
        ParIterMut { items: self }
    }
}

/// A parallel iterator over `&mut T`.
pub struct ParIterMut<'a, T> {
    items: &'a mut [T],
}

impl<'a, T: Send> ParIterMut<'a, T> {
    /// Run `f` on every element, chunked across threads.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut T) + Sync,
    {
        let n = self.items.len();
        let threads = pool_threads().min(n.max(1));
        if threads <= 1 || n <= 1 {
            self.items.iter_mut().for_each(f);
            return;
        }
        let chunk = n.div_ceil(threads);
        std::thread::scope(|scope| {
            for slice in self.items.chunks_mut(chunk) {
                let f = &f;
                scope.spawn(move || slice.iter_mut().for_each(f));
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<u64> = (0u64..1000).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0u64..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn flat_map_iter_then_map() {
        let out: Vec<u32> = (0u32..10)
            .into_par_iter()
            .flat_map_iter(|p| (0..p).map(move |i| (p, i)))
            .map(|(p, i)| p * 100 + i)
            .collect();
        let expect: Vec<u32> = (0u32..10)
            .flat_map(|p| (0..p).map(move |i| p * 100 + i))
            .collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn par_iter_mut_touches_every_element() {
        let mut v = vec![1u32; 257];
        v.par_iter_mut().for_each(|x| *x += 1);
        assert!(v.iter().all(|&x| x == 2));
    }
}
