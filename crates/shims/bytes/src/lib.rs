//! In-workspace, std-only shim for the subset of the [`bytes`] crate API
//! used by this workspace (the build environment has no crates.io access,
//! and the workspace is dependency-free by design).
//!
//! Provided: [`Bytes`], [`BytesMut`], and the [`Buf`] / [`BufMut`] traits
//! with the little-endian accessors `pgio` needs. Semantics match the real
//! crate for these operations (including panics on under-read), but there
//! is no refcounted zero-copy splitting — `Bytes` owns its storage.
//!
//! [`bytes`]: https://docs.rs/bytes

use std::ops::Deref;

/// An immutable, cheaply clonable byte buffer (here: a plain `Vec<u8>`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// Copy the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Clone, Default)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self(Vec::new())
    }

    /// An empty buffer with `cap` bytes pre-reserved.
    pub fn with_capacity(cap: usize) -> Self {
        Self(Vec::with_capacity(cap))
    }

    /// Convert into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Sequential reader over a byte source.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Skip `cnt` bytes. Panics if fewer remain.
    fn advance(&mut self, cnt: usize);
    /// Read the next byte.
    fn get_u8(&mut self) -> u8;
    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64;
    /// Read a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }

    fn get_u8(&mut self) -> u8 {
        let b = self[0];
        self.advance(1);
        b
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self[..8]);
        self.advance(8);
        u64::from_le_bytes(raw)
    }
}

/// Sequential writer into a growable byte sink.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);
    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_round_trips() {
        let mut w = BytesMut::with_capacity(32);
        w.put_slice(b"hdr");
        w.put_u64_le(0xDEAD_BEEF_0123_4567);
        w.put_f64_le(-1.5);
        let frozen = w.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.remaining(), 3 + 8 + 8);
        r.advance(3);
        assert_eq!(r.get_u64_le(), 0xDEAD_BEEF_0123_4567);
        assert_eq!(r.get_f64_le(), -1.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn bytes_derefs_like_a_slice() {
        let b: Bytes = vec![1, 2, 3].into();
        assert_eq!(b.len(), 3);
        assert_eq!(&b[1..], &[2, 3]);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
    }
}
