//! In-workspace, std-only shim for the subset of [`criterion`] used by the
//! bench crate (the build environment has no crates.io access).
//!
//! Each benchmark warms up for `warm_up_time`, then runs timed batches
//! until `measurement_time` elapses (at least `sample_size` batches), and
//! prints mean wall time per iteration plus throughput when declared. No
//! statistics, plots, or baselines — just honest numbers on stdout.
//!
//! [`criterion`]: https://docs.rs/criterion

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver configuration.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Minimum number of timed batches per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Untimed warm-up duration before measuring.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Target total measurement duration.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            throughput: None,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<I: Into<BenchmarkId>>(
        &mut self,
        id: I,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let cfg = self.clone();
        run_one(&cfg, None, &id.into().0, None, f);
        self
    }
}

/// A named benchmark within a group (`BenchmarkId::new("op", param)`).
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        Self(format!("{name}/{parameter}"))
    }

    /// Just the parameter as the id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self(s)
    }
}

/// Declared per-iteration work, used to report a rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many logical elements each.
    Elements(u64),
    /// Iterations process this many bytes each.
    Bytes(u64),
}

/// A group of benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declare per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function<I: Into<BenchmarkId>>(
        &mut self,
        id: I,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let cfg = self.criterion.clone();
        run_one(&cfg, Some(&self.name), &id.into().0, self.throughput, f);
        self
    }

    /// Run a benchmark that receives a borrowed input.
    pub fn bench_with_input<I: Into<BenchmarkId>, T: ?Sized>(
        &mut self,
        id: I,
        input: &T,
        mut f: impl FnMut(&mut Bencher, &T),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Close the group (purely cosmetic in the shim).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; times the `iter` body.
pub struct Bencher {
    batch_iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `batch_iters` calls of `f`.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let t0 = Instant::now();
        for _ in 0..self.batch_iters {
            black_box(f());
        }
        self.elapsed = t0.elapsed();
    }
}

fn run_one(
    cfg: &Criterion,
    group: Option<&str>,
    id: &str,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    let label = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    // Calibration + warm-up: find a batch size that takes ≳1 ms.
    let mut batch = 1u64;
    let warm_end = Instant::now() + cfg.warm_up;
    let mut per_iter = Duration::from_secs(1);
    while Instant::now() < warm_end {
        let mut b = Bencher {
            batch_iters: batch,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter = Duration::from_secs_f64(b.elapsed.as_secs_f64() / batch.max(1) as f64);
        if b.elapsed < Duration::from_millis(1) && batch < 1 << 20 {
            batch *= 2;
        }
    }
    // Measurement: run batches until the time budget is spent.
    let mut total = Duration::ZERO;
    let mut iters = 0u64;
    let mut samples = 0usize;
    while samples < cfg.sample_size || total < cfg.measurement {
        let mut b = Bencher {
            batch_iters: batch,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total += b.elapsed;
        iters += batch;
        samples += 1;
        if total >= cfg.measurement && samples >= cfg.sample_size {
            break;
        }
        if samples > 1_000_000 {
            break;
        }
    }
    if iters > 0 {
        per_iter = Duration::from_secs_f64(total.as_secs_f64() / iters as f64);
    }
    let rate = throughput.map(|t| match t {
        Throughput::Elements(e) => {
            let per_sec = e as f64 * iters as f64 / total.as_secs_f64().max(1e-12);
            format!("  {per_sec:.3e} elem/s")
        }
        Throughput::Bytes(n) => {
            let per_sec = n as f64 * iters as f64 / total.as_secs_f64().max(1e-12);
            format!("  {per_sec:.3e} B/s")
        }
    });
    println!(
        "bench {label:<48} {per_iter:>12?}/iter  ({iters} iters in {total:.2?}){}",
        rate.unwrap_or_default()
    );
}

/// Group benchmark functions under one callable, optionally with a config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(name = $name; config = $crate::Criterion::default(); targets = $($target),+);
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2))
    }

    #[test]
    fn bench_function_runs_the_closure() {
        let mut ran = 0u64;
        quick().bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran += 1;
        });
        assert!(ran > 0);
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut c = quick();
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Elements(1));
        g.bench_with_input(BenchmarkId::new("op", 3), &3u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.finish();
    }
}
