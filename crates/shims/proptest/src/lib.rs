//! In-workspace, std-only shim for the subset of [`proptest`] used by this
//! workspace (the build environment has no crates.io access).
//!
//! It keeps proptest's *testing model* — each `proptest!` function runs its
//! body over many pseudo-random samples of the declared strategies, with
//! `prop_assume!` rejections retried — but drops shrinking and persistence.
//! Sampling is deterministic: the seed is derived from the test name, so a
//! failure reproduces on re-run.
//!
//! Supported strategies: integer and float ranges, `any::<T>()` for the
//! primitive ints and `bool`, regex-like string patterns limited to
//! `atom{lo,hi}` sequences (where an atom is `.`, a `[...]` class, or a
//! literal character), `prop::collection::vec`, and `prop::sample::select`.
//!
//! [`proptest`]: https://docs.rs/proptest

use std::ops::Range;

/// Everything the tests glob-import, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Namespace mirror of the real crate's `proptest::prop` re-export tree.
pub mod prop {
    /// Collection strategies (`prop::collection::vec`).
    pub mod collection {
        pub use crate::collection_vec as vec;
        pub use crate::VecStrategy;
    }
    /// Sampling strategies (`prop::sample::select`).
    pub mod sample {
        pub use crate::sample_select as select;
        pub use crate::Select;
    }
}

/// Per-block test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` accepted samples.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Why a single sampled case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed — resample, don't fail the test.
    Reject,
    /// `prop_assert*!` failed — fail the test with this message.
    Fail(String),
}

impl TestCaseError {
    /// Build the failing variant.
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }
}

/// SplitMix64 — deterministic, seedable, and good enough for case
/// generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed deterministically from a test-identifying string.
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self {
            state: h ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Multiply-shift bounding: negligible bias for test generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A value generator. The shim's equivalent of proptest's `Strategy`,
/// minus shrinking.
pub trait Strategy {
    /// Generated value type.
    type Value;
    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128 - self.start as u128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        self.start + rng.unit_f64() as f32 * (self.end - self.start)
    }
}

/// `any::<T>()` — the full value domain of `T`.
pub struct Any<T>(std::marker::PhantomData<T>);

/// Construct the [`Any`] strategy for `T`.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any(std::marker::PhantomData)
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Length bounds for [`VecStrategy`]: a fixed size or a range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        Self {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// Strategy for `Vec<S::Value>` with sampled length.
pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

/// `prop::collection::vec(element_strategy, size)`.
pub fn collection_vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        elem,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo + rng.below(span.max(1)) as usize;
        (0..len).map(|_| self.elem.sample(rng)).collect()
    }
}

/// Strategy choosing uniformly among fixed options.
pub struct Select<T> {
    options: Vec<T>,
}

/// `prop::sample::select(options)`.
pub fn sample_select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select() needs at least one option");
    Select { options }
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.options[rng.below(self.options.len() as u64) as usize].clone()
    }
}

// ---- regex-like string strategies ------------------------------------

/// One parsed pattern element: a character set and a repetition range.
struct PatternPiece {
    chars: Vec<char>,
    lo: usize,
    hi: usize, // inclusive
}

/// Printable ASCII plus tab — the shim's domain for `.`.
fn dot_chars() -> Vec<char> {
    let mut v: Vec<char> = (0x20u8..0x7F).map(|b| b as char).collect();
    v.push('\t');
    v
}

/// Parse the tiny regex dialect used in this workspace's tests:
/// a sequence of `atom` or `atom{n}` or `atom{lo,hi}`, where atom is `.`,
/// `[class]` (with `A-Z` ranges), or a literal character.
fn parse_pattern(pat: &str) -> Vec<PatternPiece> {
    let chars: Vec<char> = pat.chars().collect();
    let mut i = 0;
    let mut pieces = Vec::new();
    while i < chars.len() {
        let set: Vec<char> = match chars[i] {
            '.' => {
                i += 1;
                dot_chars()
            }
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed [ in pattern {pat:?}"));
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (a, b) = (chars[j] as u32, chars[j + 2] as u32);
                        for c in a..=b {
                            set.push(char::from_u32(c).unwrap());
                        }
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            }
            '\\' => {
                i += 2;
                vec![chars[i - 1]]
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        // Optional {n} / {lo,hi} quantifier.
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed {{ in pattern {pat:?}"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((a, b)) => (
                    a.trim().parse().expect("bad quantifier"),
                    b.trim().parse().expect("bad quantifier"),
                ),
                None => {
                    let n: usize = body.trim().parse().expect("bad quantifier");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(!set.is_empty() && lo <= hi, "bad pattern piece in {pat:?}");
        pieces.push(PatternPiece { chars: set, lo, hi });
    }
    pieces
}

impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse_pattern(self) {
            let reps = piece.lo + rng.below((piece.hi - piece.lo + 1) as u64) as usize;
            for _ in 0..reps {
                out.push(piece.chars[rng.below(piece.chars.len() as u64) as usize]);
            }
        }
        out
    }
}

// ---- macros -----------------------------------------------------------

/// The proptest entry macro: wraps each `#[test] fn f(x in strat, ...)`
/// in a sampling loop.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@expand ($cfg) $($rest)*);
    };
    (@expand ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            let mut accepted = 0u32;
            let mut attempts = 0u32;
            while accepted < config.cases {
                attempts += 1;
                assert!(
                    attempts <= config.cases.saturating_mul(32).max(1024),
                    "proptest {}: too many prop_assume! rejections",
                    stringify!($name)
                );
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                match outcome {
                    Ok(()) => accepted += 1,
                    Err($crate::TestCaseError::Reject) => {}
                    Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("proptest {} failed on case {}: {}", stringify!($name), accepted, msg)
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@expand ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Assert inside a proptest body; failure fails the whole test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}",
            stringify!($left),
            stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Assert inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}",
            stringify!($left),
            stringify!($right)
        );
    }};
}

/// Skip (and resample) the current case when its inputs are unsuitable.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::from_name("ranges");
        for _ in 0..1000 {
            let x = Strategy::sample(&(5usize..120), &mut rng);
            assert!((5..120).contains(&x));
            let f = Strategy::sample(&(-2.0f64..3.0), &mut rng);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn string_patterns_generate_within_class() {
        let mut rng = TestRng::from_name("strings");
        for _ in 0..200 {
            let s = Strategy::sample(&"[ACGT]{1,6}", &mut rng);
            assert!((1..=6).contains(&s.len()));
            assert!(s.chars().all(|c| "ACGT".contains(c)));
            let t = Strategy::sample(&".{0,40}", &mut rng);
            assert!(t.chars().count() <= 40);
            assert!(!t.contains('\n'));
        }
    }

    #[test]
    fn vec_and_select_strategies() {
        let mut rng = TestRng::from_name("vecsel");
        let vs = prop::collection::vec(0u64..10, 3..7);
        for _ in 0..100 {
            let v = Strategy::sample(&vs, &mut rng);
            assert!((3..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
        let sel = prop::sample::select(vec!["a", "b"]);
        let s = Strategy::sample(&sel, &mut rng);
        assert!(s == "a" || s == "b");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro machinery itself: assume + assert both work.
        #[test]
        fn macro_roundtrip(a in 0u32..100, b in 0u32..100) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
            prop_assert!(a < 100 && b < 100, "bounds violated: {a} {b}");
            prop_assert_eq!(a.min(b), b.min(a));
        }
    }
}
