//! Per-thread random-state pools in the two memory layouts compared by the
//! paper's *coalesced random states* optimization (Sec. V-B2, Fig. 10).
//!
//! cuRAND's object-oriented design stores one `curandStateXORWOW_t` per GPU
//! thread as a contiguous structure of six 32-bit words — an
//! **array-of-structs (AoS)** placement. Within a warp, lane `l` touching
//! word `w` of *its own* state hits address `base + (l*6 + w)*4`, so a
//! 32-lane access to the same logical word spans `32 * 24 B = 768 B` —
//! 24 sectors of 32 B — instead of the minimal 4 sectors.
//!
//! The paper's fix transposes the pool into a **struct-of-arrays (SoA)**
//! placement (`base + (w*n + l)*4`): the same word of all lanes is
//! contiguous, one logical access touches 4 sectors, and warp accesses
//! coalesce.
//!
//! Both placements are *functionally identical* — this module stores the
//! actual state words in the chosen layout and steps them in place, and a
//! property test asserts stream equality between layouts. The
//! [`StatePool::word_addr`] method exposes the simulated byte address of
//! every word so the GPU simulator (crate `gpu-sim`) can replay the exact
//! memory traffic of each placement.

use crate::xorwow::{XorWow, XORWOW_WORDS};

/// Memory placement of a pool of XORWOW states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StateLayout {
    /// One six-word struct per thread, structs contiguous (cuRAND default).
    ArrayOfStructs,
    /// Six arrays of one word per thread (the paper's coalesced layout).
    Coalesced,
}

impl StateLayout {
    /// Human-readable label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            StateLayout::ArrayOfStructs => "AoS (cuRAND default)",
            StateLayout::Coalesced => "coalesced SoA",
        }
    }
}

/// Back-compat alias used by early revisions of the GPU simulator.
pub type SoaOrAos = StateLayout;

/// Convenience alias: a coalesced pool is just a [`StatePool`] constructed
/// with [`StateLayout::Coalesced`].
pub type CoalescedStatePool = StatePool;

/// A pool of `n` XORWOW states stored in a single flat word buffer whose
/// element order follows the chosen [`StateLayout`].
#[derive(Debug, Clone)]
pub struct StatePool {
    layout: StateLayout,
    n: usize,
    words: Vec<u32>,
    base_addr: u64,
}

impl StatePool {
    /// Build a pool of `n` states, state `i` initialized as
    /// `XorWow::init(seed, i)` (mirroring `curand_init(seed, tid, ...)`).
    pub fn new(layout: StateLayout, n: usize, seed: u64) -> Self {
        Self::with_base_addr(layout, n, seed, 0)
    }

    /// Like [`StatePool::new`] but places the pool at a given simulated base
    /// address (the GPU simulator lays pools out in its flat address space).
    pub fn with_base_addr(layout: StateLayout, n: usize, seed: u64, base_addr: u64) -> Self {
        assert!(n > 0, "state pool must hold at least one state");
        let mut pool = Self {
            layout,
            n,
            words: vec![0u32; n * XORWOW_WORDS],
            base_addr,
        };
        for i in 0..n {
            pool.store(i, XorWow::init(seed, i as u64));
        }
        pool
    }

    /// AoS constructor shorthand.
    pub fn aos(n: usize, seed: u64) -> Self {
        Self::new(StateLayout::ArrayOfStructs, n, seed)
    }

    /// Coalesced (SoA) constructor shorthand.
    pub fn coalesced(n: usize, seed: u64) -> Self {
        Self::new(StateLayout::Coalesced, n, seed)
    }

    /// Number of states in the pool.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the pool is empty (never, by construction — kept for
    /// idiomatic `len`/`is_empty` pairing).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The pool's layout.
    pub fn layout(&self) -> StateLayout {
        self.layout
    }

    /// Total footprint in bytes (both layouts are identical in size; only
    /// the element order differs).
    pub fn size_bytes(&self) -> u64 {
        (self.words.len() * 4) as u64
    }

    /// Flat index of word `w` of state `i` under the current layout.
    #[inline]
    fn word_index(&self, i: usize, w: usize) -> usize {
        debug_assert!(i < self.n && w < XORWOW_WORDS);
        match self.layout {
            StateLayout::ArrayOfStructs => i * XORWOW_WORDS + w,
            StateLayout::Coalesced => w * self.n + i,
        }
    }

    /// Simulated byte address of word `w` of state `i`.
    #[inline]
    pub fn word_addr(&self, i: usize, w: usize) -> u64 {
        self.base_addr + (self.word_index(i, w) * 4) as u64
    }

    /// Simulated byte addresses of all six words of state `i`, in word order
    /// `x, y, z, w, v, d`.
    #[inline]
    pub fn addresses(&self, i: usize) -> [u64; XORWOW_WORDS] {
        let mut a = [0u64; XORWOW_WORDS];
        for (w, slot) in a.iter_mut().enumerate() {
            *slot = self.word_addr(i, w);
        }
        a
    }

    /// Gather state `i` out of the pool.
    #[inline]
    pub fn load(&self, i: usize) -> XorWow {
        let s = [
            self.words[self.word_index(i, 0)],
            self.words[self.word_index(i, 1)],
            self.words[self.word_index(i, 2)],
            self.words[self.word_index(i, 3)],
            self.words[self.word_index(i, 4)],
        ];
        XorWow {
            s,
            d: self.words[self.word_index(i, 5)],
        }
    }

    /// Scatter state `i` back into the pool.
    #[inline]
    pub fn store(&mut self, i: usize, st: XorWow) {
        for (w, &word) in st.s.iter().enumerate() {
            let idx = self.word_index(i, w);
            self.words[idx] = word;
        }
        let idx = self.word_index(i, 5);
        self.words[idx] = st.d;
    }

    /// Step state `i` in place and return its next 32-bit output.
    #[inline]
    pub fn next_u32(&mut self, i: usize) -> u32 {
        let mut st = self.load(i);
        let out = st.step();
        self.store(i, st);
        out
    }

    /// Step state `i` and return a uniform `f32` in `[0, 1)`.
    #[inline]
    pub fn next_f32(&mut self, i: usize) -> f32 {
        (self.next_u32(i) >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Step state `i` and return a uniform `u64` (two 32-bit draws).
    #[inline]
    pub fn next_u64(&mut self, i: usize) -> u64 {
        let hi = self.next_u32(i) as u64;
        let lo = self.next_u32(i) as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layouts_yield_identical_streams() {
        let mut aos = StatePool::aos(33, 42);
        let mut soa = StatePool::coalesced(33, 42);
        for round in 0..16 {
            for i in 0..33 {
                assert_eq!(
                    aos.next_u32(i),
                    soa.next_u32(i),
                    "state {i} diverged at round {round}"
                );
            }
        }
    }

    #[test]
    fn streams_match_standalone_generator() {
        let mut pool = StatePool::coalesced(8, 7);
        for i in 0..8 {
            let mut reference = XorWow::init(7, i as u64);
            for _ in 0..32 {
                assert_eq!(pool.next_u32(i), reference.step());
            }
        }
    }

    #[test]
    fn aos_addresses_are_struct_contiguous() {
        let pool = StatePool::with_base_addr(StateLayout::ArrayOfStructs, 4, 1, 0x1000);
        // State 1's words occupy bytes [0x1000+24, 0x1000+48).
        let a = pool.addresses(1);
        assert_eq!(a[0], 0x1000 + 24);
        for w in 1..XORWOW_WORDS {
            assert_eq!(a[w], a[w - 1] + 4, "AoS words must be adjacent");
        }
    }

    #[test]
    fn coalesced_addresses_group_same_word_across_states() {
        let n = 32;
        let pool = StatePool::with_base_addr(StateLayout::Coalesced, n, 1, 0x2000);
        // Word w of states i and i+1 must be adjacent.
        for w in 0..XORWOW_WORDS {
            for i in 0..n - 1 {
                assert_eq!(
                    pool.word_addr(i + 1, w),
                    pool.word_addr(i, w) + 4,
                    "coalesced: same word of neighbouring states adjacent"
                );
            }
        }
        // Distinct words of one state are n*4 bytes apart.
        assert_eq!(pool.word_addr(0, 1) - pool.word_addr(0, 0), (n * 4) as u64);
    }

    #[test]
    fn warp_access_footprint_differs_by_layout() {
        // The quantity the paper's Table X measures: number of distinct 32-B
        // sectors touched when a 32-lane warp reads word 0 of each lane's
        // state.
        let sector = |addr: u64| addr / 32;
        let count_sectors = |pool: &StatePool| {
            let mut sectors: Vec<u64> = (0..32)
                .map(|lane| sector(pool.word_addr(lane, 0)))
                .collect();
            sectors.sort_unstable();
            sectors.dedup();
            sectors.len()
        };
        let aos = StatePool::aos(32, 3);
        let soa = StatePool::coalesced(32, 3);
        // AoS: 32 lanes * 24 B stride = 768 B = 24 sectors.
        assert_eq!(count_sectors(&aos), 24);
        // SoA: 32 lanes * 4 B contiguous = 128 B = 4 sectors.
        assert_eq!(count_sectors(&soa), 4);
    }

    #[test]
    fn size_is_layout_independent() {
        assert_eq!(
            StatePool::aos(100, 1).size_bytes(),
            StatePool::coalesced(100, 1).size_bytes()
        );
        assert_eq!(StatePool::aos(100, 1).size_bytes(), 100 * 24);
    }

    #[test]
    fn load_store_round_trip() {
        for layout in [StateLayout::ArrayOfStructs, StateLayout::Coalesced] {
            let mut pool = StatePool::new(layout, 5, 9);
            let st = XorWow::from_words([10, 20, 30, 40, 50], 60);
            pool.store(3, st);
            assert_eq!(pool.load(3), st);
            // Neighbours untouched.
            assert_eq!(pool.load(2), XorWow::init(9, 2));
            assert_eq!(pool.load(4), XorWow::init(9, 4));
        }
    }

    #[test]
    #[should_panic(expected = "at least one state")]
    fn empty_pool_rejected() {
        let _ = StatePool::aos(0, 1);
    }

    #[test]
    fn label_strings_are_distinct() {
        assert_ne!(
            StateLayout::ArrayOfStructs.label(),
            StateLayout::Coalesced.label()
        );
    }
}
