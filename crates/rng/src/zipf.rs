//! Power-law ("dirty Zipfian") sampling of node-pair rank distances.
//!
//! During the cooling phase of path-guided SGD (Alg. 1 line 8) the second
//! node of a pair is chosen close to the first with a Zipf-distributed rank
//! distance, which refines local structure. `odgi-layout` implements this
//! with a "dirty" variant of the classic Gray et al. bounded Zipfian
//! generator ("Quickly generating billion-record synthetic databases",
//! SIGMOD'94): the ζ(n, θ) normalizer is precomputed for a *quantized* set
//! of space sizes and the nearest precomputed value is used for any actual
//! path length — trading an imperceptible distribution error for O(1)
//! sampling. We reproduce that scheme here, including odgi's default
//! parameters (θ = 0.99, `space_max` = 1000, quantization step = 100).

use crate::Rng64;

/// odgi-layout's default Zipf exponent θ.
pub const DEFAULT_THETA: f64 = 0.99;
/// odgi-layout's default exactly-tabulated space bound.
pub const DEFAULT_SPACE_MAX: u64 = 1000;
/// odgi-layout's default quantization step beyond `space_max`.
pub const DEFAULT_QUANT_STEP: u64 = 100;

/// Generalized harmonic number ζ(n, θ) = Σ_{k=1..n} k^-θ, computed by
/// direct summation. O(n); used only for table construction and tests.
pub fn zeta(n: u64, theta: f64) -> f64 {
    let mut sum = 0.0;
    for k in 1..=n {
        sum += (k as f64).powf(-theta);
    }
    sum
}

/// Bounded Zipf sample in `[1, n]` via Gray et al.'s inverse-CDF
/// approximation, given a (possibly approximate) ζ(n, θ).
///
/// `theta` must be in (0, 1); `n ≥ 1`.
#[inline]
pub fn sample_zipf<R: Rng64>(rng: &mut R, n: u64, theta: f64, zetan: f64) -> u64 {
    debug_assert!(n >= 1);
    debug_assert!(theta > 0.0 && theta < 1.0, "theta must be in (0,1)");
    if n == 1 {
        // Still consume one draw so call counts stay layout-independent.
        let _ = rng.next_f64();
        return 1;
    }
    let alpha = 1.0 / (1.0 - theta);
    let nf = n as f64;
    let eta = zipf_eta(nf, theta, zetan);
    let u = rng.next_f64();
    let uz = u * zetan;
    if uz < 1.0 {
        return 1;
    }
    if uz < 1.0 + 0.5f64.powf(theta) {
        return 2;
    }
    let v = 1 + (nf * pow_alpha(eta * u - eta + 1.0, alpha)) as u64;
    v.min(n)
}

/// Precomputed ζ table over quantized space sizes (odgi's "dirty" scheme).
///
/// For spaces `s ≤ space_max` the exact ζ(s, θ) is tabulated; beyond that,
/// ζ is tabulated at `space_max + k·quant_step` and lookups round *down* to
/// the nearest tabulated point, underestimating the normalizer by a
/// vanishing relative amount (ζ grows ~log n for θ near 1).
///
/// The table also pre-evaluates everything in Gray et al.'s inverse CDF
/// that depends only on `(θ, space)` — the `η` coefficient and the
/// rank-2 threshold — because they cost several `powf` calls each and the
/// layout hot loop draws one Zipf sample per cooled term. With the table,
/// [`ZipfTable::sample`] performs exactly one `powf`. Beyond `space_max`
/// the pre-evaluated `η` is the one of the rounded-down tabulated space
/// ("dirty η", same spirit and error regime as the dirty ζ).
#[derive(Debug, Clone)]
pub struct ZipfTable {
    theta: f64,
    space_max: u64,
    quant_step: u64,
    /// `exact[s]` = (ζ(s, θ), η(s, ζ)) for s in 0..=space_max (0 unused).
    exact: Vec<(f64, f64)>,
    /// `quantized[k]` = the same pair at `space_max + (k+1)·quant_step`.
    quantized: Vec<(f64, f64)>,
    /// `1 / (1 − θ)` — the inverse-CDF exponent.
    alpha: f64,
    /// `1 + 0.5^θ` — the rank-2 acceptance threshold.
    two_threshold: f64,
}

/// The `η` coefficient of Gray et al.'s inverse CDF for a space of `n`
/// with normalizer `zetan`. Kept textually identical to the expression in
/// [`sample_zipf`] so tabulated draws are bit-identical to direct ones.
fn zipf_eta(n: f64, theta: f64, zetan: f64) -> f64 {
    (1.0 - (2.0 / n).powf(1.0 - theta)) / (1.0 - zeta(2, theta) / zetan)
}

/// `x^α` for the inverse CDF's tail. For θ = 0.99 (odgi's default) the
/// exponent is 100 up to floating-point representation of θ, and every
/// hot-loop draw pays this pow — binary exponentiation (`powi`) is
/// several times cheaper than the transcendental `powf`, so when α is
/// within rounding of a small integer we use the integer exponent. The
/// relative exponent perturbation (≤ 1e-9) is far below the "dirty"
/// scheme's own quantization error. Shared by [`sample_zipf`] and
/// [`ZipfTable::sample`] so both paths stay bit-identical to each other.
#[inline]
fn pow_alpha(x: f64, alpha: f64) -> f64 {
    let k = alpha.round();
    if (alpha - k).abs() < 1e-9 * k.max(1.0) && (1.0..=512.0).contains(&k) {
        x.powi(k as i32)
    } else {
        x.powf(alpha)
    }
}

impl ZipfTable {
    /// Build a table covering spaces up to `max_space`, with odgi's scheme.
    pub fn new(theta: f64, space_max: u64, quant_step: u64, max_space: u64) -> Self {
        assert!(theta > 0.0 && theta < 1.0, "theta must be in (0,1)");
        assert!(space_max >= 2 && quant_step >= 1);
        let mut exact = Vec::with_capacity(space_max as usize + 1);
        exact.push((0.0, 0.0));
        let mut acc = 0.0;
        for k in 1..=space_max {
            acc += (k as f64).powf(-theta);
            exact.push((acc, zipf_eta(k as f64, theta, acc)));
        }
        let mut quantized = Vec::new();
        if max_space > space_max {
            let mut k = space_max;
            let mut z = acc;
            while k < max_space {
                let next = k + quant_step;
                for j in (k + 1)..=next {
                    z += (j as f64).powf(-theta);
                }
                quantized.push((z, zipf_eta(next as f64, theta, z)));
                k = next;
            }
        }
        Self {
            theta,
            space_max,
            quant_step,
            exact,
            quantized,
            alpha: 1.0 / (1.0 - theta),
            two_threshold: 1.0 + 0.5f64.powf(theta),
        }
    }

    /// Build with odgi's default parameters, covering `max_space`.
    pub fn with_defaults(max_space: u64) -> Self {
        Self::new(
            DEFAULT_THETA,
            DEFAULT_SPACE_MAX,
            DEFAULT_QUANT_STEP,
            max_space,
        )
    }

    /// The Zipf exponent θ.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// The tabulated `(ζ, η)` pair for the largest tabulated s' ≤ `space`
    /// (exact when `space ≤ space_max`). `space` must be ≥ 1.
    #[inline]
    fn params_for(&self, space: u64) -> (f64, f64) {
        debug_assert!(space >= 1);
        if space <= self.space_max {
            self.exact[space as usize]
        } else {
            let k = (space - self.space_max) / self.quant_step;
            if k == 0 || self.quantized.is_empty() {
                self.exact[self.space_max as usize]
            } else {
                let idx = (k as usize - 1).min(self.quantized.len() - 1);
                self.quantized[idx]
            }
        }
    }

    /// ζ(s', θ) for the largest tabulated s' ≤ `space` (exact when
    /// `space ≤ space_max`). `space` must be ≥ 1.
    #[inline]
    pub fn zeta_for(&self, space: u64) -> f64 {
        self.params_for(space).0
    }

    /// Draw a Zipf-distributed rank distance in `[1, space]`.
    ///
    /// One `powf` per call: the normalizer, the `η` coefficient and the
    /// small-rank thresholds all come from the table. For spaces within
    /// the exact range this returns bit-identical draws to
    /// [`sample_zipf`]; beyond it, `η` is quantized like ζ.
    #[inline]
    pub fn sample<R: Rng64>(&self, rng: &mut R, space: u64) -> u64 {
        debug_assert!(space >= 1);
        if space == 1 {
            // Still consume one draw so call counts stay layout-independent.
            let _ = rng.next_f64();
            return 1;
        }
        let (zetan, eta) = self.params_for(space);
        let u = rng.next_f64();
        let uz = u * zetan;
        if uz < 1.0 {
            return 1;
        }
        if uz < self.two_threshold {
            return 2;
        }
        let v = 1 + ((space as f64) * pow_alpha(eta * u - eta + 1.0, self.alpha)) as u64;
        v.min(space)
    }
}

/// A small convenience wrapper bundling a table with a fixed space (used in
/// micro-benchmarks where the path length is constant).
#[derive(Debug, Clone)]
pub struct ZipfGen {
    table: ZipfTable,
    space: u64,
}

impl ZipfGen {
    /// Build a generator for distances in `[1, space]`.
    pub fn new(theta: f64, space: u64) -> Self {
        Self {
            table: ZipfTable::new(
                theta,
                DEFAULT_SPACE_MAX.min(space.max(2)),
                DEFAULT_QUANT_STEP,
                space,
            ),
            space,
        }
    }

    /// Draw a sample in `[1, space]`.
    #[inline]
    pub fn sample<R: Rng64>(&self, rng: &mut R) -> u64 {
        self.table.sample(rng, self.space)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Xoshiro256Plus;

    #[test]
    fn zeta_small_values() {
        assert!((zeta(1, 0.99) - 1.0).abs() < 1e-12);
        let z2 = 1.0 + 0.5f64.powf(0.99);
        assert!((zeta(2, 0.99) - z2).abs() < 1e-12);
    }

    #[test]
    fn zeta_is_monotone_in_n() {
        let mut prev = 0.0;
        for n in 1..200 {
            let z = zeta(n, 0.99);
            assert!(z > prev);
            prev = z;
        }
    }

    #[test]
    fn samples_are_within_bounds() {
        let mut rng = Xoshiro256Plus::seed_from_u64(1);
        let table = ZipfTable::with_defaults(100_000);
        for &space in &[1u64, 2, 3, 10, 999, 1000, 1001, 5000, 100_000] {
            for _ in 0..500 {
                let x = table.sample(&mut rng, space);
                assert!((1..=space).contains(&x), "x={x} space={space}");
            }
        }
    }

    #[test]
    fn rank_one_has_expected_mass() {
        // P(X = 1) = 1/zeta(n); check empirically within loose tolerance.
        let n = 1000u64;
        let zetan = zeta(n, 0.99);
        let expect = 1.0 / zetan;
        let mut rng = Xoshiro256Plus::seed_from_u64(7);
        let draws = 200_000;
        let ones = (0..draws)
            .filter(|_| sample_zipf(&mut rng, n, 0.99, zetan) == 1)
            .count();
        let freq = ones as f64 / draws as f64;
        assert!(
            (freq - expect).abs() < 0.01,
            "freq={freq:.4} expect={expect:.4}"
        );
    }

    #[test]
    fn distribution_is_heavily_skewed_to_small_ranks() {
        let mut rng = Xoshiro256Plus::seed_from_u64(11);
        let gen = ZipfGen::new(0.99, 10_000);
        let draws = 50_000;
        let small = (0..draws).filter(|_| gen.sample(&mut rng) <= 10).count();
        // For theta=0.99 over [1,10000], zeta(10)/zeta(10000) ≈ 0.28 of the
        // mass sits on ranks <= 10 — orders of magnitude above the uniform
        // mass of 0.001.
        let frac = small as f64 / draws as f64;
        assert!((0.2..0.45).contains(&frac), "small-rank mass = {frac}");
    }

    #[test]
    fn quantized_zeta_rounds_down() {
        let t = ZipfTable::new(0.99, 100, 10, 1000);
        // Inside the exact range.
        assert!((t.zeta_for(50) - zeta(50, 0.99)).abs() < 1e-9);
        assert!((t.zeta_for(100) - zeta(100, 0.99)).abs() < 1e-9);
        // Just past space_max: rounds down to zeta(100).
        assert!((t.zeta_for(105) - zeta(100, 0.99)).abs() < 1e-9);
        // At the first quantization point.
        assert!((t.zeta_for(110) - zeta(110, 0.99)).abs() < 1e-9);
        // Between points: rounds down.
        assert!((t.zeta_for(119) - zeta(110, 0.99)).abs() < 1e-9);
        // Relative error of the dirty scheme stays tiny.
        let approx = t.zeta_for(995);
        let exact = zeta(995, 0.99);
        assert!((exact - approx) / exact < 0.01);
    }

    #[test]
    fn space_one_always_returns_one() {
        let mut rng = Xoshiro256Plus::seed_from_u64(3);
        let table = ZipfTable::with_defaults(10);
        for _ in 0..100 {
            assert_eq!(table.sample(&mut rng, 1), 1);
        }
    }

    #[test]
    fn table_sampling_is_bit_identical_to_direct_in_the_exact_range() {
        // The pre-evaluated (ζ, η) fast path must not change a single
        // draw where the table is exact.
        let table = ZipfTable::with_defaults(5000);
        for space in [2u64, 3, 10, 137, 999, 1000] {
            let mut a = Xoshiro256Plus::seed_from_u64(space);
            let mut b = Xoshiro256Plus::seed_from_u64(space);
            let zetan = zeta(space, DEFAULT_THETA);
            for _ in 0..500 {
                assert_eq!(
                    table.sample(&mut a, space),
                    sample_zipf(&mut b, space, DEFAULT_THETA, zetan),
                    "space {space}"
                );
            }
        }
    }

    #[test]
    fn quantized_spaces_stay_in_bounds_and_skewed() {
        // Past space_max the η coefficient is quantized like ζ; the
        // distribution must remain a bounded, small-rank-heavy Zipf.
        let table = ZipfTable::with_defaults(50_000);
        let mut rng = Xoshiro256Plus::seed_from_u64(17);
        let draws = 20_000;
        let mut small = 0usize;
        for _ in 0..draws {
            let x = table.sample(&mut rng, 37_123);
            assert!((1..=37_123).contains(&x));
            if x <= 10 {
                small += 1;
            }
        }
        let frac = small as f64 / draws as f64;
        assert!((0.2..0.5).contains(&frac), "small-rank mass {frac}");
    }

    #[test]
    fn deterministic_given_seed() {
        let table = ZipfTable::with_defaults(5000);
        let mut a = Xoshiro256Plus::seed_from_u64(42);
        let mut b = Xoshiro256Plus::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(table.sample(&mut a, 5000), table.sample(&mut b, 5000));
        }
    }

    #[test]
    #[should_panic(expected = "theta")]
    fn theta_out_of_range_rejected() {
        let _ = ZipfTable::new(1.0, 100, 10, 100);
    }

    #[test]
    fn mean_rank_grows_with_space() {
        // Sanity: the expected sampled distance grows (slowly) with space.
        let mut rng = Xoshiro256Plus::seed_from_u64(5);
        let table = ZipfTable::with_defaults(100_000);
        let mean = |space: u64, rng: &mut Xoshiro256Plus| {
            let n = 20_000;
            (0..n).map(|_| table.sample(rng, space) as f64).sum::<f64>() / n as f64
        };
        let m_small = mean(100, &mut rng);
        let m_large = mean(100_000, &mut rng);
        assert!(
            m_large > 2.0 * m_small,
            "m_small={m_small:.2} m_large={m_large:.2}"
        );
    }
}
