//! Walker/Vose alias method for O(1) weighted discrete sampling.
//!
//! Alg. 1 line 5 selects a path with probability proportional to its node
//! count on *every* SGD step — billions of draws for a chromosome-scale
//! graph — so the selection must be O(1). `odgi-layout` achieves this with
//! a discrete distribution over path lengths; we use the classic alias
//! table, which needs two table reads and one comparison per draw.

use crate::Rng64;

/// An alias table over `n` outcomes with fixed weights.
#[derive(Debug, Clone)]
pub struct AliasTable {
    /// Acceptance probability of column i (scaled to [0,1]).
    prob: Vec<f64>,
    /// Alias outcome of column i.
    alias: Vec<u32>,
}

impl AliasTable {
    /// Build from non-negative weights. At least one weight must be
    /// positive; entries with zero weight are never sampled.
    ///
    /// Vose's O(n) construction.
    pub fn new(weights: &[f64]) -> Self {
        assert!(
            !weights.is_empty(),
            "alias table needs at least one outcome"
        );
        assert!(
            weights.iter().all(|&w| w.is_finite() && w >= 0.0),
            "weights must be finite and non-negative"
        );
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "at least one weight must be positive");
        let n = weights.len();
        let scale = n as f64 / total;

        let mut prob = vec![0.0f64; n];
        let mut alias = vec![0u32; n];
        // Scaled probabilities; >1 ⇒ donor ("large"), <1 ⇒ needs filling.
        let mut scaled: Vec<f64> = weights.iter().map(|&w| w * scale).collect();
        let mut small: Vec<u32> = Vec::with_capacity(n);
        let mut large: Vec<u32> = Vec::with_capacity(n);
        for (i, &p) in scaled.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            prob[s as usize] = scaled[s as usize];
            alias[s as usize] = l;
            scaled[l as usize] = (scaled[l as usize] + scaled[s as usize]) - 1.0;
            if scaled[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Leftovers are exactly 1 up to FP error.
        for &l in &large {
            prob[l as usize] = 1.0;
            alias[l as usize] = l;
        }
        for &s in &small {
            prob[s as usize] = 1.0;
            alias[s as usize] = s;
        }
        Self { prob, alias }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True when the table has no outcomes (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draw one outcome index.
    #[inline]
    pub fn sample<R: Rng64>(&self, rng: &mut R) -> usize {
        let i = rng.gen_below(self.prob.len() as u64) as usize;
        if rng.next_f64() < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Xoshiro256Plus;

    fn empirical(weights: &[f64], draws: usize, seed: u64) -> Vec<f64> {
        let t = AliasTable::new(weights);
        let mut rng = Xoshiro256Plus::seed_from_u64(seed);
        let mut counts = vec![0usize; weights.len()];
        for _ in 0..draws {
            counts[t.sample(&mut rng)] += 1;
        }
        counts.iter().map(|&c| c as f64 / draws as f64).collect()
    }

    #[test]
    fn single_outcome_always_sampled() {
        let t = AliasTable::new(&[3.5]);
        let mut rng = Xoshiro256Plus::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(t.sample(&mut rng), 0);
        }
    }

    #[test]
    fn uniform_weights_are_uniform() {
        let freq = empirical(&[1.0; 10], 200_000, 2);
        for (i, f) in freq.iter().enumerate() {
            assert!((f - 0.1).abs() < 0.01, "outcome {i}: {f}");
        }
    }

    #[test]
    fn skewed_weights_match_expectation() {
        let w = [1.0, 2.0, 3.0, 4.0];
        let freq = empirical(&w, 400_000, 3);
        let total: f64 = w.iter().sum();
        for (i, f) in freq.iter().enumerate() {
            let expect = w[i] / total;
            assert!((f - expect).abs() < 0.01, "outcome {i}: {f} vs {expect}");
        }
    }

    #[test]
    fn zero_weight_never_sampled() {
        let freq = empirical(&[0.0, 1.0, 0.0, 1.0], 50_000, 4);
        assert_eq!(freq[0], 0.0);
        assert_eq!(freq[2], 0.0);
    }

    #[test]
    fn extreme_skew_dominant_outcome_wins() {
        let freq = empirical(&[1e-6, 1.0], 50_000, 5);
        assert!(freq[1] > 0.999);
    }

    #[test]
    fn path_length_weighting_use_case() {
        // The layout use case: paths weighted by node count.
        let path_lengths = [5.0f64, 50.0, 500.0];
        let freq = empirical(&path_lengths, 300_000, 6);
        let total: f64 = path_lengths.iter().sum();
        for i in 0..3 {
            let expect = path_lengths[i] / total;
            assert!(
                (freq[i] - expect).abs() < 0.01,
                "path {i}: {} vs {expect}",
                freq[i]
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one outcome")]
    fn empty_rejected() {
        let _ = AliasTable::new(&[]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn all_zero_rejected() {
        let _ = AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_rejected() {
        let _ = AliasTable::new(&[1.0, -0.5]);
    }

    #[test]
    fn large_table_construction_is_consistent() {
        // Probabilities in every column stay in [0,1] and aliases in range.
        let weights: Vec<f64> = (1..=1000).map(|i| (i % 37 + 1) as f64).collect();
        let t = AliasTable::new(&weights);
        assert_eq!(t.len(), 1000);
        for i in 0..t.len() {
            assert!((0.0..=1.0 + 1e-9).contains(&t.prob[i]));
            assert!((t.alias[i] as usize) < t.len());
        }
    }
}
