//! Xoshiro256+ and Xoshiro256** — Blackman & Vigna's scrambled linear
//! generators.
//!
//! `odgi-layout` uses **Xoshiro256+** for every random decision in the
//! path-guided SGD inner loop (paper Sec. III-B cites it explicitly as the
//! LFSR-based PRNG whose low compute cost contributes to the workload being
//! memory-bound). We implement the 256-bit variants from the published
//! algorithm, plus the `jump()` function used to give each layout thread a
//! provably disjoint subsequence (2^128 steps apart) — this is how the
//! Hogwild CPU engine seeds its workers.

use crate::{Rng64, SplitMix64};

/// Shared 256-bit xoshiro state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct State256 {
    s: [u64; 4],
}

impl State256 {
    #[inline]
    fn from_seed(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        sm.fill(&mut s);
        // SplitMix64 cannot produce four zero words in a row, but guard
        // anyway: the all-zero state is the one fixed point of the LFSR.
        if s == [0, 0, 0, 0] {
            s = [0x9E3779B97F4A7C15, 1, 2, 3];
        }
        Self { s }
    }

    /// The xoshiro256 state transition (identical for + and ** variants).
    #[inline]
    fn advance(&mut self) {
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
    }

    /// Jump polynomial for 2^128 state advances.
    const JUMP: [u64; 4] = [
        0x180EC6D33CFD0ABA,
        0xD5A61266F0C9392C,
        0xA9582618E03FC9AA,
        0x39ABDC4529B1661C,
    ];

    /// Advance the state by 2^128 steps. Used to partition one seed into
    /// non-overlapping per-thread streams.
    fn jump(&mut self, output: impl Fn(&State256) -> u64) {
        let mut acc = [0u64; 4];
        for &jw in Self::JUMP.iter() {
            for b in 0..64 {
                if (jw & (1u64 << b)) != 0 {
                    for (a, s) in acc.iter_mut().zip(self.s.iter()) {
                        *a ^= s;
                    }
                }
                // advance one step; the output function is irrelevant to the
                // transition but kept for signature symmetry.
                let _ = output(self);
                self.advance();
            }
        }
        self.s = acc;
    }
}

/// Xoshiro256+ — returns `s[0] + s[3]`. The generator used by odgi-layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Xoshiro256Plus {
    state: State256,
}

impl Xoshiro256Plus {
    /// Seed via SplitMix64 expansion (the recommended procedure).
    #[inline]
    pub fn seed_from_u64(seed: u64) -> Self {
        Self {
            state: State256::from_seed(seed),
        }
    }

    /// Construct from explicit state words (must not be all zero).
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s != [0, 0, 0, 0], "xoshiro state must not be all zero");
        Self {
            state: State256 { s },
        }
    }

    /// Expose the state words (for tests and serialization).
    pub fn state(&self) -> [u64; 4] {
        self.state.s
    }

    /// Jump 2^128 steps ahead; returns a new generator and leaves `self`
    /// positioned at the start of the following stream.
    pub fn jump(&mut self) -> Self {
        let out = *self;
        self.state.jump(|st| st.s[0].wrapping_add(st.s[3]));
        out
    }

    /// Derive `n` provably non-overlapping generators for `n` threads.
    pub fn split_streams(seed: u64, n: usize) -> Vec<Self> {
        let mut root = Self::seed_from_u64(seed);
        (0..n).map(|_| root.jump()).collect()
    }
}

impl Rng64 for Xoshiro256Plus {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.state.s[0].wrapping_add(self.state.s[3]);
        self.state.advance();
        result
    }
}

/// Xoshiro256** — the all-purpose variant (stronger scrambling; used where
/// low-bit quality matters, e.g. workload generation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    state: State256,
}

impl Xoshiro256StarStar {
    /// Seed via SplitMix64 expansion.
    #[inline]
    pub fn seed_from_u64(seed: u64) -> Self {
        Self {
            state: State256::from_seed(seed),
        }
    }

    /// Jump 2^128 steps ahead (see [`Xoshiro256Plus::jump`]).
    pub fn jump(&mut self) -> Self {
        let out = *self;
        self.state
            .jump(|st| st.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9));
        out
    }
}

impl Rng64 for Xoshiro256StarStar {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.state.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        self.state.advance();
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hand-stepped reference: xoshiro256+ with state (1, 2, 3, 4).
    ///
    /// Step 0 output: s0 + s3 = 1 + 4 = 5.
    /// Transition: t = 2<<17 = 0x40000; s2^=s0 -> 2; s3^=s1 -> 6; s1^=s2 -> 0;
    ///   s0^=s3 -> 7; s2^=t -> 0x40002; s3 = rotl(6,45) = 6<<45.
    /// Step 1 output: 7 + (6<<45) = 0xC0000000000007.
    #[test]
    fn reference_first_two_outputs() {
        let mut g = Xoshiro256Plus::from_state([1, 2, 3, 4]);
        assert_eq!(g.next_u64(), 5);
        assert_eq!(g.next_u64(), (6u64 << 45) + 7);
    }

    #[test]
    fn starstar_reference_first_output() {
        // output = rotl(s1 * 5, 7) * 9 with s1 = 2 => rotl(10,7)*9 = 1280*9.
        let mut g = Xoshiro256StarStar {
            state: State256 { s: [1, 2, 3, 4] },
        };
        assert_eq!(g.next_u64(), 11520);
    }

    #[test]
    #[should_panic(expected = "all zero")]
    fn zero_state_rejected() {
        let _ = Xoshiro256Plus::from_state([0, 0, 0, 0]);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = Xoshiro256Plus::seed_from_u64(123);
        let mut b = Xoshiro256Plus::seed_from_u64(123);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Xoshiro256Plus::seed_from_u64(1);
        let mut b = Xoshiro256Plus::seed_from_u64(2);
        let av: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let bv: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_ne!(av, bv);
    }

    #[test]
    fn jump_streams_do_not_collide_early() {
        // Streams 2^128 apart cannot overlap in any feasible test window;
        // check the first outputs differ pairwise.
        let streams = Xoshiro256Plus::split_streams(7, 8);
        let firsts: Vec<u64> = streams.into_iter().map(|mut g| g.next_u64()).collect();
        for i in 0..firsts.len() {
            for j in (i + 1)..firsts.len() {
                assert_ne!(firsts[i], firsts[j], "streams {i} and {j} collide");
            }
        }
    }

    #[test]
    fn jump_preserves_original_stream_prefix() {
        // jump() returns the pre-jump generator: its outputs must equal the
        // un-jumped generator's outputs.
        let mut root = Xoshiro256Plus::seed_from_u64(99);
        let reference = root; // copy
        let mut first_stream = root.jump();
        let mut r = reference;
        for _ in 0..32 {
            assert_eq!(first_stream.next_u64(), r.next_u64());
        }
    }

    #[test]
    fn state_never_all_zero_during_run() {
        let mut g = Xoshiro256Plus::seed_from_u64(0);
        for _ in 0..10_000 {
            g.next_u64();
            assert_ne!(g.state(), [0, 0, 0, 0]);
        }
    }

    #[test]
    fn mean_of_unit_samples_is_near_half() {
        use crate::Rng64;
        let mut g = Xoshiro256Plus::seed_from_u64(2024);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| g.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn starstar_low_bits_balanced() {
        let mut g = Xoshiro256StarStar::seed_from_u64(5);
        let ones = (0..10_000).filter(|_| g.next_u64() & 1 == 1).count();
        assert!((4500..5500).contains(&ones), "ones = {ones}");
    }
}
