//! # pgrng — PRNG substrate for pangenome graph layout
//!
//! The paper ("Rapid GPU-Based Pangenome Graph Layout", SC 2024) leans on two
//! pseudo-random number generator families:
//!
//! * **Xoshiro256+** — the LFSR-style generator used by the `odgi-layout`
//!   multithreaded CPU baseline (paper Sec. III-B).
//! * **XORWOW** — the xorshift-family generator used by NVIDIA's cuRAND
//!   library, whose six-word per-thread state is the subject of the paper's
//!   *coalesced random states* optimization (Sec. V-B2).
//!
//! This crate implements both from scratch, together with:
//!
//! * [`SplitMix64`] seeding (the recommended seeder for xoshiro),
//! * [`states`] — per-thread random-state pools in both the original
//!   array-of-structs layout and the paper's coalesced struct-of-arrays
//!   layout, exposing the *addresses* of every state word so the GPU
//!   simulator can replay their memory traffic,
//! * [`zipf`] — the power-law ("dirty Zipfian") node-pair distance sampler
//!   used during the cooling phase of path-guided SGD,
//! * [`alias`] — an alias table for O(1) path selection with probability
//!   proportional to path length (Alg. 1 line 5).
//!
//! Everything is allocation-free in the hot paths, deterministic, and
//! exhaustively unit- and property-tested.

pub mod alias;
pub mod splitmix;
pub mod states;
pub mod xorwow;
pub mod xoshiro;
pub mod zipf;

pub use alias::AliasTable;
pub use splitmix::SplitMix64;
pub use states::{CoalescedStatePool, SoaOrAos, StateLayout, StatePool};
pub use xorwow::XorWow;
pub use xoshiro::{Xoshiro256Plus, Xoshiro256StarStar};
pub use zipf::{ZipfGen, ZipfTable};

/// A 64-bit pseudo-random number generator.
///
/// All layout engines are generic over this trait so the CPU engine can use
/// [`Xoshiro256Plus`] (matching odgi) while the GPU simulator uses
/// [`XorWow`] (matching cuRAND).
pub trait Rng64 {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Next `f64` uniformly distributed in `[0, 1)`.
    ///
    /// Uses the top 53 bits, the standard unbiased construction.
    #[inline]
    fn next_f64(&mut self) -> f64 {
        // 53 bit mantissa: (x >> 11) * 2^-53
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Next `f32` uniformly distributed in `[0, 1)` (24 significant bits).
    #[inline]
    fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Unbiased integer in `[0, bound)` using Lemire's multiply-shift
    /// rejection method. `bound` must be nonzero.
    #[inline]
    fn gen_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "gen_below bound must be > 0");
        // Fast path for power-of-two bounds.
        if bound.is_power_of_two() {
            return self.next_u64() & (bound - 1);
        }
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= (u64::MAX - bound + 1) % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Unbiased integer in the inclusive-exclusive range `[lo, hi)`.
    #[inline]
    fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi, "gen_range requires lo < hi");
        lo + self.gen_below(hi - lo)
    }

    /// Fair coin flip (Alg. 1 lines 6, 12, 13).
    #[inline]
    fn flip(&mut self) -> bool {
        // Use the top bit: for weak low-bit generators (xoshiro+) the top
        // bits have the best equidistribution.
        self.next_u64() >> 63 == 1
    }
}

/// A 32-bit generator (cuRAND XORWOW produces 32-bit outputs natively).
pub trait Rng32 {
    /// Next raw 32-bit output.
    fn next_u32(&mut self) -> u32;

    /// Next `f32` in `[0, 1)` from the top 24 bits.
    #[inline]
    fn next_f32_from_u32(&mut self) -> f32 {
        (self.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Adapter: any [`Rng32`] is an [`Rng64`] by concatenating two outputs,
/// mirroring how device code widens `curand()` results.
impl<T: Rng32> Rng64 for T {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let hi = self.next_u32() as u64;
        let lo = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl Rng64 for Counter {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
            self.0
        }
    }

    #[test]
    fn next_f64_is_in_unit_interval() {
        let mut r = Counter(0);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x), "{x} out of [0,1)");
        }
    }

    #[test]
    fn next_f32_is_in_unit_interval() {
        let mut r = Counter(7);
        for _ in 0..10_000 {
            let x = r.next_f32();
            assert!((0.0..1.0).contains(&x), "{x} out of [0,1)");
        }
    }

    #[test]
    fn gen_below_respects_bound() {
        let mut r = Counter(3);
        for bound in [1u64, 2, 3, 7, 10, 100, 1 << 20, u64::MAX / 3] {
            for _ in 0..200 {
                assert!(r.gen_below(bound) < bound);
            }
        }
    }

    #[test]
    fn gen_below_power_of_two_uses_mask() {
        let mut r = Counter(11);
        for _ in 0..1000 {
            assert!(r.gen_below(64) < 64);
        }
    }

    #[test]
    fn gen_range_is_in_range() {
        let mut r = Counter(5);
        for _ in 0..1000 {
            let x = r.gen_range(10, 20);
            assert!((10..20).contains(&x));
        }
    }

    #[test]
    fn gen_below_covers_small_range() {
        // A weak smoke test of uniformity: every value of a small range
        // appears within a reasonable number of draws.
        let mut r = super::xoshiro::Xoshiro256Plus::seed_from_u64(42);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.gen_below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn flip_is_roughly_fair() {
        let mut r = super::xoshiro::Xoshiro256Plus::seed_from_u64(1);
        let heads = (0..10_000).filter(|_| r.flip()).count();
        assert!((4000..6000).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn rng32_widening_adapter_concatenates() {
        struct Fixed(Vec<u32>, usize);
        impl Rng32 for Fixed {
            fn next_u32(&mut self) -> u32 {
                let v = self.0[self.1 % self.0.len()];
                self.1 += 1;
                v
            }
        }
        let mut f = Fixed(vec![0xDEADBEEF, 0x12345678], 0);
        assert_eq!(f.next_u64(), 0xDEADBEEF_12345678);
    }
}
