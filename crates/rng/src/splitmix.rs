//! SplitMix64 — the canonical seeding generator for the xoshiro family.
//!
//! Sebastiano Vigna's SplitMix64 is a fixed-increment Weyl sequence passed
//! through a 64-bit finalizer. It is the recommended way to expand a single
//! `u64` seed into the 256-bit state of Xoshiro256+ (and we also use it to
//! derive the five words of a cuRAND-style XORWOW state), because it is
//! equidistributed and never produces the all-zero state that would wedge an
//! LFSR generator.

use crate::Rng64;

/// SplitMix64 generator (one `u64` of state).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a raw seed. Any seed, including 0, is valid.
    #[inline]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Produce the next output and advance.
    #[inline]
    #[allow(clippy::should_implement_trait)] // established PRNG naming, not an Iterator
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Fill `out` with successive outputs (used for multi-word state setup).
    #[inline]
    pub fn fill(&mut self, out: &mut [u64]) {
        for w in out {
            *w = self.next();
        }
    }
}

impl Rng64 for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference outputs from Vigna's splitmix64.c with seed = 0:
    /// computed independently from the published algorithm.
    #[test]
    fn reference_vector_seed_zero() {
        let mut sm = SplitMix64::new(0);
        let expected: [u64; 5] = [
            0xE220A8397B1DCDAF,
            0x6E789E6AA1B965F4,
            0x06C45D188009454F,
            0xF88BB8A8724C81EC,
            0x1B39896A51A8749B,
        ];
        for (i, &e) in expected.iter().enumerate() {
            assert_eq!(sm.next(), e, "output {i}");
        }
    }

    #[test]
    fn reference_vector_seed_1234567() {
        // First output for seed 1234567 (independent recomputation).
        let mut sm = SplitMix64::new(1234567);
        let first = sm.next();
        // Recompute by hand:
        let mut z = 1234567u64.wrapping_add(0x9E3779B97F4A7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^= z >> 31;
        assert_eq!(first, z);
    }

    #[test]
    fn distinct_seeds_distinct_streams() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let sa: Vec<u64> = (0..8).map(|_| a.next()).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.next()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn fill_advances_state() {
        let mut sm = SplitMix64::new(99);
        let mut buf = [0u64; 4];
        sm.fill(&mut buf);
        assert!(
            buf.iter().all(|&w| w != 0),
            "zero output is astronomically unlikely"
        );
        let next = sm.next();
        assert!(!buf.contains(&next));
    }

    #[test]
    fn copy_semantics_snapshot_state() {
        let mut a = SplitMix64::new(5);
        let snapshot = a;
        let x = a.next();
        let mut b = snapshot;
        assert_eq!(b.next(), x, "copied state must replay the stream");
    }
}
