//! XORWOW — Marsaglia's xorshift generator with a Weyl sequence, as used by
//! NVIDIA cuRAND (`curandStateXORWOW_t`).
//!
//! The paper's *coalesced random states* optimization (Sec. V-B2) is about
//! the memory layout of exactly this state: cuRAND represents each state as
//! a structure of six 32-bit words (five xorshift words + one Weyl counter),
//! and the naive one-struct-per-thread placement produces uncoalesced
//! global-memory traffic. The [`crate::states`] module builds both layouts
//! on top of this generator.
//!
//! Algorithm (Marsaglia 2003, "Xorshift RNGs", §3.1 `xorwow`):
//!
//! ```text
//! t = x ^ (x >> 2); x = y; y = z; z = w; w = v;
//! v = (v ^ (v << 4)) ^ (t ^ (t << 1));
//! d = d + 362437;
//! return v + d;
//! ```

use crate::{Rng32, SplitMix64};

/// Number of 32-bit words in one XORWOW state (five xorshift + one Weyl).
pub const XORWOW_WORDS: usize = 6;

/// A single XORWOW state, mirroring `curandStateXORWOW_t`'s PRNG core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XorWow {
    /// xorshift words `x, y, z, w, v`.
    pub s: [u32; 5],
    /// Weyl sequence counter `d`.
    pub d: u32,
}

impl XorWow {
    /// The Weyl increment used by Marsaglia's xorwow.
    pub const WEYL: u32 = 362437;

    /// Initialize from a 64-bit seed via SplitMix64 expansion, mimicking
    /// `curand_init(seed, subsequence, 0, &state)` — each `(seed, sub)` pair
    /// yields an independent-looking state.
    pub fn init(seed: u64, subsequence: u64) -> Self {
        let mut sm = SplitMix64::new(seed ^ subsequence.wrapping_mul(0x9E3779B97F4A7C15));
        let mut words = [0u64; 3];
        sm.fill(&mut words);
        let mut s = [
            words[0] as u32,
            (words[0] >> 32) as u32,
            words[1] as u32,
            (words[1] >> 32) as u32,
            words[2] as u32,
        ];
        // Avoid the all-zero xorshift state.
        if s == [0; 5] {
            s = [1, 2, 3, 4, 5];
        }
        Self {
            s,
            d: (words[2] >> 32) as u32,
        }
    }

    /// Construct from explicit words (tests / state-pool round trips).
    pub fn from_words(s: [u32; 5], d: u32) -> Self {
        assert!(s != [0; 5], "xorwow xorshift state must not be all zero");
        Self { s, d }
    }

    /// One raw transition, returning the output `v + d`.
    #[inline]
    pub fn step(&mut self) -> u32 {
        let t = self.s[0] ^ (self.s[0] >> 2);
        self.s[0] = self.s[1];
        self.s[1] = self.s[2];
        self.s[2] = self.s[3];
        self.s[3] = self.s[4];
        self.s[4] = (self.s[4] ^ (self.s[4] << 4)) ^ (t ^ (t << 1));
        self.d = self.d.wrapping_add(Self::WEYL);
        self.s[4].wrapping_add(self.d)
    }
}

impl Rng32 for XorWow {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        self.step()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng64;

    /// Hand-stepped reference with s = (1,2,3,4,5), d = 0.
    ///
    /// t = 1 ^ (1>>2) = 1; new v = (5 ^ 80) ^ (1 ^ 2) = 85 ^ 3 = 86;
    /// d = 362437; output = 86 + 362437 = 362523.
    #[test]
    fn reference_first_output() {
        let mut g = XorWow::from_words([1, 2, 3, 4, 5], 0);
        assert_eq!(g.step(), 362523);
        assert_eq!(g.s, [2, 3, 4, 5, 86]);
        assert_eq!(g.d, 362437);
    }

    #[test]
    fn reference_second_output() {
        let mut g = XorWow::from_words([1, 2, 3, 4, 5], 0);
        g.step();
        // t = 2 ^ 0 = 2; new v = (86 ^ (86<<4)) ^ (2 ^ 4)
        let t = 2u32;
        let v = (86u32 ^ (86 << 4)) ^ (t ^ (t << 1));
        let d = 362437u32.wrapping_add(362437);
        assert_eq!(g.step(), v.wrapping_add(d));
    }

    #[test]
    #[should_panic(expected = "all zero")]
    fn zero_state_rejected() {
        let _ = XorWow::from_words([0; 5], 7);
    }

    #[test]
    fn init_produces_distinct_subsequences() {
        let a = XorWow::init(42, 0);
        let b = XorWow::init(42, 1);
        assert_ne!(a, b);
        let mut a = a;
        let mut b = b;
        let av: Vec<u32> = (0..8).map(|_| a.step()).collect();
        let bv: Vec<u32> = (0..8).map(|_| b.step()).collect();
        assert_ne!(av, bv);
    }

    #[test]
    fn init_is_deterministic() {
        let mut a = XorWow::init(7, 3);
        let mut b = XorWow::init(7, 3);
        for _ in 0..32 {
            assert_eq!(a.step(), b.step());
        }
    }

    #[test]
    fn weyl_counter_always_advances() {
        let mut g = XorWow::init(1, 0);
        let mut prev_d = g.d;
        for _ in 0..100 {
            g.step();
            assert_eq!(g.d, prev_d.wrapping_add(XorWow::WEYL));
            prev_d = g.d;
        }
    }

    #[test]
    fn unit_floats_in_range_and_mean_ok() {
        let mut g = XorWow::init(99, 0);
        let n = 50_000;
        let mut sum = 0.0f64;
        for _ in 0..n {
            let x = g.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
    }

    #[test]
    fn xorshift_core_never_hits_zero() {
        let mut g = XorWow::init(0, 0);
        for _ in 0..10_000 {
            g.step();
            assert_ne!(g.s, [0; 5]);
        }
    }
}
