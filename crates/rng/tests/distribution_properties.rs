//! Statistical property tests for the sampling machinery: correctness of
//! the distributions the layout algorithm's quality depends on
//! (paper Sec. III-C: "randomness is critical to the layout quality").

use pgrng::{zipf, AliasTable, Rng64, StatePool, Xoshiro256Plus, ZipfTable};
use proptest::prelude::*;

/// Empirical CDF of zipf samples must be monotone and match the
/// analytic CDF (zeta(k)/zeta(n)) within sampling error.
#[test]
fn zipf_empirical_cdf_matches_analytic() {
    let n = 200u64;
    let theta = 0.99;
    let zetan = zipf::zeta(n, theta);
    let mut rng = Xoshiro256Plus::seed_from_u64(41);
    let draws = 200_000;
    let mut counts = vec![0u64; n as usize + 1];
    for _ in 0..draws {
        counts[zipf::sample_zipf(&mut rng, n, theta, zetan) as usize] += 1;
    }
    let mut cum = 0u64;
    for k in [1u64, 2, 5, 10, 50, 100, 200] {
        cum = counts[..=k as usize].iter().sum();
        let emp = cum as f64 / draws as f64;
        let analytic = zipf::zeta(k, theta) / zetan;
        assert!(
            (emp - analytic).abs() < 0.02,
            "CDF at {k}: empirical {emp:.4} vs analytic {analytic:.4}"
        );
    }
    assert_eq!(cum, draws);
}

/// Chi-square-style check that alias sampling matches its weights.
#[test]
fn alias_chi_square_within_bounds() {
    let weights = [5.0, 1.0, 3.0, 0.5, 10.0, 2.5];
    let total: f64 = weights.iter().sum();
    let table = AliasTable::new(&weights);
    let mut rng = Xoshiro256Plus::seed_from_u64(17);
    let draws = 300_000usize;
    let mut counts = vec![0f64; weights.len()];
    for _ in 0..draws {
        counts[table.sample(&mut rng)] += 1.0;
    }
    let chi2: f64 = weights
        .iter()
        .zip(&counts)
        .map(|(&w, &c)| {
            let expect = draws as f64 * w / total;
            (c - expect) * (c - expect) / expect
        })
        .sum();
    // 5 degrees of freedom: P(chi2 > 20.5) ≈ 0.001.
    assert!(chi2 < 20.5, "chi-square {chi2:.1}");
}

/// The monobit and runs behaviour of xoshiro output stays sane across
/// seeds (coarse randomness health check, not a NIST suite).
#[test]
fn xoshiro_bit_balance_across_seeds() {
    for seed in [0u64, 1, 42, u64::MAX] {
        let mut rng = Xoshiro256Plus::seed_from_u64(seed);
        let mut ones = 0u64;
        let n = 4096;
        for _ in 0..n {
            ones += rng.next_u64().count_ones() as u64;
        }
        let frac = ones as f64 / (64.0 * n as f64);
        assert!(
            (frac - 0.5).abs() < 0.01,
            "seed {seed}: ones fraction {frac}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// zipf samples are always within bounds for arbitrary spaces/thetas.
    #[test]
    fn zipf_bounds_hold(space in 1u64..5000, theta in 0.05f64..0.999, seed in 0u64..500) {
        let zetan = zipf::zeta(space, theta);
        let mut rng = Xoshiro256Plus::seed_from_u64(seed);
        for _ in 0..64 {
            let x = zipf::sample_zipf(&mut rng, space, theta, zetan);
            prop_assert!((1..=space).contains(&x));
        }
    }

    /// Zipf table lookups never exceed the exact zeta and are within 2%.
    #[test]
    fn zipf_table_underestimates_slightly(space in 2u64..4000) {
        let table = ZipfTable::with_defaults(4000);
        let approx = table.zeta_for(space);
        let exact = zipf::zeta(space, 0.99);
        prop_assert!(approx <= exact + 1e-9);
        prop_assert!(approx >= exact * 0.98, "approx {} exact {}", approx, exact);
    }

    /// State pools stay in lockstep with the standalone generator even
    /// under interleaved access orders.
    #[test]
    fn pool_interleaving_preserves_streams(
        n in 2usize..32,
        order in prop::collection::vec(0usize..32, 1..200),
        seed in 0u64..100,
    ) {
        let mut pool = StatePool::coalesced(n, seed);
        let mut refs: Vec<pgrng::XorWow> =
            (0..n).map(|i| pgrng::XorWow::init(seed, i as u64)).collect();
        for &pick in &order {
            let i = pick % n;
            prop_assert_eq!(pool.next_u32(i), refs[i].step());
        }
    }
}
