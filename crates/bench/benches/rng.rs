//! PRNG micro-benchmarks: the per-step random-number cost that paper
//! Sec. III-B identifies as part of the memory-bound profile.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use pgrng::{AliasTable, Rng64, StatePool, XorWow, Xoshiro256Plus, ZipfTable};

fn bench_generators(c: &mut Criterion) {
    let mut g = c.benchmark_group("rng/generators");
    g.throughput(Throughput::Elements(1));

    let mut xo = Xoshiro256Plus::seed_from_u64(1);
    g.bench_function("xoshiro256plus_next_u64", |b| {
        b.iter(|| black_box(xo.next_u64()))
    });

    let mut xw = XorWow::init(1, 0);
    g.bench_function("xorwow_step", |b| b.iter(|| black_box(xw.step())));

    let mut aos = StatePool::aos(128, 1);
    g.bench_function("state_pool_aos_next_u32", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) & 127;
            black_box(aos.next_u32(i))
        })
    });

    let mut soa = StatePool::coalesced(128, 1);
    g.bench_function("state_pool_coalesced_next_u32", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) & 127;
            black_box(soa.next_u32(i))
        })
    });
    g.finish();
}

fn bench_distributions(c: &mut Criterion) {
    let mut g = c.benchmark_group("rng/distributions");
    g.throughput(Throughput::Elements(1));

    let zipf = ZipfTable::with_defaults(100_000);
    let mut rng = Xoshiro256Plus::seed_from_u64(2);
    g.bench_function("zipf_sample_space_1e5", |b| {
        b.iter(|| black_box(zipf.sample(&mut rng, 100_000)))
    });
    g.bench_function("zipf_sample_space_100", |b| {
        b.iter(|| black_box(zipf.sample(&mut rng, 100)))
    });

    let weights: Vec<f64> = (1..=2048).map(|i| (i % 97 + 1) as f64).collect();
    let alias = AliasTable::new(&weights);
    g.bench_function("alias_sample_2048", |b| {
        b.iter(|| black_box(alias.sample(&mut rng)))
    });

    g.bench_function("gen_below_non_pow2", |b| {
        b.iter(|| black_box(rng.gen_below(1_000_003)))
    });
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_generators, bench_distributions
}
criterion_main!(benches);
