//! Metric-cost benchmarks: exact path stress is quadratic in path length,
//! sampled path stress is linear (paper Table V's asymmetry).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use layout_core::cpu::CpuEngine;
use layout_core::LayoutConfig;
use pangraph::layout2d::Layout2D;
use pangraph::lean::LeanGraph;
use pgmetrics::{path_stress, sampled_path_stress, SamplingConfig};
use workloads::{generate, PangenomeSpec};

fn layout_of(sites: usize) -> (Layout2D, LeanGraph) {
    let g = generate(&PangenomeSpec::basic("m", sites, 4, 7));
    let lean = LeanGraph::from_graph(&g);
    let cfg = LayoutConfig {
        iter_max: 4,
        threads: 0,
        ..LayoutConfig::default()
    };
    let (layout, _) = CpuEngine::new(cfg).run(&lean);
    (layout, lean)
}

fn bench_metrics(c: &mut Criterion) {
    let mut grp = c.benchmark_group("metrics");
    for sites in [100usize, 400] {
        let (layout, lean) = layout_of(sites);
        grp.bench_with_input(
            BenchmarkId::new("path_stress_exact", sites),
            &sites,
            |b, _| b.iter(|| black_box(path_stress(&layout, &lean))),
        );
        grp.bench_with_input(
            BenchmarkId::new("sampled_path_stress", sites),
            &sites,
            |b, _| {
                b.iter(|| {
                    black_box(sampled_path_stress(
                        &layout,
                        &lean,
                        SamplingConfig {
                            samples_per_node: 100,
                            seed: 1,
                        },
                    ))
                })
            },
        );
    }
    grp.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_metrics
}
criterion_main!(benches);
