//! Hogwild CPU engine thread scaling (paper Fig. 4 in criterion form).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use layout_core::cpu::CpuEngine;
use layout_core::LayoutConfig;
use pangraph::lean::LeanGraph;
use workloads::{generate, PangenomeSpec};

fn bench_thread_scaling(c: &mut Criterion) {
    let g = generate(&PangenomeSpec::basic("s", 600, 6, 3));
    let lean = LeanGraph::from_graph(&g);
    let max = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);

    let mut grp = c.benchmark_group("cpu_engine/threads");
    let base_cfg = LayoutConfig {
        iter_max: 4,
        ..LayoutConfig::default()
    };
    let updates = base_cfg.steps_per_iter(lean.total_steps() as u64) * 4;
    grp.throughput(Throughput::Elements(updates));
    for threads in [1usize, 2, 4, 8] {
        if threads > max {
            continue;
        }
        let cfg = LayoutConfig {
            threads,
            ..base_cfg.clone()
        };
        grp.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, _| {
            let engine = CpuEngine::new(cfg.clone());
            b.iter(|| black_box(engine.run(&lean)))
        });
    }
    grp.finish();
}

fn bench_data_layouts(c: &mut Criterion) {
    use layout_core::coords::DataLayout;
    let g = generate(&PangenomeSpec::basic("s", 1500, 8, 5));
    let lean = LeanGraph::from_graph(&g);
    let mut grp = c.benchmark_group("cpu_engine/data_layout");
    for (name, layout) in [
        ("original_soa", DataLayout::OriginalSoa),
        ("cache_friendly_aos", DataLayout::CacheFriendlyAos),
    ] {
        let cfg = LayoutConfig {
            iter_max: 3,
            data_layout: layout,
            ..LayoutConfig::default()
        };
        grp.bench_function(name, |b| {
            let engine = CpuEngine::new(cfg.clone());
            b.iter(|| black_box(engine.run(&lean)))
        });
    }
    grp.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_thread_scaling, bench_data_layouts
}
criterion_main!(benches);
