//! Design-choice ablation benchmarks — the alternatives DESIGN.md weighs.
//!
//! * O(1) alias-table path selection vs the naive O(P) cumulative scan
//!   (Alg. 1 line 5 runs billions of times; this is why the alias table
//!   exists).
//! * Precomputed ("dirty") ζ tables vs exact ζ summation per Zipf draw
//!   (odgi's quantized-zeta trick).
//! * AoS vs SoA coordinate loads at the single-access level (the
//!   microcost behind the Table IX CPU rows).
//! * The full per-term sampling cost, which bounds the engines' step
//!   throughput.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use layout_core::coords::{CoordStore, DataLayout};
use layout_core::sampler::PairSampler;
use layout_core::LayoutConfig;
use pangraph::lean::LeanGraph;
use pgrng::{zipf, AliasTable, Rng64, Xoshiro256Plus, ZipfTable};
use workloads::{generate, PangenomeSpec};

/// Naive length-proportional path selection: linear scan of cumulative
/// weights (what the alias table replaces).
fn linear_scan_select(cum: &[f64], total: f64, rng: &mut Xoshiro256Plus) -> usize {
    let u = rng.next_f64() * total;
    cum.iter().position(|&c| c >= u).unwrap_or(cum.len() - 1)
}

fn bench_path_selection(c: &mut Criterion) {
    let mut grp = c.benchmark_group("ablation/path_selection");
    grp.throughput(Throughput::Elements(1));
    for n_paths in [48usize, 1024] {
        let weights: Vec<f64> = (1..=n_paths).map(|i| (i % 200 + 5) as f64).collect();
        let alias = AliasTable::new(&weights);
        let mut rng = Xoshiro256Plus::seed_from_u64(1);
        grp.bench_function(format!("alias_table_{n_paths}"), |b| {
            b.iter(|| black_box(alias.sample(&mut rng)))
        });
        let mut cum = Vec::with_capacity(n_paths);
        let mut acc = 0.0;
        for &w in &weights {
            acc += w;
            cum.push(acc);
        }
        grp.bench_function(format!("linear_scan_{n_paths}"), |b| {
            b.iter(|| black_box(linear_scan_select(&cum, acc, &mut rng)))
        });
    }
    grp.finish();
}

fn bench_zeta_strategy(c: &mut Criterion) {
    let mut grp = c.benchmark_group("ablation/zipf_zeta");
    grp.throughput(Throughput::Elements(1));
    let table = ZipfTable::with_defaults(50_000);
    let mut rng = Xoshiro256Plus::seed_from_u64(2);
    grp.bench_function("precomputed_dirty_zeta", |b| {
        b.iter(|| black_box(table.sample(&mut rng, 50_000)))
    });
    grp.bench_function("exact_zeta_per_draw_n2000", |b| {
        // Exact ζ is O(n) per draw — benchmark at a reduced n so the
        // comparison completes; the gap only grows with n.
        b.iter(|| {
            let zetan = zipf::zeta(2000, 0.99);
            black_box(zipf::sample_zipf(&mut rng, 2000, 0.99, zetan))
        })
    });
    grp.finish();
}

fn bench_coord_loads(c: &mut Criterion) {
    let g = generate(&PangenomeSpec::basic("a", 2000, 6, 3));
    let lean = LeanGraph::from_graph(&g);
    let n = lean.node_count() as u32;
    let mut grp = c.benchmark_group("ablation/coord_load");
    grp.throughput(Throughput::Elements(1));
    for (name, layout) in [
        ("soa", DataLayout::OriginalSoa),
        ("aos", DataLayout::CacheFriendlyAos),
    ] {
        let store = CoordStore::new(layout, &lean);
        let mut rng = Xoshiro256Plus::seed_from_u64(4);
        grp.bench_function(name, |b| {
            b.iter(|| {
                let node = rng.gen_below(n as u64) as u32;
                let end = rng.flip();
                black_box((store.node_len(node), store.load(node, end)))
            })
        });
    }
    grp.finish();
}

fn bench_term_sampling(c: &mut Criterion) {
    let g = generate(&PangenomeSpec::basic("a", 2000, 6, 5));
    let lean = LeanGraph::from_graph(&g);
    let cfg = LayoutConfig::default();
    let sampler = PairSampler::new(&lean, &cfg);
    let mut rng = Xoshiro256Plus::seed_from_u64(6);
    let mut grp = c.benchmark_group("ablation/term_sampling");
    grp.throughput(Throughput::Elements(1));
    grp.bench_function("uniform_phase_iter0", |b| {
        b.iter(|| black_box(sampler.sample(&lean, &mut rng, 0)))
    });
    grp.bench_function("cooling_phase_last_iter", |b| {
        b.iter(|| black_box(sampler.sample(&lean, &mut rng, cfg.iter_max - 1)))
    });
    grp.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_path_selection, bench_zeta_strategy, bench_coord_loads, bench_term_sampling
}
criterion_main!(benches);
