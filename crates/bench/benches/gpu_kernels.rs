//! GPU-simulator micro-benchmarks: cache probes, warp coalescing, and the
//! relative host cost of the kernel ablation configs.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use gpu_sim::{Cache, CacheConfig, GpuEngine, GpuSpec, KernelConfig, SmMem};
use layout_core::LayoutConfig;
use pangraph::lean::LeanGraph;
use workloads::{generate, PangenomeSpec};

fn bench_cache(c: &mut Criterion) {
    let mut grp = c.benchmark_group("gpu_sim/cache");
    grp.throughput(Throughput::Elements(1));

    let mut cache = Cache::new(CacheConfig::gpu(128 * 1024));
    let mut addr = 0u64;
    grp.bench_function("access_sector_stream", |b| {
        b.iter(|| {
            addr = addr.wrapping_add(32) & 0xFFFFF;
            black_box(cache.access_sector(addr))
        })
    });

    let mut xs = 0u64;
    grp.bench_function("access_sector_random", |b| {
        b.iter(|| {
            xs = xs
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            black_box(cache.access_sector(xs & 0xFF_FFFF))
        })
    });
    grp.finish();

    let mut grp = c.benchmark_group("gpu_sim/warp_request");
    let mut sm = SmMem::new(&GpuSpec::a6000(), 0.01);
    let coalesced: Vec<(u64, u32)> = (0..32).map(|l| (l * 4, 4)).collect();
    grp.bench_function("coalesced_32_lanes", |b| {
        b.iter(|| sm.warp_request(black_box(&coalesced)))
    });
    let mut seed = 1u64;
    grp.bench_function("scattered_32_lanes", |b| {
        b.iter(|| {
            let scattered: Vec<(u64, u32)> = (0..32)
                .map(|_| {
                    seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                    (seed & 0xFFF_FFFF, 4)
                })
                .collect();
            sm.warp_request(black_box(&scattered))
        })
    });
    grp.finish();
}

fn bench_kernel_configs(c: &mut Criterion) {
    let g = generate(&PangenomeSpec::basic("k", 300, 5, 13));
    let lean = LeanGraph::from_graph(&g);
    let lcfg = LayoutConfig {
        iter_max: 2,
        steps_per_path_node: 4.0,
        ..LayoutConfig::default()
    };

    let mut grp = c.benchmark_group("gpu_sim/kernel");
    for (name, kcfg) in [
        ("base", KernelConfig::base(0.01)),
        ("cdl", KernelConfig::base(0.01).with_cdl()),
        ("crs", KernelConfig::base(0.01).with_crs()),
        ("wm", KernelConfig::base(0.01).with_wm()),
        ("optimized", KernelConfig::optimized(0.01)),
    ] {
        grp.bench_function(name, |b| {
            let engine = GpuEngine::new(GpuSpec::a6000(), lcfg.clone(), kcfg);
            b.iter(|| black_box(engine.run(&lean)))
        });
    }
    grp.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_cache, bench_kernel_configs
}
criterion_main!(benches);
