//! Whole-engine comparison on one graph: Hogwild CPU, PyTorch-style
//! batch, and the simulated GPU kernel (host simulation cost).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gpu_sim::{GpuEngine, GpuSpec, KernelConfig};
use layout_core::batch::BatchEngine;
use layout_core::cpu::CpuEngine;
use layout_core::LayoutConfig;
use pangraph::lean::LeanGraph;
use workloads::{generate, PangenomeSpec};

fn bench_engines(c: &mut Criterion) {
    let g = generate(&PangenomeSpec::basic("e", 400, 6, 11));
    let lean = LeanGraph::from_graph(&g);
    let lcfg = LayoutConfig {
        iter_max: 4,
        ..LayoutConfig::default()
    };

    let mut grp = c.benchmark_group("engines");
    grp.bench_function("cpu_hogwild", |b| {
        let engine = CpuEngine::new(lcfg.clone());
        b.iter(|| black_box(engine.run(&lean)))
    });
    grp.bench_function("batch_pytorch_style", |b| {
        let engine = BatchEngine::new(lcfg.clone(), 1024);
        b.iter(|| black_box(engine.run(&lean)))
    });
    grp.bench_function("gpu_sim_optimized", |b| {
        let engine = GpuEngine::new(
            GpuSpec::a6000(),
            lcfg.clone(),
            KernelConfig::optimized(0.01),
        );
        b.iter(|| black_box(engine.run(&lean)))
    });
    grp.bench_function("gpu_sim_untraced", |b| {
        // Trace sampling at 1/16: how much of the simulation cost is the
        // memory-system bookkeeping.
        let engine = GpuEngine::new(
            GpuSpec::a6000(),
            lcfg.clone(),
            KernelConfig::optimized(0.01).with_trace_fraction(1.0 / 16.0),
        );
        b.iter(|| black_box(engine.run(&lean)))
    });
    grp.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_engines
}
criterion_main!(benches);
