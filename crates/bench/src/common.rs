//! Shared harness context: scales, graph construction, the lazily
//! computed 24-chromosome run reused by Tables VII/VIII and Fig. 14, and
//! output helpers.

use layout_core::config::LayoutConfig;
use layout_core::cpu::CpuEngine;
use pangraph::layout2d::Layout2D;
use pangraph::lean::LeanGraph;
use pangraph::VariationGraph;
use pgio::Table;
use std::path::PathBuf;
use std::sync::OnceLock;
use std::time::Duration;
use workloads::{generate, hprc_catalog, ChromEntry, PangenomeSpec};

/// Harness configuration shared by all experiments.
pub struct Ctx {
    /// Dataset scale for the chromosome catalog (1.0 = paper-size).
    pub scale: f64,
    /// Run the heavyweight variants (e.g. the full 1824-layout Fig. 13).
    pub full: bool,
    /// Output directory for TSVs and renders.
    pub out_dir: PathBuf,
    catalog_run: OnceLock<CatalogRun>,
}

impl Default for Ctx {
    fn default() -> Self {
        Self {
            scale: 5e-4,
            full: false,
            out_dir: PathBuf::from("out/repro"),
            catalog_run: OnceLock::new(),
        }
    }
}

/// The three representative pangenomes of Table I, at harness scale.
/// Returns `(name, spec, dataset_scale)` — the scale doubles as the
/// cache-capacity scale of the memory-hierarchy models (HLA-DRB1 is
/// generated at full scale, so its caches are full scale too).
pub fn representative_specs(ctx: &Ctx) -> Vec<(&'static str, PangenomeSpec, f64)> {
    let mhc_scale = (ctx.scale * 40.0).clamp(0.005, 1.0);
    vec![
        ("HLA-DRB1", workloads::hla_drb1(), 1.0),
        ("MHC", workloads::mhc_like(mhc_scale), mhc_scale),
        ("Chr.1", hprc_catalog()[0].spec(ctx.scale), ctx.scale),
    ]
}

/// Generate a spec and flatten it.
pub fn build(spec: &PangenomeSpec) -> (VariationGraph, LeanGraph) {
    let g = generate(spec);
    let lean = LeanGraph::from_graph(&g);
    (g, lean)
}

/// The default layout configuration used across experiments.
pub fn layout_cfg() -> LayoutConfig {
    LayoutConfig {
        seed: 0x5C24,
        ..LayoutConfig::default()
    }
}

/// Format seconds as the paper's `h:mm:ss` (with sub-second precision for
/// scaled runs).
pub fn hms(s: f64) -> String {
    if s < 60.0 {
        return format!("{s:.2}s");
    }
    let total = s.round() as u64;
    format!(
        "{}:{:02}:{:02}",
        total / 3600,
        (total / 60) % 60,
        total % 60
    )
}

/// Geometric mean.
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty());
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Write a table to stdout and to `out/repro/<id>.tsv`.
pub fn emit(ctx: &Ctx, id: &str, table: &Table) {
    print!("{}", table.render());
    let path = ctx.out_dir.join(format!("{id}.tsv"));
    if let Err(e) = std::fs::write(&path, table.to_tsv()) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
}

/// Convenience duration → seconds.
pub fn secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

// ---------------------------------------------------------------------
// The shared 24-chromosome run (Tables VII & VIII, Fig. 14).
// ---------------------------------------------------------------------

/// Per-chromosome results of the catalog run.
pub struct ChromRun {
    /// Catalog entry (paper numbers).
    pub entry: ChromEntry,
    /// The flattened graph.
    pub lean: LeanGraph,
    /// Measured wall time of the lean Rust CPU engine.
    pub cpu_measured_s: f64,
    /// Modeled odgi-baseline CPU time (32-thread Xeon, full hierarchy).
    pub cpu_modeled_s: f64,
    /// CPU layout.
    pub cpu_layout: Layout2D,
    /// (modeled seconds, layout) for the A6000.
    pub a6000: (f64, Layout2D),
    /// (modeled seconds, layout) for the A100.
    pub a100: (f64, Layout2D),
}

/// All 24 chromosomes, computed once per process.
pub struct CatalogRun {
    /// One entry per chromosome, catalog order.
    pub chroms: Vec<ChromRun>,
}

/// Run (or fetch) the shared catalog computation.
pub fn catalog_run(ctx: &Ctx) -> &CatalogRun {
    ctx.catalog_run.get_or_init(|| {
        use gpu_sim::cpusim::{characterize_cpu, cpu_model, modeled_cpu_time_s};
        use gpu_sim::{GpuEngine, GpuSpec, KernelConfig};
        use layout_core::coords::DataLayout;

        let lcfg = layout_cfg();
        let chroms = hprc_catalog()
            .into_iter()
            .map(|entry| {
                let spec = entry.spec(ctx.scale);
                let (_, lean) = build(&spec);

                let (cpu_layout, report) = CpuEngine::new(lcfg.clone()).run(&lean);
                let trace =
                    characterize_cpu(&lean, &lcfg, DataLayout::OriginalSoa, ctx.scale, 120_000);
                let cpu_modeled_s =
                    modeled_cpu_time_s(&lean, &lcfg, &trace, cpu_model::THREADS);

                let gpu = |spec_gpu: GpuSpec| {
                    let engine =
                        GpuEngine::new(spec_gpu, lcfg.clone(), KernelConfig::optimized(ctx.scale));
                    let (layout, r) = engine.run(&lean);
                    (r.modeled_s(), layout)
                };
                let a6000 = gpu(GpuSpec::a6000());
                let a100 = gpu(GpuSpec::a100());
                eprintln!(
                    "  [catalog] {:<6} cpu {:.2}s (measured) / {:.2}s (modeled)  a6000 {:.3}s  a100 {:.3}s",
                    entry.name,
                    secs(report.wall),
                    cpu_modeled_s,
                    a6000.0,
                    a100.0
                );
                ChromRun {
                    entry,
                    lean,
                    cpu_measured_s: secs(report.wall),
                    cpu_modeled_s,
                    cpu_layout,
                    a6000,
                    a100,
                }
            })
            .collect();
        CatalogRun { chroms }
    })
}
