//! `repro` — regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! repro list                 # show all experiment ids
//! repro table7               # one experiment
//! repro all                  # everything (writes out/repro/*)
//! repro all --scale 0.001    # bigger graphs (slower, closer to paper)
//! repro fig13 --full         # the full 1824-layout correlation study
//! ```
//!
//! Every experiment prints the paper's rows/series side by side with this
//! reproduction's measured/modeled values, writes a TSV under
//! `out/repro/`, and runs mechanized *shape checks* (who wins, by what
//! rough factor). The process exits non-zero if any check fails.

mod common;
mod exp_batch;
mod exp_cpu;
mod exp_gpu;
mod exp_metrics;
mod exp_workload;

use common::Ctx;

/// One reproducible experiment.
pub struct Experiment {
    /// Identifier, e.g. `table7`.
    pub id: &'static str,
    /// What it reproduces.
    pub what: &'static str,
    /// Runner; returns the list of failed checks (empty = pass).
    pub run: fn(&Ctx) -> Vec<String>,
}

fn registry() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "table1",
            what: "Table I: representative pangenome properties",
            run: exp_workload::table1,
        },
        Experiment {
            id: "table6",
            what: "Table VI: 24-chromosome property summary",
            run: exp_workload::table6,
        },
        Experiment {
            id: "fig4",
            what: "Fig. 4: CPU thread scaling",
            run: exp_cpu::fig4,
        },
        Experiment {
            id: "fig5",
            what: "Fig. 5: top-down memory-bound analysis",
            run: exp_cpu::fig5,
        },
        Experiment {
            id: "table2",
            what: "Table II: memory stalls and LLC miss rates",
            run: exp_cpu::table2,
        },
        Experiment {
            id: "table3",
            what: "Table III: PyTorch-style batch-size sweep",
            run: exp_batch::table3,
        },
        Experiment {
            id: "table4",
            what: "Table IV: kernel-launch overhead vs batch size",
            run: exp_batch::table4,
        },
        Experiment {
            id: "fig7",
            what: "Fig. 7: kernel-time breakdown",
            run: exp_batch::fig7,
        },
        Experiment {
            id: "fig6",
            what: "Fig. 6: fixed-hop pair selection fails",
            run: exp_metrics::fig6,
        },
        Experiment {
            id: "table5",
            what: "Table V: metric computation run time",
            run: exp_metrics::table5,
        },
        Experiment {
            id: "fig12",
            what: "Fig. 12: quality ladder with path stress",
            run: exp_metrics::fig12,
        },
        Experiment {
            id: "fig13",
            what: "Fig. 13: sampled vs exact stress correlation",
            run: exp_metrics::fig13,
        },
        Experiment {
            id: "table7",
            what: "Table VII: run time and speedup, 24 chromosomes",
            run: exp_gpu::table7,
        },
        Experiment {
            id: "table8",
            what: "Table VIII: layout quality (SPS) CPU vs GPU",
            run: exp_gpu::table8,
        },
        Experiment {
            id: "fig14",
            what: "Fig. 14: CPU vs GPU renders of Chr.7",
            run: exp_gpu::fig14,
        },
        Experiment {
            id: "fig15",
            what: "Fig. 15: scalability vs total path length",
            run: exp_gpu::fig15,
        },
        Experiment {
            id: "fig16",
            what: "Fig. 16: speedup waterfall",
            run: exp_gpu::fig16,
        },
        Experiment {
            id: "table9",
            what: "Table IX: cache-friendly data layout ablation",
            run: exp_gpu::table9,
        },
        Experiment {
            id: "table10",
            what: "Table X: coalesced random states ablation",
            run: exp_gpu::table10,
        },
        Experiment {
            id: "table11",
            what: "Table XI: warp merging ablation",
            run: exp_gpu::table11,
        },
        Experiment {
            id: "fig17",
            what: "Fig. 17: DRF/SRF design-space exploration",
            run: exp_gpu::fig17,
        },
        Experiment {
            id: "ext1",
            what: "Extension (paper Sec. IX future work): multi-GPU scaling projection",
            run: exp_gpu::ext_multigpu,
        },
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ids: Vec<String> = Vec::new();
    let mut ctx = Ctx::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--full" => ctx.full = true,
            "--scale" => {
                i += 1;
                ctx.scale = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--scale needs a number"));
            }
            "--out" => {
                i += 1;
                ctx.out_dir = args
                    .get(i)
                    .unwrap_or_else(|| die("--out needs a path"))
                    .into();
            }
            other if other.starts_with('-') => die(&format!("unknown flag {other}")),
            other => ids.push(other.to_string()),
        }
        i += 1;
    }
    if ids.is_empty() {
        ids.push("list".into());
    }

    let experiments = registry();
    if ids.iter().any(|s| s == "list") {
        println!("available experiments:\n");
        for e in &experiments {
            println!("  {:<8} {}", e.id, e.what);
        }
        println!("  {:<8} run everything", "all");
        return;
    }

    std::fs::create_dir_all(&ctx.out_dir).expect("create output dir");
    let selected: Vec<&Experiment> = if ids.iter().any(|s| s == "all") {
        experiments.iter().collect()
    } else {
        ids.iter()
            .map(|id| {
                experiments
                    .iter()
                    .find(|e| e.id == *id)
                    .unwrap_or_else(|| die(&format!("unknown experiment {id}; try `repro list`")))
            })
            .collect()
    };

    let mut failures: Vec<String> = Vec::new();
    for e in &selected {
        println!("\n=== {} — {} ===", e.id, e.what);
        let t0 = std::time::Instant::now();
        let fails = (e.run)(&ctx);
        for f in &fails {
            println!("[CHECK FAILED] {f}");
        }
        println!(
            "=== {} done in {:.1?} — {} ===",
            e.id,
            t0.elapsed(),
            if fails.is_empty() {
                "all checks passed"
            } else {
                "CHECKS FAILED"
            }
        );
        failures.extend(fails.into_iter().map(|f| format!("{}: {f}", e.id)));
    }

    println!(
        "\n{} experiment(s) run; {} check failure(s)",
        selected.len(),
        failures.len()
    );
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAILED: {f}");
        }
        std::process::exit(1);
    }
}

fn die(msg: &str) -> ! {
    eprintln!("repro: {msg}");
    std::process::exit(2);
}
