//! Tables I and VI: dataset property tables.

use crate::common::{build, emit, representative_specs, Ctx};
use pangraph::stats::{sci, AggregateStats, GraphStats};
use pgio::Table;
use workloads::hprc_catalog;

/// Paper Table I reference values: (#nuc, #nodes, #edges, #paths).
const TABLE1_PAPER: [(&str, f64, f64, f64, u64); 3] = [
    ("HLA-DRB1", 2.2e4, 5.0e3, 6.8e3, 12),
    ("MHC", 5.9e6, 2.3e5, 3.2e5, 99),
    ("Chr.1", 1.1e9, 1.1e7, 1.5e7, 2262),
];

/// Table I: properties of the three representative pangenomes.
pub fn table1(ctx: &Ctx) -> Vec<String> {
    let mut fails = Vec::new();
    let mut t = Table::new(&[
        "Pangenome",
        "scale",
        "#Nuc",
        "#Nodes",
        "#Edges",
        "#Paths",
        "paper:#Nuc",
        "paper:#Nodes",
        "paper:#Edges",
        "paper:#Paths",
    ]);
    for ((name, spec, _), paper) in representative_specs(ctx).into_iter().zip(TABLE1_PAPER) {
        let (g, _) = build(&spec);
        let s = GraphStats::measure(&g);
        let scale = if name == "HLA-DRB1" {
            1.0
        } else {
            s.nodes as f64 / paper.2
        };
        t.row(vec![
            name.to_string(),
            format!("{scale:.2e}"),
            sci(s.nucleotides as f64),
            sci(s.nodes as f64),
            sci(s.edges as f64),
            s.paths.to_string(),
            sci(paper.1),
            sci(paper.2),
            sci(paper.3),
            paper.4.to_string(),
        ]);
        // Shape checks: edges/node ratio in the pangenome regime, HLA at
        // full scale within 35% of the paper's counts.
        let epn = s.edges as f64 / s.nodes as f64;
        if !(1.0..2.0).contains(&epn) {
            fails.push(format!(
                "{name}: edges/node {epn:.2} outside pangenome regime"
            ));
        }
        if name == "HLA-DRB1" {
            let node_err = (s.nodes as f64 / paper.2 - 1.0).abs();
            if node_err > 0.35 {
                fails.push(format!("HLA-DRB1 nodes off by {:.0}%", node_err * 100.0));
            }
        }
    }
    emit(ctx, "table1", &t);
    fails
}

/// Table VI: min/max/mean over the 24 scaled chromosome graphs.
pub fn table6(ctx: &Ctx) -> Vec<String> {
    let mut fails = Vec::new();
    // Generate at a light scale: the aggregate *shape* (degree, density
    // regime, chr1 ≫ chrY) is scale-free.
    let scale = (ctx.scale * 0.6).max(1e-4);
    let stats: Vec<(String, GraphStats)> = hprc_catalog()
        .iter()
        .map(|c| {
            let (g, _) = build(&c.spec(scale));
            (c.name.to_string(), GraphStats::measure(&g))
        })
        .collect();
    let agg = AggregateStats::over(&stats.iter().map(|(_, s)| *s).collect::<Vec<_>>());

    let mut t = Table::new(&["", "#Nuc", "#Nodes", "#Edges", "#Paths", "deg", "Density"]);
    for (label, s) in [("Min", agg.min), ("Max", agg.max), ("Mean", agg.mean)] {
        t.row(vec![
            label.to_string(),
            sci(s.nucleotides as f64),
            sci(s.nodes as f64),
            sci(s.edges as f64),
            s.paths.to_string(),
            format!("{:.1}", s.avg_degree),
            sci(s.density),
        ]);
    }
    t.row(vec![
        "paper:Mean".into(),
        sci(3.0e8),
        sci(4.0e6),
        sci(5.6e6),
        "1295".into(),
        "1.4".into(),
        sci(3.5e-7),
    ]);
    emit(ctx, "table6", &t);

    if !(1.0..2.0).contains(&agg.mean.avg_degree) {
        fails.push(format!(
            "mean degree {:.2} outside regime",
            agg.mean.avg_degree
        ));
    }
    if agg.max.density > 1e-2 {
        fails.push(format!(
            "density {:.2e} too high for a pangenome",
            agg.max.density
        ));
    }
    let chr1 = &stats[0].1;
    let chr_y = &stats[23].1;
    if chr1.nodes < 10 * chr_y.nodes {
        fails.push(format!(
            "chr1 ({}) should dwarf chrY ({})",
            chr1.nodes, chr_y.nodes
        ));
    }
    fails
}
