//! The GPU evaluation: Tables VII–XI, Figs. 14–17.
//!
//! CPU columns come in two flavours per DESIGN.md: *measured* wall time
//! of this repo's lean Rust Hogwild engine on this machine, and *modeled*
//! time of the paper's odgi baseline (32-thread Xeon, succinct
//! structures, full memory hierarchy) from the CPU cache simulation. GPU
//! columns are modeled from simulator-counted events. Speedup columns
//! compare modeled-to-modeled, the apples-to-apples pairing.

use crate::common::{build, catalog_run, emit, geomean, hms, layout_cfg, secs, Ctx};
use draw::rasterize;
use gpu_sim::cpusim::{characterize_cpu, cpu_model, modeled_cpu_time_s};
use gpu_sim::{GpuEngine, GpuSpec, KernelConfig};
use layout_core::batch::BatchEngine;
use layout_core::coords::DataLayout;
use layout_core::cpu::CpuEngine;
use layout_core::LayoutConfig;
use pangraph::lean::LeanGraph;
use pgio::Table;
use pgmetrics::{sampled_path_stress, SampledStress, SamplingConfig};
use workloads::hprc_catalog;

/// Table VII: run time and speedup over the 24 chromosomes.
pub fn table7(ctx: &Ctx) -> Vec<String> {
    let mut fails = Vec::new();
    let run = catalog_run(ctx);
    let mut t = Table::new(&[
        "Pan.",
        "CPU modeled",
        "CPU measured(lean)",
        "A6000",
        "Speedup",
        "A100",
        "Speedup",
        "paper: CPU",
        "paper: A6000 x",
        "paper: A100 x",
    ]);
    let mut sp6 = Vec::new();
    let mut sp1 = Vec::new();
    for c in &run.chroms {
        let s6 = c.cpu_modeled_s / c.a6000.0;
        let s1 = c.cpu_modeled_s / c.a100.0;
        sp6.push(s6);
        sp1.push(s1);
        t.row(vec![
            c.entry.name.to_string(),
            hms(c.cpu_modeled_s),
            hms(c.cpu_measured_s),
            hms(c.a6000.0),
            format!("{s6:.1}x"),
            hms(c.a100.0),
            format!("{s1:.1}x"),
            hms(c.entry.cpu_paper_s),
            format!("{:.1}x", c.entry.a6000_paper_speedup()),
            format!("{:.1}x", c.entry.a100_paper_speedup()),
        ]);
    }
    let g6 = geomean(&sp6);
    let g1 = geomean(&sp1);
    t.row(vec![
        "GeoMean".into(),
        String::new(),
        String::new(),
        String::new(),
        format!("{g6:.1}x"),
        String::new(),
        format!("{g1:.1}x"),
        String::new(),
        "27.7x".into(),
        "57.3x".into(),
    ]);
    emit(ctx, "table7", &t);

    if !(8.0..120.0).contains(&g6) {
        fails.push(format!(
            "A6000 geomean speedup {g6:.1}x outside the paper's band"
        ));
    }
    if g1 <= g6 {
        fails.push(format!("A100 ({g1:.1}x) must beat A6000 ({g6:.1}x)"));
    }
    let max_cpu = run
        .chroms
        .iter()
        .max_by(|a, b| a.cpu_modeled_s.total_cmp(&b.cpu_modeled_s))
        .unwrap();
    if max_cpu.entry.name != "chr1" && max_cpu.entry.name != "chr16" {
        fails.push(format!(
            "largest modeled CPU time on {}, expected chr1/chr16",
            max_cpu.entry.name
        ));
    }
    fails
}

/// Table VIII: layout quality (sampled path stress) CPU vs GPU.
pub fn table8(ctx: &Ctx) -> Vec<String> {
    let mut fails = Vec::new();
    let run = catalog_run(ctx);
    let cfg = SamplingConfig::default();
    let mut t = Table::new(&[
        "Pan.",
        "CPU CI95",
        "A6000 CI95",
        "SPS ratio",
        "A100 CI95",
        "SPS ratio",
    ]);
    let fmt_ci = |s: &SampledStress| format!("[{:.3}, {:.3}]", s.ci_lo, s.ci_hi);
    let mut r6 = Vec::new();
    let mut r1 = Vec::new();
    for c in &run.chroms {
        let cpu = sampled_path_stress(&c.cpu_layout, &c.lean, cfg);
        let a6000 = sampled_path_stress(&c.a6000.1, &c.lean, cfg);
        let a100 = sampled_path_stress(&c.a100.1, &c.lean, cfg);
        let ratio6 = a6000.mean / cpu.mean.max(1e-12);
        let ratio1 = a100.mean / cpu.mean.max(1e-12);
        r6.push(ratio6);
        r1.push(ratio1);
        t.row(vec![
            c.entry.name.to_string(),
            fmt_ci(&cpu),
            fmt_ci(&a6000),
            format!("{ratio6:.2}"),
            fmt_ci(&a100),
            format!("{ratio1:.2}"),
        ]);
        if !c.a6000.1.all_finite() || !c.a100.1.all_finite() {
            fails.push(format!("{}: non-finite GPU layout", c.entry.name));
        }
    }
    let g6 = geomean(&r6);
    let g1 = geomean(&r1);
    t.row(vec![
        "GeoMean".into(),
        String::new(),
        String::new(),
        format!("{g6:.2} (paper 1.08)"),
        String::new(),
        format!("{g1:.2} (paper 1.03)"),
    ]);
    emit(ctx, "table8", &t);

    // The paper's per-chromosome ratios span 0.47–2.31; at the scaled
    // near-converged stress levels the ratio is noisier, so gate the
    // geomean generously: "no quality loss" = same order of magnitude.
    for (name, g) in [("A6000", g6), ("A100", g1)] {
        if !(0.25..6.0).contains(&g) {
            fails.push(format!("{name} geomean SPS ratio {g:.2} out of band"));
        }
    }
    fails
}

/// Fig. 14: side-by-side CPU and GPU renders of Chr.7.
pub fn fig14(ctx: &Ctx) -> Vec<String> {
    let mut fails = Vec::new();
    let run = catalog_run(ctx);
    let c = run
        .chroms
        .iter()
        .find(|c| c.entry.name == "chr7")
        .expect("chr7 in catalog");
    for (label, layout) in [("cpu", &c.cpu_layout), ("gpu", &c.a6000.1)] {
        let img = rasterize(layout, &c.lean, 1400);
        let path = ctx.out_dir.join(format!("fig14_chr7_{label}.ppm"));
        if img.write_ppm(&path).is_err() {
            fails.push(format!("could not write {}", path.display()));
            continue;
        }
        println!(
            "wrote {} (ink {:.3}%)",
            path.display(),
            img.ink_fraction() * 100.0
        );
        if img.ink_fraction() < 1e-4 {
            fails.push(format!("{label} render is blank"));
        }
    }
    fails
}

/// Fig. 15: run time is linear in total path length, on CPU and GPU.
pub fn fig15(ctx: &Ctx) -> Vec<String> {
    let mut fails = Vec::new();
    let lcfg = layout_cfg();
    let mut xs = Vec::new();
    let mut cpu_t = Vec::new();
    let mut gpu_t = Vec::new();
    let mut t = Table::new(&["total path length", "CPU measured (s)", "A6000 modeled (s)"]);
    for mult in [0.25, 0.5, 0.75, 1.0, 1.5] {
        let spec = hprc_catalog()[0].spec(ctx.scale * mult);
        let (_, lean) = build(&spec);
        let x = lean.total_path_nuc_len() as f64;
        let (_, rep) = CpuEngine::new(lcfg.clone()).run(&lean);
        let (_, gpu) = GpuEngine::new(
            GpuSpec::a6000(),
            lcfg.clone(),
            KernelConfig::optimized(ctx.scale * mult),
        )
        .run(&lean);
        xs.push(x);
        cpu_t.push(secs(rep.wall));
        gpu_t.push(gpu.modeled_s());
        t.row(vec![
            format!("{x:.3e}"),
            format!("{:.3}", secs(rep.wall)),
            format!("{:.3}", gpu.modeled_s()),
        ]);
    }
    emit(ctx, "fig15", &t);

    let r_cpu = pgmetrics::pearson(&xs, &cpu_t);
    let r_gpu = pgmetrics::pearson(&xs, &gpu_t);
    println!("linearity: pearson r CPU = {r_cpu:.4}, GPU = {r_gpu:.4}");
    if r_cpu < 0.9 {
        fails.push(format!(
            "CPU time not linear in path length (r = {r_cpu:.3})"
        ));
    }
    if r_gpu < 0.97 {
        fails.push(format!(
            "GPU modeled time not linear in path length (r = {r_gpu:.3})"
        ));
    }
    fails
}

/// Fig. 16: the speedup waterfall across successive optimizations.
pub fn fig16(ctx: &Ctx) -> Vec<String> {
    let mut fails = Vec::new();
    let spec = hprc_catalog()[0].spec(ctx.scale);
    let (_, lean) = build(&spec);
    let lcfg = layout_cfg();

    // CPU baseline and CPU+CDL: modeled odgi-style times from the cache
    // simulation (SoA vs AoS trace).
    let base_trace = characterize_cpu(&lean, &lcfg, DataLayout::OriginalSoa, ctx.scale, 120_000);
    let cdl_trace = characterize_cpu(
        &lean,
        &lcfg,
        DataLayout::CacheFriendlyAos,
        ctx.scale,
        120_000,
    );
    let cpu_base = modeled_cpu_time_s(&lean, &lcfg, &base_trace, cpu_model::THREADS);
    let cpu_cdl = modeled_cpu_time_s(&lean, &lcfg, &cdl_trace, cpu_model::THREADS);

    // Lean-port measured walls for the same two layouts (reported, not
    // part of the modeled chain).
    let wall = |layout: DataLayout| {
        let cfg = LayoutConfig {
            data_layout: layout,
            ..lcfg.clone()
        };
        secs(CpuEngine::new(cfg).run(&lean).1.wall)
    };
    let lean_soa = wall(DataLayout::OriginalSoa);
    let lean_aos = wall(DataLayout::CacheFriendlyAos);

    // PyTorch-style batch engine: measured on host, with its modeled
    // launch overhead included (reported with a caveat).
    let steps = lcfg.steps_per_iter(lean.total_steps() as u64) as usize;
    let (_, batch_rep) = BatchEngine::new(lcfg.clone(), (steps / 200).max(64)).run(&lean);
    let batch_s = batch_rep.modeled_total_s();

    // GPU kernels.
    let gpu = |kcfg: KernelConfig| {
        GpuEngine::new(GpuSpec::a6000(), lcfg.clone(), kcfg)
            .run(&lean)
            .1
            .modeled_s()
    };
    let gpu_base = gpu(KernelConfig::base(ctx.scale));
    let gpu_opt = gpu(KernelConfig::optimized(ctx.scale));

    let mut t = Table::new(&["stage", "time (s)", "speedup", "paper speedup", "basis"]);
    let stage = |t: &mut Table, name: &str, s: f64, paper: &str, basis: &str| {
        t.row(vec![
            name.to_string(),
            format!("{s:.3}"),
            format!("{:.1}x", cpu_base / s),
            paper.to_string(),
            basis.to_string(),
        ]);
    };
    stage(
        &mut t,
        "CPU baseline (odgi model)",
        cpu_base,
        "1.0x",
        "modeled",
    );
    stage(
        &mut t,
        "CPU w/ CDL (odgi model)",
        cpu_cdl,
        "3.1x",
        "modeled",
    );
    stage(
        &mut t,
        "PyTorch-style batch",
        batch_s,
        "6.8x",
        "measured on host CPU",
    );
    stage(&mut t, "base CUDA kernel", gpu_base, "14.6x", "modeled");
    stage(
        &mut t,
        "optimized (CDL+CRS+WM)",
        gpu_opt,
        "27.7x",
        "modeled",
    );
    t.row(vec![
        "lean Rust port (this repo)".into(),
        format!("{lean_soa:.3} (SoA) / {lean_aos:.3} (AoS)"),
        String::new(),
        String::new(),
        "measured".into(),
    ]);
    emit(ctx, "fig16", &t);

    // Shape: every modeled stage strictly improves.
    if cpu_cdl >= cpu_base {
        fails.push(format!(
            "CDL must speed up the CPU model ({cpu_cdl:.3} vs {cpu_base:.3})"
        ));
    }
    if gpu_base >= cpu_cdl {
        fails.push(format!(
            "base CUDA ({gpu_base:.3}) must beat CPU+CDL ({cpu_cdl:.3})"
        ));
    }
    if gpu_opt >= gpu_base {
        fails.push(format!(
            "optimized ({gpu_opt:.3}) must beat base ({gpu_base:.3})"
        ));
    }
    if cpu_base / gpu_opt < 8.0 {
        fails.push(format!(
            "end-to-end speedup only {:.1}x",
            cpu_base / gpu_opt
        ));
    }
    fails
}

/// Table IX: cache-friendly data layout, CPU and GPU effects.
pub fn table9(ctx: &Ctx) -> Vec<String> {
    let mut fails = Vec::new();
    let spec = hprc_catalog()[0].spec(ctx.scale);
    let (_, lean) = build(&spec);
    let lcfg = layout_cfg();

    let soa = characterize_cpu(&lean, &lcfg, DataLayout::OriginalSoa, ctx.scale, 120_000);
    let aos = characterize_cpu(
        &lean,
        &lcfg,
        DataLayout::CacheFriendlyAos,
        ctx.scale,
        120_000,
    );
    let cpu_soa_t = modeled_cpu_time_s(&lean, &lcfg, &soa, cpu_model::THREADS);
    let cpu_aos_t = modeled_cpu_time_s(&lean, &lcfg, &aos, cpu_model::THREADS);

    let gpu = |kcfg: KernelConfig| {
        GpuEngine::new(GpuSpec::a6000(), lcfg.clone(), kcfg)
            .run(&lean)
            .1
    };
    let g_base = gpu(KernelConfig::base(ctx.scale));
    let g_cdl = gpu(KernelConfig::base(ctx.scale).with_cdl());

    let mut t = Table::new(&["metric", "w/o CDL", "w/ CDL", "improv.", "paper improv."]);
    let ratio = |a: f64, b: f64| format!("{:.1}x", a / b.max(1e-12));
    t.row(vec![
        "CPU LLC-loads (#, traced)".into(),
        soa.llc_loads.to_string(),
        aos.llc_loads.to_string(),
        ratio(soa.llc_loads as f64, aos.llc_loads as f64),
        "3.2x".into(),
    ]);
    t.row(vec![
        "CPU LLC-load-misses (#)".into(),
        soa.llc_misses.to_string(),
        aos.llc_misses.to_string(),
        ratio(soa.llc_misses as f64, aos.llc_misses as f64),
        "3.3x".into(),
    ]);
    t.row(vec![
        "CPU run time (s, modeled)".into(),
        format!("{cpu_soa_t:.2}"),
        format!("{cpu_aos_t:.2}"),
        ratio(cpu_soa_t, cpu_aos_t),
        "3.1x".into(),
    ]);
    t.row(vec![
        "GPU DRAM access (MB)".into(),
        format!("{:.1}", g_base.mem.dram_bytes() as f64 / 1e6),
        format!("{:.1}", g_cdl.mem.dram_bytes() as f64 / 1e6),
        ratio(
            g_base.mem.dram_bytes() as f64,
            g_cdl.mem.dram_bytes() as f64,
        ),
        "1.3x".into(),
    ]);
    t.row(vec![
        "GPU run time (s, modeled)".into(),
        format!("{:.3}", g_base.modeled_s()),
        format!("{:.3}", g_cdl.modeled_s()),
        ratio(g_base.modeled_s(), g_cdl.modeled_s()),
        "1.4x".into(),
    ]);
    emit(ctx, "table9", &t);

    if (soa.llc_loads as f64) < 1.5 * aos.llc_loads as f64 {
        fails.push("CDL should cut CPU LLC loads by >1.5x".into());
    }
    if cpu_aos_t >= cpu_soa_t {
        fails.push("CDL must improve modeled CPU time".into());
    }
    if g_cdl.mem.dram_bytes() >= g_base.mem.dram_bytes() {
        fails.push("CDL must cut GPU DRAM traffic".into());
    }
    if g_cdl.modeled_s() >= g_base.modeled_s() {
        fails.push("CDL must improve modeled GPU time".into());
    }
    fails
}

/// Table X: coalesced random states.
pub fn table10(ctx: &Ctx) -> Vec<String> {
    let mut fails = Vec::new();
    let spec = hprc_catalog()[0].spec(ctx.scale);
    let (_, lean) = build(&spec);
    let lcfg = layout_cfg();
    let gpu = |kcfg: KernelConfig| {
        GpuEngine::new(GpuSpec::a6000(), lcfg.clone(), kcfg)
            .run(&lean)
            .1
    };
    let base = gpu(KernelConfig::base(ctx.scale));
    let crs = gpu(KernelConfig::base(ctx.scale).with_crs());

    let mut t = Table::new(&["metric", "w/o CRS", "w/ CRS", "improv.", "paper improv."]);
    let ratio = |a: f64, b: f64| format!("{:.1}x", a / b.max(1e-12));
    t.row(vec![
        "L1 sectors / req (#)".into(),
        format!("{:.1}", base.mem.sectors_per_request()),
        format!("{:.1}", crs.mem.sectors_per_request()),
        ratio(
            base.mem.sectors_per_request(),
            crs.mem.sectors_per_request(),
        ),
        "2.7x".into(),
    ]);
    t.row(vec![
        "L1 cache access (MB)".into(),
        format!("{:.1}", base.mem.l1_bytes() as f64 / 1e6),
        format!("{:.1}", crs.mem.l1_bytes() as f64 / 1e6),
        ratio(base.mem.l1_bytes() as f64, crs.mem.l1_bytes() as f64),
        "1.8x".into(),
    ]);
    t.row(vec![
        "L2 cache access (MB)".into(),
        format!("{:.1}", base.mem.l2_bytes() as f64 / 1e6),
        format!("{:.1}", crs.mem.l2_bytes() as f64 / 1e6),
        ratio(base.mem.l2_bytes() as f64, crs.mem.l2_bytes() as f64),
        "1.7x".into(),
    ]);
    t.row(vec![
        "DRAM access (MB)".into(),
        format!("{:.1}", base.mem.dram_bytes() as f64 / 1e6),
        format!("{:.1}", crs.mem.dram_bytes() as f64 / 1e6),
        ratio(base.mem.dram_bytes() as f64, crs.mem.dram_bytes() as f64),
        "1.3x".into(),
    ]);
    t.row(vec![
        "GPU run time (s, modeled)".into(),
        format!("{:.3}", base.modeled_s()),
        format!("{:.3}", crs.modeled_s()),
        ratio(base.modeled_s(), crs.modeled_s()),
        "1.2x".into(),
    ]);
    emit(ctx, "table10", &t);

    // The base kernel's sectors/request lands right on the paper's 26.8;
    // the post-CRS value improves by ~1.5x here vs the paper's 2.7x
    // because the sectored model keeps graph-data requests at their full
    // per-lane width (see EXPERIMENTS.md). Gate on the direction and on
    // the modeled-time improvement.
    if base.mem.sectors_per_request() < 1.35 * crs.mem.sectors_per_request() {
        fails.push("CRS should cut sectors/request by >1.35x".into());
    }
    if !(20.0..35.0).contains(&base.mem.sectors_per_request()) {
        fails.push(format!(
            "base sectors/request {:.1} should sit near the paper's 26.8",
            base.mem.sectors_per_request()
        ));
    }
    if crs.modeled_s() >= base.modeled_s() {
        fails.push("CRS must improve modeled GPU time".into());
    }
    fails
}

/// Table XI: warp merging.
pub fn table11(ctx: &Ctx) -> Vec<String> {
    let mut fails = Vec::new();
    let spec = hprc_catalog()[0].spec(ctx.scale);
    let (_, lean) = build(&spec);
    let lcfg = layout_cfg();
    let gpu = |kcfg: KernelConfig| {
        GpuEngine::new(GpuSpec::a6000(), lcfg.clone(), kcfg)
            .run(&lean)
            .1
    };
    let base = gpu(KernelConfig::base(ctx.scale));
    let wm = gpu(KernelConfig::base(ctx.scale).with_wm());

    let mut t = Table::new(&["metric", "w/o WM", "w/ WM", "improv.", "paper improv."]);
    t.row(vec![
        "executed warp instructions (#)".into(),
        base.warp.warp_instructions.to_string(),
        wm.warp.warp_instructions.to_string(),
        format!(
            "{:.2}x",
            base.warp.warp_instructions as f64 / wm.warp.warp_instructions as f64
        ),
        "1.5x".into(),
    ]);
    t.row(vec![
        "avg active threads / warp (#)".into(),
        format!("{:.1}", base.warp.avg_active_threads()),
        format!("{:.1}", wm.warp.avg_active_threads()),
        format!(
            "{:.2}x",
            wm.warp.avg_active_threads() / base.warp.avg_active_threads()
        ),
        "1.4x (20.5 → 27.9)".into(),
    ]);
    t.row(vec![
        "GPU run time (s, modeled)".into(),
        format!("{:.3}", base.modeled_s()),
        format!("{:.3}", wm.modeled_s()),
        format!("{:.2}x", base.modeled_s() / wm.modeled_s()),
        "1.1x".into(),
    ]);
    emit(ctx, "table11", &t);

    if wm.warp.warp_instructions >= base.warp.warp_instructions {
        fails.push("WM must reduce issued instructions".into());
    }
    if wm.warp.avg_active_threads() <= base.warp.avg_active_threads() {
        fails.push("WM must raise active threads per warp".into());
    }
    fails
}

/// Extension experiment: project the optimized Chr.1 kernel onto 1–8
/// GPUs over NVLink and PCIe (the paper's Sec. IX future work).
pub fn ext_multigpu(ctx: &Ctx) -> Vec<String> {
    use gpu_sim::multigpu::{scaling_curve, Interconnect};
    let mut fails = Vec::new();
    let spec = hprc_catalog()[0].spec(ctx.scale);
    let (_, lean) = build(&spec);
    let lcfg = layout_cfg();
    let (_, report) =
        GpuEngine::new(GpuSpec::a100(), lcfg, KernelConfig::optimized(ctx.scale)).run(&lean);

    let mut t = Table::new(&[
        "GPUs",
        "NVLink total (s)",
        "NVLink speedup",
        "NVLink eff.",
        "PCIe total (s)",
        "PCIe speedup",
    ]);
    let gspec = GpuSpec::a100();
    let nv = scaling_curve(&report, &gspec, &Interconnect::nvlink3(), 8);
    let pcie = scaling_curve(&report, &gspec, &Interconnect::pcie4(), 8);
    for (a, b) in nv.iter().zip(&pcie) {
        t.row(vec![
            a.gpus.to_string(),
            format!("{:.4}", a.total_s),
            format!("{:.2}x", a.speedup),
            format!("{:.0}%", a.efficiency * 100.0),
            format!("{:.4}", b.total_s),
            format!("{:.2}x", b.speedup),
        ]);
    }
    emit(ctx, "ext1", &t);

    if nv[7].speedup < 1.5 {
        fails.push(format!("8-GPU NVLink speedup only {:.2}x", nv[7].speedup));
    }
    if pcie[7].speedup >= nv[7].speedup {
        fails.push("PCIe must saturate earlier than NVLink".into());
    }
    fails
}

/// Fig. 17: the DRF/SRF data-reuse design-space exploration.
pub fn fig17(ctx: &Ctx) -> Vec<String> {
    let mut fails = Vec::new();
    const SCHEMES: [(u32, f64); 7] = [
        (1, 1.0),
        (2, 1.5),
        (4, 1.5),
        (2, 1.75),
        (4, 2.0),
        (8, 2.0),
        (8, 2.5),
    ];
    let lcfg = layout_cfg();
    let mut t = Table::new(&["Pan.", "(DRF,SRF)", "norm. speedup", "SPS", "verdict"]);

    for chrom_idx in [0usize, 1] {
        let entry = &hprc_catalog()[chrom_idx];
        let spec = entry.spec(ctx.scale * 0.6);
        let (_, lean): (_, LeanGraph) = build(&spec);
        let mut base: Option<(f64, f64)> = None;
        let mut speedups = Vec::new();
        let mut stresses = Vec::new();
        for (drf, srf) in SCHEMES {
            let kcfg = if drf == 1 {
                KernelConfig::optimized(ctx.scale * 0.6)
            } else {
                KernelConfig::optimized(ctx.scale * 0.6).with_reuse(drf, srf)
            };
            let (layout, rep) = GpuEngine::new(GpuSpec::a6000(), lcfg.clone(), kcfg).run(&lean);
            let sps = sampled_path_stress(&layout, &lean, SamplingConfig::default()).mean;
            let (bt, bq) = *base.get_or_insert((rep.modeled_s(), sps));
            let speedup = bt / rep.modeled_s();
            let verdict = if sps < 2.0 * bq.max(1e-9) {
                "good"
            } else if sps < 10.0 * bq.max(1e-9) {
                "satisfying"
            } else {
                "poor"
            };
            t.row(vec![
                entry.name.to_string(),
                format!("({drf},{srf})"),
                format!("{speedup:.2}x"),
                format!("{sps:.4}"),
                verdict.to_string(),
            ]);
            speedups.push(speedup);
            stresses.push(sps);
        }
        // Shape: the most aggressive scheme is the fastest, and
        // aggressive reuse costs quality.
        let max_speedup = speedups.iter().cloned().fold(0.0f64, f64::max);
        if max_speedup < 1.2 {
            fails.push(format!(
                "{}: best reuse speedup only {max_speedup:.2}x",
                entry.name
            ));
        }
        let q0 = stresses[0];
        let worst = stresses.iter().cloned().fold(0.0f64, f64::max);
        if worst < 1.5 * q0 {
            fails.push(format!(
                "{}: aggressive reuse should degrade stress (base {q0:.4}, worst {worst:.4})",
                entry.name
            ));
        }
    }
    emit(ctx, "fig17", &t);
    fails
}
