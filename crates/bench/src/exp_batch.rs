//! Tables III & IV and Fig. 7 — the PyTorch-style batched implementation
//! study (paper Sec. IV).
//!
//! The paper sweeps batch sizes {10K … 100M} on the full MHC graph
//! (Σ|p| ≈ 2×10⁷ steps, so 10×Σ|p| ≈ 2×10⁸ updates per iteration). We
//! sweep the *same batch-to-workload ratios* on the scaled MHC graph, so
//! batch counts — and therefore kernel-launch counts and staleness
//! effects — match the paper's regime.

use crate::common::{build, emit, layout_cfg, representative_specs, secs, Ctx};
use layout_core::batch::{BatchEngine, BatchReport, KernelOp, ALL_OPS};
use layout_core::cpu::CpuEngine;
use pangraph::lean::LeanGraph;
use pgio::Table;
use pgmetrics::{sampled_path_stress, SamplingConfig};

/// Paper Table III: batch size → (run time s, speedup, quality).
const TABLE3_PAPER: [(&str, f64, f64, &str); 5] = [
    ("10K", 702.2, 0.2, "Good"),
    ("100K", 67.3, 1.6, "Good"),
    ("1M", 15.6, 6.8, "Good"),
    ("10M", 14.3, 7.5, "Satisfying"),
    ("100M", 11.8, 9.1, "Poor"),
];

/// Paper MHC updates per iteration (10 × Σ|p|) used to transfer ratios.
const PAPER_MHC_STEPS_PER_ITER: f64 = 2.0e8;
/// Paper batch sizes.
const PAPER_BATCHES: [f64; 5] = [1e4, 1e5, 1e6, 1e7, 1e8];

struct SweepRow {
    label: &'static str,
    batch: usize,
    report: BatchReport,
    sps: f64,
}

fn mhc_sweep(ctx: &Ctx) -> (LeanGraph, f64, f64, Vec<SweepRow>) {
    let (_, spec, _) = representative_specs(ctx).swap_remove(1);
    let (_, lean) = build(&spec);
    let lcfg = layout_cfg();
    let steps_per_iter = lcfg.steps_per_iter(lean.total_steps() as u64) as f64;

    // CPU baseline for the speedup column.
    let (cpu_layout, cpu_report) = CpuEngine::new(lcfg.clone()).run(&lean);
    let cpu_s = secs(cpu_report.wall);
    let cpu_sps = sampled_path_stress(&cpu_layout, &lean, SamplingConfig::default()).mean;

    let rows = TABLE3_PAPER
        .iter()
        .zip(PAPER_BATCHES)
        .map(|(&(label, ..), paper_b)| {
            let ratio = paper_b / PAPER_MHC_STEPS_PER_ITER;
            let batch = ((steps_per_iter * ratio).round() as usize).max(8);
            let engine = BatchEngine::new(lcfg.clone(), batch);
            let (layout, report) = engine.run(&lean);
            let sps = sampled_path_stress(&layout, &lean, SamplingConfig::default()).mean;
            SweepRow {
                label,
                batch,
                report,
                sps,
            }
        })
        .collect();
    (lean, cpu_s, cpu_sps, rows)
}

fn verdict(sps: f64, baseline: f64) -> &'static str {
    if sps < 2.0 * baseline.max(1e-9) {
        "Good"
    } else if sps < 10.0 * baseline.max(1e-9) {
        "Satisfying"
    } else {
        "Poor"
    }
}

/// Table III: run time and quality across batch sizes.
pub fn table3(ctx: &Ctx) -> Vec<String> {
    let mut fails = Vec::new();
    let (_, cpu_s, cpu_sps, rows) = mhc_sweep(ctx);
    let mut t = Table::new(&[
        "Batch (paper)",
        "Batch (scaled)",
        "host wall (s)",
        "modeled GPU total (s)",
        "SPS",
        "Quality",
        "paper: time",
        "paper: speedup",
        "paper: quality",
    ]);
    for (row, (_, pt, psu, pq)) in rows.iter().zip(TABLE3_PAPER) {
        t.row(vec![
            row.label.to_string(),
            row.batch.to_string(),
            format!("{:.3}", secs(row.report.wall)),
            format!("{:.3}", row.report.modeled_total_s()),
            format!("{:.4}", row.sps),
            verdict(row.sps, cpu_sps).to_string(),
            format!("{pt}"),
            format!("{psu}x"),
            pq.to_string(),
        ]);
    }
    t.row(vec![
        "CPU baseline".into(),
        "-".into(),
        format!("{cpu_s:.3}"),
        "-".into(),
        format!("{cpu_sps:.4}"),
        "reference".into(),
        "107".into(),
        "1.0x".into(),
        "-".into(),
    ]);
    emit(ctx, "table3", &t);

    // Shape checks: the modeled GPU-analog total (kernel time + launch
    // overhead — where the paper's small-batch collapse lives) falls
    // steeply from the smallest batch to the mid-range, and the largest
    // batch degrades quality.
    let t_small = rows[0].report.modeled_total_s();
    let t_mid = rows[2].report.modeled_total_s();
    if t_small < 5.0 * t_mid {
        fails.push(format!(
            "small batches should collapse on launch overhead: 10K-eq {t_small:.2}s vs 1M-eq {t_mid:.2}s"
        ));
    }
    let q_good = rows[2].sps;
    let q_huge = rows[4].sps;
    if q_huge <= q_good {
        fails.push(format!(
            "whole-workload batches must lose quality: {q_huge:.4} vs {q_good:.4}"
        ));
    }
    fails
}

/// Paper Table IV: batch → (kernels launched, API-time %).
const TABLE4_PAPER: [(&str, u64, f64); 3] = [
    ("100K", 6_562_860, 76.4),
    ("1M", 651_480, 20.2),
    ("10M", 64_080, 2.1),
];

/// Table IV: CUDA kernel launching overhead.
pub fn table4(ctx: &Ctx) -> Vec<String> {
    let mut fails = Vec::new();
    let (_, _, _, rows) = mhc_sweep(ctx);
    let mut t = Table::new(&[
        "Batch (paper)",
        "kernels launched",
        "API time % (modeled)",
        "paper: kernels",
        "paper: API %",
    ]);
    // Paper Table IV covers the middle three batch sizes.
    let mut launches = Vec::new();
    for (row, (_, pk, pa)) in rows[1..4].iter().zip(TABLE4_PAPER) {
        t.row(vec![
            row.label.to_string(),
            row.report.kernels_launched.to_string(),
            format!("{:.1}", row.report.api_time_pct()),
            pk.to_string(),
            format!("{pa:.1}"),
        ]);
        launches.push(row.report.kernels_launched);
    }
    emit(ctx, "table4", &t);

    if !(launches[0] > 5 * launches[1] && launches[1] > 5 * launches[2]) {
        fails.push(format!(
            "launch counts must fall ~10x per decade: {launches:?}"
        ));
    }
    let api: Vec<f64> = rows[1..4].iter().map(|r| r.report.api_time_pct()).collect();
    if !(api[0] > api[1] && api[1] > api[2]) {
        fails.push(format!("API share must fall with batch size: {api:?}"));
    }
    fails
}

/// Fig. 7: kernel-time breakdown; `index` is the dominant memory op.
pub fn fig7(ctx: &Ctx) -> Vec<String> {
    let mut fails = Vec::new();
    let (_, _, _, rows) = mhc_sweep(ctx);
    let mut t = Table::new(&[
        "Batch (paper)",
        "index %",
        "pow %",
        "mul %",
        "where %",
        "add %",
        "other %",
    ]);
    for row in rows[1..4].iter() {
        let f: Vec<f64> = ALL_OPS
            .iter()
            .map(|&op| 100.0 * row.report.op_fraction(op))
            .collect();
        t.row(vec![
            row.label.to_string(),
            format!("{:.1}", f[0]),
            format!("{:.1}", f[1]),
            format!("{:.1}", f[2]),
            format!("{:.1}", f[3]),
            format!("{:.1}", f[4]),
            format!("{:.1}", f[5]),
        ]);
        // Among the tensor kernels (excluding host-side `other`), the
        // random-access index op must dominate (paper: 34-36%).
        let index = row.report.op_fraction(KernelOp::Index);
        for op in [KernelOp::Pow, KernelOp::Mul, KernelOp::Where, KernelOp::Add] {
            if row.report.op_fraction(op) > index {
                fails.push(format!(
                    "{}: {op:?} ({:.3}) outweighs index ({index:.3})",
                    row.label,
                    row.report.op_fraction(op)
                ));
            }
        }
    }
    emit(ctx, "fig7", &t);
    fails
}
