//! Table V (metric run times), Fig. 6 (why randomness matters), Fig. 12
//! (quality ladder) and Fig. 13 (sampled-vs-exact correlation) — the
//! quality-metric experiments of paper Sec. VI.

use crate::common::{build, emit, layout_cfg, representative_specs, Ctx};
use draw::{to_svg, DrawOptions};
use layout_core::config::PairSelection;
use layout_core::cpu::CpuEngine;
use layout_core::init::init_random;
use layout_core::LayoutConfig;
use pgio::Table;
use pgmetrics::{path_stress, pearson, sampled_path_stress, SamplingConfig};
use std::time::Instant;

/// Paper Table V: (nodes, exact run time s, sampled run time s).
const TABLE5_PAPER: [(&str, f64, f64, f64); 3] = [
    ("HLA-DRB1", 5.0e3, 1.6, 0.3),
    ("MHC", 2.3e5, 53.0 * 60.0, 6.5),
    ("Chr.1", 1.1e7, 194.0 * 3600.0, 5.5 * 60.0),
];

/// Table V: run time of path stress vs sampled path stress.
pub fn table5(ctx: &Ctx) -> Vec<String> {
    let mut fails = Vec::new();
    let mut t = Table::new(&[
        "Pangenome",
        "#Nodes",
        "exact (s)",
        "sampled (s)",
        "exact/sampled",
        "full-scale est. exact",
        "paper: exact",
        "paper: sampled",
    ]);
    for ((name, spec, _), (_, _, p_exact, p_sampled)) in
        representative_specs(ctx).into_iter().zip(TABLE5_PAPER)
    {
        let (g, lean) = build(&spec);
        let (layout, _) = CpuEngine::new(layout_cfg()).run(&lean);

        let t0 = Instant::now();
        let exact = path_stress(&layout, &lean);
        let exact_s = t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        let _ = sampled_path_stress(&layout, &lean, SamplingConfig::default());
        let sampled_s = t0.elapsed().as_secs_f64();

        // Extrapolate exact to full scale: quadratic in per-path steps.
        // At paper scale Chr.1 has ~2.6e5 steps per path over 2262 paths.
        let full_pairs: f64 = match name {
            "HLA-DRB1" => exact.pairs as f64, // already full scale
            "MHC" => 99.0 * (2.3e5f64 / 99.0 * 26.0).powi(2) / 2.0, // ≈ Σ|p|² regime
            _ => 2262.0 * (5.94e8f64 / 2262.0).powi(2) / 2.0,
        };
        let per_pair = exact_s / exact.pairs.max(1) as f64;
        let full_exact_est = per_pair * full_pairs;

        t.row(vec![
            name.to_string(),
            format!("{:.1e}", g.node_count() as f64),
            format!("{exact_s:.3}"),
            format!("{sampled_s:.3}"),
            format!("{:.0}x", exact_s / sampled_s.max(1e-9)),
            format!("{:.1} h", full_exact_est / 3600.0),
            format!("{:.0} s", p_exact),
            format!("{:.0} s", p_sampled),
        ]);
        if name != "HLA-DRB1" && exact_s < sampled_s {
            fails.push(format!(
                "{name}: exact ({exact_s:.3}s) must cost more than sampled ({sampled_s:.3}s)"
            ));
        }
        if name == "Chr.1" && full_exact_est < 10.0 * 3600.0 {
            fails.push(format!(
                "Chr.1 full-scale exact estimate {:.1}h should be impractical (paper: 194 GPU-h)",
                full_exact_est / 3600.0
            ));
        }
    }
    emit(ctx, "table5", &t);
    fails
}

/// Fig. 6: forcing all pairs 10 hops apart destroys convergence.
pub fn fig6(ctx: &Ctx) -> Vec<String> {
    let mut fails = Vec::new();
    let (_, lean) = build(&workloads::hla_drb1());
    let total: f64 = lean.node_len.iter().map(|&l| l as f64).sum();
    let random = init_random(&lean, total, 6);
    let mk = |sel| LayoutConfig {
        pair_selection: sel,
        ..layout_cfg()
    };
    let (good, _) = CpuEngine::new(mk(PairSelection::PgSgd)).run_from(&lean, &random);
    let (bad, _) = CpuEngine::new(mk(PairSelection::FixedHop(10))).run_from(&lean, &random);
    let qg = path_stress(&good, &lean).stress;
    let qb = path_stress(&bad, &lean).stress;

    let mut t = Table::new(&["pair selection", "path stress"]);
    t.row(vec!["PG-SGD (random)".into(), format!("{qg:.4}")]);
    t.row(vec!["fixed 10-hop".into(), format!("{qb:.4}")]);
    emit(ctx, "fig6", &t);
    for (name, layout) in [("fig6_pgsgd", &good), ("fig6_fixed_hop", &bad)] {
        let svg = to_svg(layout, &lean, &DrawOptions::default());
        let _ = std::fs::write(ctx.out_dir.join(format!("{name}.svg")), svg);
    }

    if qb < 3.0 * qg {
        fails.push(format!(
            "fixed-hop stress {qb:.4} should far exceed PG-SGD {qg:.4}"
        ));
    }
    fails
}

/// Paper Fig. 12 path-stress ladder for HLA-DRB1.
const FIG12_PAPER: [f64; 4] = [142.2, 22.4, 1.3, 0.07];

/// Fig. 12: layouts of decreasing path stress.
pub fn fig12(ctx: &Ctx) -> Vec<String> {
    let mut fails = Vec::new();
    let (_, lean) = build(&workloads::hla_drb1());
    let total: f64 = lean.node_len.iter().map(|&l| l as f64).sum();
    let random = init_random(&lean, total, 12);
    let mut values = vec![path_stress(&random, &lean).stress];
    let mut layouts = vec![random.clone()];
    for iters in [1u32, 4, 30] {
        let cfg = LayoutConfig {
            iter_max: iters,
            ..layout_cfg()
        };
        let (l, _) = CpuEngine::new(cfg).run_from(&lean, &random);
        values.push(path_stress(&l, &lean).stress);
        layouts.push(l);
    }

    let mut t = Table::new(&["stage", "path stress", "paper (Fig. 12)"]);
    for (i, (v, p)) in values.iter().zip(FIG12_PAPER).enumerate() {
        t.row(vec![
            format!("stage {i}"),
            format!("{v:.4}"),
            format!("{p}"),
        ]);
        let svg = to_svg(&layouts[i], &lean, &DrawOptions::default());
        let _ = std::fs::write(ctx.out_dir.join(format!("fig12_stage{i}.svg")), svg);
    }
    emit(ctx, "fig12", &t);

    for w in values.windows(2) {
        if w[1] > w[0] * 1.05 + 1e-9 {
            fails.push(format!("ladder must descend: {:?}", values));
            break;
        }
    }
    if values[0] < 100.0 * values[3].max(1e-9) {
        fails.push(format!(
            "range too narrow: random {} vs converged {}",
            values[0], values[3]
        ));
    }
    fails
}

/// Fig. 13: sampled path stress tracks exact path stress (r = 0.995 over
/// 1824 small layouts in the paper; 160 by default here, 1824 with
/// `--full`).
pub fn fig13(ctx: &Ctx) -> Vec<String> {
    let mut fails = Vec::new();
    let graphs = if ctx.full { 456 } else { 40 };
    let specs = workloads::small_graph_family(graphs, 13);
    let mut exact_v = Vec::new();
    let mut sampled_v = Vec::new();
    for (gi, spec) in specs.iter().enumerate() {
        let (_, lean) = build(spec);
        let total: f64 = lean.node_len.iter().map(|&l| l as f64).sum();
        let random = init_random(&lean, total, 1000 + gi as u64);
        for (si, iters) in [0u32, 2, 6, 20].into_iter().enumerate() {
            let layout = if iters == 0 {
                random.clone()
            } else {
                let cfg = LayoutConfig {
                    iter_max: iters,
                    threads: 0,
                    ..layout_cfg()
                };
                CpuEngine::new(cfg).run_from(&lean, &random).0
            };
            let e = path_stress(&layout, &lean).stress;
            let s = sampled_path_stress(
                &layout,
                &lean,
                SamplingConfig {
                    samples_per_node: 100,
                    seed: 77 + si as u64,
                },
            )
            .mean;
            if e > 0.0 && s > 0.0 {
                exact_v.push(e);
                sampled_v.push(s);
            }
        }
    }
    let r_raw = pearson(&exact_v, &sampled_v);
    let logs = |v: &[f64]| v.iter().map(|x| x.log10()).collect::<Vec<_>>();
    let r_log = pearson(&logs(&exact_v), &logs(&sampled_v));

    let mut t = Table::new(&[
        "layouts",
        "pearson r (raw)",
        "pearson r (log-log)",
        "paper r",
    ]);
    t.row(vec![
        exact_v.len().to_string(),
        format!("{r_raw:.4}"),
        format!("{r_log:.4}"),
        "0.995".into(),
    ]);
    emit(ctx, "fig13", &t);
    // Also dump the scatter for plotting.
    let mut scatter = Table::new(&["exact", "sampled"]);
    for (e, s) in exact_v.iter().zip(&sampled_v) {
        scatter.row(vec![format!("{e:.6e}"), format!("{s:.6e}")]);
    }
    let _ = std::fs::write(ctx.out_dir.join("fig13_scatter.tsv"), scatter.to_tsv());

    if r_log < 0.95 {
        fails.push(format!("log-log correlation {r_log:.3} below 0.95"));
    }
    if r_raw < 0.85 {
        fails.push(format!("raw correlation {r_raw:.3} below 0.85"));
    }
    fails
}
