//! Fig. 4 (thread scaling), Fig. 5 (top-down analysis) and Table II
//! (memory stalls / LLC behaviour) — the CPU workload characterization.

use crate::common::{build, emit, layout_cfg, representative_specs, secs, Ctx};
use gpu_sim::cpusim::characterize_cpu;
use layout_core::coords::DataLayout;
use layout_core::cpu::CpuEngine;
use layout_core::LayoutConfig;
use pgio::Table;

/// Fig. 4: `odgi-layout` scales linearly with threads; so does the port.
pub fn fig4(ctx: &Ctx) -> Vec<String> {
    let mut fails = Vec::new();
    let max_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(8);
    let mut counts = vec![1usize, 2, 4, 8, 16, 32];
    counts.retain(|&c| c <= max_threads);
    if !counts.contains(&max_threads) {
        counts.push(max_threads);
    }
    let mut t = Table::new(&["Pangenome", "threads", "run time (s)", "speedup vs 1T"]);

    for (name, spec, _) in representative_specs(ctx) {
        let (_, lean) = build(&spec);
        let mut t1 = None;
        let mut best = f64::INFINITY;
        for &threads in &counts {
            let cfg = LayoutConfig {
                threads,
                ..layout_cfg()
            };
            let (_, report) = CpuEngine::new(cfg).run(&lean);
            let s = secs(report.wall);
            let base = *t1.get_or_insert(s);
            best = best.min(s);
            t.row(vec![
                name.to_string(),
                threads.to_string(),
                format!("{s:.3}"),
                format!("{:.2}x", base / s),
            ]);
        }
        // Shape check: the best multithreaded time must beat 1 thread by
        // a healthy margin. The paper's full-size graphs scale linearly;
        // at 1/1000 scale the Hogwild coordinate slab is small enough
        // that cache-line ping-pong between cores caps scaling earlier,
        // so the gate is deliberately sublinear.
        let one = t1.unwrap();
        let max_t = *counts.last().unwrap() as f64;
        if one / best < (max_t / 6.0).max(1.6) {
            fails.push(format!(
                "{name}: {max_t}-thread speedup only {:.1}x over 1 thread",
                one / best
            ));
        }
    }
    emit(ctx, "fig4", &t);
    fails
}

/// Shared Fig. 5 / Table II characterization rows.
fn characterize(ctx: &Ctx) -> Vec<(String, gpu_sim::CpuMemReport, f64)> {
    representative_specs(ctx)
        .into_iter()
        .map(|(name, spec, mem_scale)| {
            let (_, lean) = build(&spec);
            let lcfg = layout_cfg();
            let r = characterize_cpu(&lean, &lcfg, DataLayout::OriginalSoa, mem_scale, 120_000);
            let (_, report) = CpuEngine::new(lcfg).run(&lean);
            (name.to_string(), r, secs(report.wall))
        })
        .collect()
}

/// Paper Fig. 5 memory-bound percentages per graph.
const FIG5_PAPER: [(&str, f64); 3] = [("HLA-DRB1", 53.5), ("MHC", 65.4), ("Chr.1", 70.9)];

/// Fig. 5: top-down memory-bound share grows with graph size.
pub fn fig5(ctx: &Ctx) -> Vec<String> {
    let mut fails = Vec::new();
    let rows = characterize(ctx);
    let mut t = Table::new(&["Pangenome", "memory-bound %", "paper %"]);
    let mut prev = 0.0;
    for ((name, r, _), (_, paper)) in rows.iter().zip(FIG5_PAPER) {
        let mb = r.memory_bound_pct();
        t.row(vec![
            name.clone(),
            format!("{mb:.1}"),
            format!("{paper:.1}"),
        ]);
        if mb + 8.0 < prev {
            fails.push(format!(
                "{name}: memory-bound {mb:.1}% dropped vs smaller graph"
            ));
        }
        prev = mb;
    }
    let last = rows.last().unwrap().1.memory_bound_pct();
    if !(35.0..92.0).contains(&last) {
        fails.push(format!(
            "Chr.1 memory-bound {last:.1}% outside the paper's regime"
        ));
    }
    emit(ctx, "fig5", &t);
    fails
}

/// Paper Table II reference: (run time s, stall %, LLC miss %).
const TABLE2_PAPER: [(&str, f64, f64, f64); 3] = [
    ("HLA-DRB1", 0.4, 67.67, 75.09),
    ("MHC", 107.0, 78.07, 77.84),
    ("Chr.1", 9158.0, 77.38, 89.88),
];

/// Table II: memory stall cycles and LLC load miss rate.
pub fn table2(ctx: &Ctx) -> Vec<String> {
    let mut fails = Vec::new();
    let rows = characterize(ctx);
    let mut t = Table::new(&[
        "Pangenome",
        "run time (s, measured, scaled)",
        "stall %",
        "LLC miss %",
        "paper: run time",
        "paper: stall %",
        "paper: LLC miss %",
    ]);
    for ((name, r, wall), (_, pt, ps, pm)) in rows.iter().zip(TABLE2_PAPER) {
        t.row(vec![
            name.clone(),
            format!("{wall:.3}"),
            format!("{:.1}", r.stall_pct()),
            format!("{:.1}", r.llc_miss_rate() * 100.0),
            format!("{pt}"),
            format!("{ps:.1}"),
            format!("{pm:.1}"),
        ]);
        if r.stall_pct() < 30.0 {
            fails.push(format!("{name}: stall share {:.1}% too low", r.stall_pct()));
        }
    }
    // Robust shape invariants: the stall share grows with graph size
    // (the HLA-DRB1 miss *rate* is cold-miss-dominated — its working set
    // fits the cache and the run is sub-second, as in the paper — so
    // rate monotonicity is not the right check), and the chromosome
    // graph misses heavily (paper: 89.9%).
    let stalls: Vec<f64> = rows.iter().map(|(_, r, _)| r.stall_pct()).collect();
    if !(stalls[0] <= stalls[1] + 5.0 && stalls[1] <= stalls[2] + 5.0) {
        fails.push(format!("stall share should grow with size: {stalls:?}"));
    }
    let chr1_miss = rows[2].1.llc_miss_rate();
    if chr1_miss < 0.5 {
        fails.push(format!("Chr.1 LLC miss rate {chr1_miss:.2} should be high"));
    }
    emit(ctx, "table2", &t);
    fails
}
