//! `pgl bench` — the reproducible SGD-throughput harness.
//!
//! The repository's north star is making the hot path measurably faster
//! every time it is touched; this module is the measuring stick. It lays
//! out a bundled workload preset across the hot-path axes (engine ×
//! precision × memory layout), records applied updates per second for
//! each combination, and emits a small self-describing JSON document
//! (`BENCH_<n>.json` is committed per perf PR, so the repo carries its
//! own performance trajectory).
//!
//! Everything is deterministic — generated graphs, seeds, iteration
//! counts — except wall time itself, so two runs on one machine are
//! directly comparable and `--baseline` (a prior run's updates/sec)
//! turns the report into a speedup statement.
//!
//! Schema `pgl-bench/2` (additive over `/1`):
//!
//! * per-record run statistics over `--repeat` timings — `wall_s_mean`,
//!   `wall_s_stddev`, `cv`, `updates_per_sec_mean` — alongside the
//!   historical best-of `wall_s`/`updates_per_sec`,
//! * `simd`/`write_shard` booleans recording the resolved kernel shape,
//! * multi-thread rows from `--threads-sweep`, plus a top-level
//!   `host.cores` so scaling rows are interpretable,
//! * optional `anchor_ratio` per record from `--ab` mode: each row's
//!   repeats are interleaved with a fixed in-process *anchor* workload
//!   (cpu / f64 / aos / 1 thread / scalar — present in every committed
//!   baseline), and the row is summarized as its throughput relative to
//!   the anchor's. Gating on the ratio makes multiplicative machine
//!   drift (VM performance regimes, thermal state) cancel between a
//!   baseline recorded yesterday and a candidate run today.

use layout_core::{BatchEngine, CpuEngine, DataLayout, LayoutConfig, Precision, Toggle};
use pangraph::lean::LeanGraph;
use workloads::{generate, PangenomeSpec};

/// JSON schema tag; bump when the document shape changes.
pub const BENCH_SCHEMA: &str = "pgl-bench/2";
/// Previous schema tag, still accepted by [`validate_json`] and
/// [`guard_against_baseline`] so older committed baselines keep working.
pub const BENCH_SCHEMA_V1: &str = "pgl-bench/1";

/// What to measure.
#[derive(Debug, Clone)]
pub struct BenchOptions {
    /// Workload preset: `small`, `medium` or `large`.
    pub preset: String,
    /// Worker threads per run (0 ⇒ all cores). Keep fixed across runs
    /// you intend to compare. Ignored when `threads_sweep` is set.
    pub threads: usize,
    /// Thread counts to sweep; each produces its own headline rows.
    /// Empty ⇒ just `threads`.
    pub threads_sweep: Vec<usize>,
    /// Sharded-write mode for cpu rows (auto ⇒ on at ≥ 4 threads).
    pub write_shard: Toggle,
    /// SIMD apply kernel for cpu rows (auto ⇒ on for multithreaded rows).
    pub simd: Toggle,
    /// Schedule length per run.
    pub iters: u32,
    /// Timed repetitions per configuration; the document reports both
    /// the best repetition and mean/stddev across all of them.
    pub repeat: usize,
    /// Interleaved A/B mode: alternate each row's repeats with anchor
    /// runs and record the row:anchor throughput ratio.
    pub ab: bool,
    /// CI smoke mode: a tiny graph, three iterations, and only the two
    /// headline configurations.
    pub quick: bool,
    /// A reference updates/sec (e.g. the previous release's headline
    /// number on this machine); each record then carries its speedup.
    pub baseline_updates_per_sec: Option<f64>,
}

impl Default for BenchOptions {
    fn default() -> Self {
        Self {
            preset: "medium".into(),
            threads: 1,
            threads_sweep: Vec::new(),
            write_shard: Toggle::Auto,
            simd: Toggle::Auto,
            iters: 15,
            repeat: 2,
            ab: false,
            quick: false,
            baseline_updates_per_sec: None,
        }
    }
}

/// One measured configuration.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Engine (`cpu` or `batch`).
    pub engine: String,
    /// Coordinate precision label (`f64` / `f32`).
    pub precision: String,
    /// Memory layout label (`aos` / `soa`).
    pub layout: String,
    /// Worker threads used.
    pub threads: usize,
    /// Term-block size of the hot loop.
    pub term_block: usize,
    /// Mini-batch size (batch engine only; 0 otherwise).
    pub batch: usize,
    /// Iterations run.
    pub iters: u32,
    /// Resolved SIMD-kernel state of this row.
    pub simd: bool,
    /// Resolved sharded-write state of this row.
    pub write_shard: bool,
    /// Terms actually applied.
    pub terms_applied: u64,
    /// Wall seconds of the best repetition.
    pub wall_s: f64,
    /// Applied updates per second of the best repetition (the headline
    /// metric, schema-stable since `pgl-bench/1`).
    pub updates_per_sec: f64,
    /// Mean wall seconds across all repetitions.
    pub wall_s_mean: f64,
    /// Wall-second standard deviation across repetitions.
    pub wall_s_stddev: f64,
    /// Coefficient of variation (`wall_s_stddev / wall_s_mean`) — the
    /// run-to-run noise the guard folds into its tolerance.
    pub cv: f64,
    /// Mean applied updates per second (`terms_applied / wall_s_mean`;
    /// the term count is deterministic per configuration).
    pub updates_per_sec_mean: f64,
    /// `--ab` mode: this row's mean throughput relative to the
    /// interleaved anchor workload's mean throughput.
    pub anchor_ratio: Option<f64>,
}

/// A full harness run.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Preset name.
    pub preset: String,
    /// Graph shape, so numbers are interpretable later.
    pub nodes: usize,
    /// Path count.
    pub paths: usize,
    /// Total path steps (updates per iteration = 10 × this).
    pub steps: usize,
    /// Quick (CI smoke) mode?
    pub quick: bool,
    /// Timed repetitions per configuration.
    pub repeat: usize,
    /// Logical cores on the measuring host (thread-scaling rows beyond
    /// this count measure oversubscription, not scaling).
    pub host_cores: usize,
    /// Interleaved A/B mode?
    pub ab: bool,
    /// Reference updates/sec, when provided.
    pub baseline_updates_per_sec: Option<f64>,
    /// One record per measured configuration.
    pub results: Vec<BenchRecord>,
}

impl BenchReport {
    /// The fastest measured configuration.
    pub fn best(&self) -> Option<&BenchRecord> {
        self.results.iter().max_by(|a, b| {
            a.updates_per_sec
                .partial_cmp(&b.updates_per_sec)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
    }
}

/// The preset graph the harness measures on. `small`/`medium`/`large`
/// are fixed, seeded generator specs; `quick` substitutes a tiny graph
/// so CI smoke runs finish in seconds.
pub fn bench_spec(preset: &str, quick: bool) -> Result<PangenomeSpec, String> {
    // Validate the preset name even in quick mode, so a typoed
    // `--preset` fails loudly instead of silently benchmarking the
    // quick graph.
    let full = match preset {
        "small" => workloads::hla_drb1(),
        "medium" => workloads::mhc_like(0.05),
        "large" => workloads::mhc_like(0.25),
        other => return Err(format!("unknown preset {other:?} (small, medium, large)")),
    };
    if quick {
        return Ok(PangenomeSpec::basic("bench-quick", 150, 4, 0xBE7C));
    }
    Ok(full)
}

fn layout_label(l: DataLayout) -> &'static str {
    match l {
        DataLayout::CacheFriendlyAos => "aos",
        DataLayout::OriginalSoa => "soa",
    }
}

/// Best/mean/stddev of a set of wall timings.
fn wall_stats(walls: &[f64]) -> (f64, f64, f64) {
    let best = walls.iter().cloned().fold(f64::INFINITY, f64::min);
    let mean = walls.iter().sum::<f64>() / walls.len() as f64;
    let var = walls.iter().map(|w| (w - mean).powi(2)).sum::<f64>() / walls.len() as f64;
    (best, mean, var.sqrt())
}

/// Run the harness: generate the preset, sweep the hot-path axes (and
/// the thread counts of `threads_sweep`), and return the measured
/// records. Progress lines go to stderr.
pub fn run_bench(opts: &BenchOptions) -> Result<BenchReport, String> {
    let spec = bench_spec(&opts.preset, opts.quick)?;
    eprintln!("pgl bench: generating {} ...", spec.name);
    let lean = LeanGraph::from_graph(&generate(&spec));
    let iters = if opts.quick { 3 } else { opts.iters };
    let repeat = opts.repeat.max(1);
    let sweep: Vec<usize> = if opts.threads_sweep.is_empty() {
        vec![opts.threads]
    } else {
        opts.threads_sweep.clone()
    };
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let base_cfg = |precision, data_layout, threads| LayoutConfig {
        iter_max: iters,
        threads,
        precision,
        data_layout,
        simd: opts.simd,
        write_shard: opts.write_shard,
        seed: 0xBE9C_5EED,
        ..LayoutConfig::default()
    };
    // The `--ab` anchor: the one configuration every committed baseline
    // carries (cpu / f64 / aos / 1 thread, scalar kernel, unsharded).
    let anchor_engine = CpuEngine::new(LayoutConfig {
        simd: Toggle::Off,
        write_shard: Toggle::Off,
        ..base_cfg(Precision::F64, DataLayout::CacheFriendlyAos, 1)
    });

    // Time one runner `repeat` times; in `--ab` mode alternate with
    // anchor runs so candidate and anchor sample the same machine
    // regime, and summarize the row as a ratio against the anchor.
    let measure = |run: &dyn Fn() -> (f64, u64)| -> (Vec<f64>, u64, Option<f64>) {
        let mut walls = Vec::new();
        let mut anchor_walls = Vec::new();
        let mut terms = 0u64;
        let mut anchor_terms = 0u64;
        for _ in 0..repeat {
            let (w, t) = run();
            walls.push(w);
            terms = t;
            if opts.ab {
                let (_, rep) = anchor_engine.run(&lean);
                anchor_walls.push(rep.wall.as_secs_f64());
                anchor_terms = rep.terms_applied;
            }
        }
        let anchor_ratio = (!anchor_walls.is_empty()).then(|| {
            let (_, a_mean, _) = wall_stats(&anchor_walls);
            let (_, c_mean, _) = wall_stats(&walls);
            (terms as f64 / c_mean.max(1e-12)) / (anchor_terms as f64 / a_mean.max(1e-12))
        });
        (walls, terms, anchor_ratio)
    };

    let finish_record = |mut rec: BenchRecord, walls: &[f64]| -> BenchRecord {
        let (best, mean, stddev) = wall_stats(walls);
        rec.wall_s = best;
        rec.updates_per_sec = rec.terms_applied as f64 / best.max(1e-12);
        rec.wall_s_mean = mean;
        rec.wall_s_stddev = stddev;
        rec.cv = stddev / mean.max(1e-12);
        rec.updates_per_sec_mean = rec.terms_applied as f64 / mean.max(1e-12);
        eprintln!(
            "  {:<5} {:>3} {:>3} {:>2}t  {:>8.2} ms  {:>6.2} M updates/s  (cv {:.1}%{})",
            rec.engine,
            rec.precision,
            rec.layout,
            rec.threads,
            rec.wall_s_mean * 1e3,
            rec.updates_per_sec_mean / 1e6,
            rec.cv * 100.0,
            rec.anchor_ratio
                .map(|r| format!(", {r:.3}x anchor"))
                .unwrap_or_default()
        );
        rec
    };

    let mut results = Vec::new();
    for (ti, &threads) in sweep.iter().enumerate() {
        // The headline rows at every thread count (the f64 baseline and
        // the f32 fast path, both cache-friendly); the SoA ablation rows
        // only once, at the sweep's first thread count, and never in
        // quick mode.
        let mut cpu_rows = vec![
            (Precision::F64, DataLayout::CacheFriendlyAos),
            (Precision::F32, DataLayout::CacheFriendlyAos),
        ];
        if ti == 0 && !opts.quick {
            cpu_rows.push((Precision::F64, DataLayout::OriginalSoa));
            cpu_rows.push((Precision::F32, DataLayout::OriginalSoa));
        }
        for (precision, data_layout) in cpu_rows {
            let cfg = base_cfg(precision, data_layout, threads);
            let engine = CpuEngine::new(cfg.clone());
            let (walls, terms, anchor_ratio) = measure(&|| {
                let (_, report) = engine.run(&lean);
                (report.wall.as_secs_f64(), report.terms_applied)
            });
            results.push(finish_record(
                BenchRecord {
                    engine: "cpu".into(),
                    precision: precision.label().into(),
                    layout: layout_label(data_layout).into(),
                    threads: cfg.resolved_threads(),
                    term_block: cfg.resolved_term_block(),
                    batch: 0,
                    iters,
                    simd: cfg.resolved_simd(),
                    write_shard: cfg.resolved_write_shard(),
                    terms_applied: terms,
                    wall_s: 0.0,
                    updates_per_sec: 0.0,
                    wall_s_mean: 0.0,
                    wall_s_stddev: 0.0,
                    cv: 0.0,
                    updates_per_sec_mean: 0.0,
                    anchor_ratio,
                },
                &walls,
            ));
        }
    }

    if !opts.quick {
        let cfg = base_cfg(Precision::F64, DataLayout::CacheFriendlyAos, 1);
        let batch_size = 1024;
        let engine = BatchEngine::new(cfg.clone(), batch_size);
        let (walls, terms, anchor_ratio) = measure(&|| {
            let (_, report) = engine.run(&lean);
            (report.wall.as_secs_f64(), report.terms_applied)
        });
        results.push(finish_record(
            BenchRecord {
                engine: "batch".into(),
                precision: Precision::F64.label().into(),
                layout: layout_label(DataLayout::CacheFriendlyAos).into(),
                threads: 1,
                term_block: batch_size,
                batch: batch_size,
                iters,
                simd: false,
                write_shard: false,
                terms_applied: terms,
                wall_s: 0.0,
                updates_per_sec: 0.0,
                wall_s_mean: 0.0,
                wall_s_stddev: 0.0,
                cv: 0.0,
                updates_per_sec_mean: 0.0,
                anchor_ratio,
            },
            &walls,
        ));
    }

    Ok(BenchReport {
        preset: if opts.quick {
            "quick".into()
        } else {
            opts.preset.clone()
        },
        nodes: lean.node_count(),
        paths: lean.path_count(),
        steps: lean.total_steps(),
        quick: opts.quick,
        repeat,
        host_cores,
        ab: opts.ab,
        baseline_updates_per_sec: opts.baseline_updates_per_sec,
        results,
    })
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".into()
    }
}

/// Render a report as the committed `BENCH_*.json` document.
pub fn to_json(report: &BenchReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{BENCH_SCHEMA}\",\n"));
    out.push_str(&format!("  \"preset\": \"{}\",\n", report.preset));
    out.push_str(&format!(
        "  \"graph\": {{\"nodes\": {}, \"paths\": {}, \"steps\": {}}},\n",
        report.nodes, report.paths, report.steps
    ));
    out.push_str(&format!("  \"quick\": {},\n", report.quick));
    out.push_str(&format!("  \"repeat\": {},\n", report.repeat));
    out.push_str(&format!(
        "  \"host\": {{\"cores\": {}}},\n",
        report.host_cores
    ));
    out.push_str(&format!("  \"ab\": {},\n", report.ab));
    match report.baseline_updates_per_sec {
        Some(b) => out.push_str(&format!(
            "  \"baseline_updates_per_sec\": {},\n",
            json_f64(b)
        )),
        None => out.push_str("  \"baseline_updates_per_sec\": null,\n"),
    }
    out.push_str("  \"results\": [\n");
    for (i, r) in report.results.iter().enumerate() {
        let speedup = report
            .baseline_updates_per_sec
            .map(|b| json_f64(r.updates_per_sec / b))
            .unwrap_or_else(|| "null".into());
        out.push_str(&format!(
            "    {{\"engine\": \"{}\", \"precision\": \"{}\", \"layout\": \"{}\", \
             \"threads\": {}, \"term_block\": {}, \"batch\": {}, \"iters\": {}, \
             \"simd\": {}, \"write_shard\": {}, \
             \"terms_applied\": {}, \"wall_s\": {}, \"updates_per_sec\": {}, \
             \"wall_s_mean\": {}, \"wall_s_stddev\": {}, \"cv\": {}, \
             \"updates_per_sec_mean\": {}, \"anchor_ratio\": {}, \
             \"speedup_vs_baseline\": {}}}{}\n",
            r.engine,
            r.precision,
            r.layout,
            r.threads,
            r.term_block,
            r.batch,
            r.iters,
            r.simd,
            r.write_shard,
            r.terms_applied,
            json_f64(r.wall_s),
            json_f64(r.updates_per_sec),
            json_f64(r.wall_s_mean),
            json_f64(r.wall_s_stddev),
            json_f64(r.cv),
            json_f64(r.updates_per_sec_mean),
            r.anchor_ratio
                .map(json_f64)
                .unwrap_or_else(|| "null".into()),
            speedup,
            if i + 1 == report.results.len() {
                ""
            } else {
                ","
            }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Structural validation of a `BENCH_*.json` document — what the CI
/// smoke job runs against the artifact it just produced. Not a general
/// JSON parser: it checks the schema tag (`pgl-bench/2`, or `/1` for
/// older committed baselines), brace/bracket balance, that at least one
/// result record is present, and that every record carries the required
/// keys — including the `/2` statistics keys for `/2` documents — with
/// a positive `updates_per_sec`.
pub fn validate_json(text: &str) -> Result<(), String> {
    let v2 = text.contains(&format!("\"schema\": \"{BENCH_SCHEMA}\""));
    let v1 = text.contains(&format!("\"schema\": \"{BENCH_SCHEMA_V1}\""));
    if !v2 && !v1 {
        return Err(format!(
            "missing schema tag ({BENCH_SCHEMA:?} or {BENCH_SCHEMA_V1:?})"
        ));
    }
    let mut depth_brace = 0i64;
    let mut depth_bracket = 0i64;
    let mut in_string = false;
    let mut prev = '\0';
    for c in text.chars() {
        if in_string {
            if c == '"' && prev != '\\' {
                in_string = false;
            }
        } else {
            match c {
                '"' => in_string = true,
                '{' => depth_brace += 1,
                '}' => depth_brace -= 1,
                '[' => depth_bracket += 1,
                ']' => depth_bracket -= 1,
                _ => {}
            }
            if depth_brace < 0 || depth_bracket < 0 {
                return Err("unbalanced braces/brackets".into());
            }
        }
        prev = c;
    }
    if depth_brace != 0 || depth_bracket != 0 || in_string {
        return Err("unterminated document".into());
    }
    let records: Vec<&str> = text
        .split("{\"engine\":")
        .skip(1)
        .map(|s| s.split('}').next().unwrap_or(""))
        .collect();
    if records.is_empty() {
        return Err("no result records".into());
    }
    let mut required: Vec<&str> = vec![
        "\"precision\":",
        "\"layout\":",
        "\"threads\":",
        "\"term_block\":",
        "\"iters\":",
        "\"wall_s\":",
        "\"updates_per_sec\":",
    ];
    if v2 {
        required.extend([
            "\"wall_s_mean\":",
            "\"wall_s_stddev\":",
            "\"cv\":",
            "\"updates_per_sec_mean\":",
            "\"simd\":",
            "\"write_shard\":",
        ]);
    }
    for (i, rec) in records.iter().enumerate() {
        for key in &required {
            if !rec.contains(key) {
                return Err(format!("record {i} missing {key}"));
            }
        }
        let ups = rec
            .split("\"updates_per_sec\": ")
            .nth(1)
            .and_then(|s| s.split([',', '}']).next()?.trim().parse::<f64>().ok())
            .ok_or_else(|| format!("record {i}: unparseable updates_per_sec"))?;
        if ups.is_nan() || ups <= 0.0 {
            return Err(format!("record {i}: non-positive updates_per_sec {ups}"));
        }
    }
    Ok(())
}

/// Default relative regression tolerated by [`guard_against_baseline`]:
/// 2% — the budget the observability hooks (telemetry counters, trace
/// spans) are allowed to cost the hot path.
pub const GUARD_DEFAULT_TOLERANCE: f64 = 0.02;

/// A quoted string field from one flat JSON record chunk.
fn json_str_field(rec: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\": \"");
    let at = rec.find(&needle)? + needle.len();
    Some(rec[at..].chars().take_while(|c| *c != '"').collect())
}

/// A numeric field from one flat JSON record chunk.
fn json_num_field(rec: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\": ");
    let at = rec.find(&needle)? + needle.len();
    rec[at..].split([',', '}']).next()?.trim().parse().ok()
}

/// One baseline row as parsed from a committed `BENCH_*.json`.
struct BaselineRow {
    engine: String,
    precision: String,
    layout: String,
    threads: usize,
    /// Best-of updates/sec (present since `pgl-bench/1`).
    ups_best: f64,
    /// Mean updates/sec (`pgl-bench/2`).
    ups_mean: Option<f64>,
    /// Coefficient of variation (`pgl-bench/2`).
    cv: Option<f64>,
    /// Anchor-relative throughput (`pgl-bench/2`, `--ab` runs).
    anchor_ratio: Option<f64>,
}

/// Compare a fresh run against a committed `BENCH_*.json` baseline and
/// fail when any matching configuration (same engine, precision, memory
/// layout, and thread count) has regressed beyond tolerance.
/// Configurations present on only one side are reported but never fail
/// the guard — presets and sweeps may legitimately grow between PRs.
/// Returns a human-readable comparison table on success.
///
/// The comparison is statistics-aware where the documents allow:
///
/// * **means over best-of** — when both sides carry `/2` statistics the
///   guard compares `updates_per_sec_mean`, falling back to the
///   best-of numbers against `/1` baselines;
/// * **noise-widened tolerance** — the effective tolerance per row is
///   `tolerance + 2·√(cv_candidate² + cv_baseline²)`: two runs whose
///   difference is within two standard deviations of their combined
///   run-to-run noise cannot fail the gate;
/// * **anchor ratios** (`--ab` runs) — when both sides recorded an
///   `anchor_ratio`, the gate compares those ratios instead of raw
///   throughput, so a machine-wide performance-regime shift between
///   baseline time and candidate time cancels out.
pub fn guard_against_baseline(
    report: &BenchReport,
    baseline_json: &str,
    tolerance: f64,
) -> Result<String, String> {
    validate_json(baseline_json).map_err(|e| format!("baseline document invalid: {e}"))?;
    // Parsed with the same flat-record idiom as `validate_json`.
    let baseline: Vec<BaselineRow> = baseline_json
        .split("{\"engine\":")
        .skip(1)
        .filter_map(|chunk| {
            let rec = chunk.split('}').next()?;
            let engine: String = rec
                .trim_start()
                .strip_prefix('"')?
                .chars()
                .take_while(|c| *c != '"')
                .collect();
            Some(BaselineRow {
                engine,
                precision: json_str_field(rec, "precision")?,
                layout: json_str_field(rec, "layout")?,
                threads: json_num_field(rec, "threads")? as usize,
                ups_best: json_num_field(rec, "updates_per_sec")?,
                ups_mean: json_num_field(rec, "updates_per_sec_mean"),
                cv: json_num_field(rec, "cv"),
                anchor_ratio: json_num_field(rec, "anchor_ratio"),
            })
        })
        .collect();
    let mut lines = Vec::new();
    let mut regressions = Vec::new();
    for r in &report.results {
        let key = format!("{}/{}/{}/{}t", r.engine, r.precision, r.layout, r.threads);
        let Some(base) = baseline.iter().find(|b| {
            b.engine == r.engine
                && b.precision == r.precision
                && b.layout == r.layout
                && b.threads == r.threads
        }) else {
            lines.push(format!("  {key:<20} no baseline row (skipped)"));
            continue;
        };
        // Means when both sides have them, else the v1 best-of numbers.
        let (cand_val, base_val) = match base.ups_mean {
            Some(bm) if r.updates_per_sec_mean > 0.0 => (r.updates_per_sec_mean, bm),
            _ => (r.updates_per_sec, base.ups_best),
        };
        // Widen the gate by the combined run-to-run noise of both sides.
        let noise = (r.cv.powi(2) + base.cv.unwrap_or(0.0).powi(2)).sqrt();
        let tol_eff = tolerance + 2.0 * noise;
        let (ratio, mode) = match (r.anchor_ratio, base.anchor_ratio) {
            (Some(c), Some(b)) if b > 0.0 => (c / b, "anchor-paired"),
            _ => (cand_val / base_val.max(1e-12), "raw"),
        };
        lines.push(format!(
            "  {key:<20} {:>7.2}M vs {:>7.2}M updates/s  ({:+.1}% {mode}, tol {:.1}%)",
            cand_val / 1e6,
            base_val / 1e6,
            (ratio - 1.0) * 100.0,
            tol_eff * 100.0
        ));
        if ratio < 1.0 - tol_eff {
            regressions.push(format!(
                "{key}: {:.2}M vs baseline {:.2}M updates/s \
                 ({:.1}% below via {mode} comparison, tolerance {:.1}%)",
                cand_val / 1e6,
                base_val / 1e6,
                (1.0 - ratio) * 100.0,
                tol_eff * 100.0
            ));
        }
    }
    if !regressions.is_empty() {
        return Err(format!(
            "performance regression:\n{}",
            regressions.join("\n")
        ));
    }
    Ok(lines.join("\n"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_opts() -> BenchOptions {
        BenchOptions {
            quick: true,
            threads: 1,
            repeat: 1,
            ..BenchOptions::default()
        }
    }

    #[test]
    fn quick_bench_produces_valid_json() {
        let report = run_bench(&quick_opts()).unwrap();
        assert_eq!(report.results.len(), 2, "quick mode: two headline rows");
        assert!(report.results.iter().all(|r| r.updates_per_sec > 0.0));
        assert!(report.best().is_some());
        let json = to_json(&report);
        validate_json(&json).unwrap();
        assert!(json.contains("\"preset\": \"quick\""));
    }

    #[test]
    fn baseline_adds_speedups() {
        let mut opts = quick_opts();
        opts.baseline_updates_per_sec = Some(1.0);
        let report = run_bench(&opts).unwrap();
        let json = to_json(&report);
        validate_json(&json).unwrap();
        assert!(json.contains("\"baseline_updates_per_sec\": 1.000000"));
        assert!(!json.contains("\"speedup_vs_baseline\": null"));
    }

    #[test]
    fn unknown_preset_is_an_error() {
        let opts = BenchOptions {
            preset: "galactic".into(),
            ..BenchOptions::default()
        };
        assert!(run_bench(&opts).is_err());
        assert!(bench_spec("galactic", false).is_err());
        assert!(bench_spec("medium", false).is_ok());
    }

    #[test]
    fn guard_passes_against_its_own_run_and_catches_regressions() {
        let report = run_bench(&quick_opts()).unwrap();
        let json = to_json(&report);
        // A run guarded against its own document is exactly at ratio 1.0.
        let summary = guard_against_baseline(&report, &json, GUARD_DEFAULT_TOLERANCE).unwrap();
        assert!(summary.contains("cpu/f64/aos/1t"), "{summary}");
        assert!(!summary.contains("no baseline row"), "{summary}");
        // Inflate the baseline far past tolerance: the same run now reads
        // as a massive regression.
        let mut inflated = report.clone();
        for r in &mut inflated.results {
            r.updates_per_sec *= 10.0;
            r.updates_per_sec_mean *= 10.0;
        }
        let err = guard_against_baseline(&report, &to_json(&inflated), GUARD_DEFAULT_TOLERANCE)
            .unwrap_err();
        assert!(err.contains("regression"), "{err}");
        // Rows without a baseline counterpart are skipped, not failed.
        let mut renamed = report.clone();
        for r in &mut renamed.results {
            r.engine = "exotic".into();
        }
        let summary = guard_against_baseline(&renamed, &json, GUARD_DEFAULT_TOLERANCE).unwrap();
        assert!(summary.contains("no baseline row"), "{summary}");
        // A broken baseline document is an error, not a silent pass.
        assert!(guard_against_baseline(&report, "{}", GUARD_DEFAULT_TOLERANCE).is_err());
    }

    #[test]
    fn validator_rejects_broken_documents() {
        assert!(validate_json("{}").is_err(), "no schema");
        let good = to_json(&run_bench(&quick_opts()).unwrap());
        assert!(validate_json(&good).is_ok());
        let truncated = &good[..good.len() - 4];
        assert!(validate_json(truncated).is_err(), "unbalanced");
        let zeroed = good.replace("\"updates_per_sec\": ", "\"updates_per_sec\": -");
        assert!(validate_json(&zeroed).is_err(), "non-positive rate");
        let missing = good.replace("\"wall_s\":", "\"wall\":");
        assert!(validate_json(&missing).is_err(), "missing key");
        // A /2 document must carry the statistics keys.
        let no_stats = good.replace("\"wall_s_mean\":", "\"wall_mean\":");
        assert!(validate_json(&no_stats).is_err(), "missing /2 key");
    }

    /// A hand-written `pgl-bench/1` document, as committed by older PRs.
    fn v1_doc(ups: f64) -> String {
        format!(
            "{{\n  \"schema\": \"pgl-bench/1\",\n  \"preset\": \"quick\",\n  \
             \"results\": [\n    {{\"engine\": \"cpu\", \"precision\": \"f64\", \
             \"layout\": \"aos\", \"threads\": 1, \"term_block\": 256, \"batch\": 0, \
             \"iters\": 3, \"terms_applied\": 100, \"wall_s\": 0.01, \
             \"updates_per_sec\": {ups:.1}}}\n  ]\n}}\n"
        )
    }

    #[test]
    fn v1_baselines_are_still_accepted() {
        assert!(validate_json(&v1_doc(1e6)).is_ok());
        let report = run_bench(&quick_opts()).unwrap();
        // A tiny v1 baseline: the matching row passes via the raw
        // (best-of) fallback; the rest are skipped.
        let summary = guard_against_baseline(&report, &v1_doc(1.0), 0.02).unwrap();
        assert!(summary.contains("raw"), "{summary}");
        assert!(summary.contains("no baseline row"), "{summary}");
        // An absurdly fast v1 baseline still fails the gate.
        let err = guard_against_baseline(&report, &v1_doc(1e15), 0.02).unwrap_err();
        assert!(err.contains("regression"), "{err}");
    }

    #[test]
    fn threads_sweep_emits_rows_per_thread_count() {
        let mut opts = quick_opts();
        opts.threads_sweep = vec![1, 2];
        let report = run_bench(&opts).unwrap();
        let counts: Vec<usize> = report.results.iter().map(|r| r.threads).collect();
        assert_eq!(counts, vec![1, 1, 2, 2], "two headline rows per count");
        assert!(report.host_cores >= 1);
        // Multithreaded rows resolve the auto toggles.
        let row2 = report.results.iter().find(|r| r.threads == 2).unwrap();
        assert!(row2.simd, "simd auto-on for multithread rows");
        let json = to_json(&report);
        validate_json(&json).unwrap();
        assert!(json.contains("\"host\": {\"cores\":"));
    }

    #[test]
    fn record_statistics_are_consistent() {
        let mut opts = quick_opts();
        opts.repeat = 3;
        let report = run_bench(&opts).unwrap();
        for r in &report.results {
            assert!(r.wall_s <= r.wall_s_mean, "best-of cannot exceed the mean");
            assert!(r.wall_s_stddev >= 0.0);
            assert!((r.cv - r.wall_s_stddev / r.wall_s_mean).abs() < 1e-12);
            assert!(r.updates_per_sec_mean <= r.updates_per_sec * (1.0 + 1e-9));
            assert!(r.anchor_ratio.is_none(), "no anchor outside --ab");
        }
    }

    #[test]
    fn ab_mode_records_anchor_ratios_and_guard_pairs_them() {
        let mut opts = quick_opts();
        opts.ab = true;
        let report = run_bench(&opts).unwrap();
        assert!(report.ab);
        for r in &report.results {
            let ratio = r.anchor_ratio.expect("--ab records a ratio");
            assert!(ratio > 0.0);
        }
        let json = to_json(&report);
        validate_json(&json).unwrap();
        // Against its own document the paired ratio is exactly 1.0.
        let summary = guard_against_baseline(&report, &json, GUARD_DEFAULT_TOLERANCE).unwrap();
        assert!(summary.contains("anchor-paired"), "{summary}");
        // Uniform machine drift: both the row and the anchor slow down
        // 3x. Raw throughput craters, but the paired ratio is unchanged,
        // so the gate must still pass.
        let mut drifted = report.clone();
        for r in &mut drifted.results {
            r.updates_per_sec /= 3.0;
            r.updates_per_sec_mean /= 3.0;
            // anchor_ratio unchanged: the anchor drifted identically.
        }
        let summary = guard_against_baseline(&drifted, &json, GUARD_DEFAULT_TOLERANCE).unwrap();
        assert!(summary.contains("anchor-paired"), "{summary}");
        // A genuine relative regression (ratio drop) still fails even
        // though raw throughput looks fine.
        let mut slower = report.clone();
        for r in &mut slower.results {
            r.anchor_ratio = r.anchor_ratio.map(|x| x * 0.5);
        }
        let err = guard_against_baseline(&slower, &json, GUARD_DEFAULT_TOLERANCE).unwrap_err();
        assert!(err.contains("anchor-paired"), "{err}");
    }

    #[test]
    fn noisy_runs_widen_the_gate() {
        let report = run_bench(&quick_opts()).unwrap();
        // Baseline 8% faster than the candidate with zero recorded
        // noise: a clear regression at a 2% gate.
        let mut faster = report.clone();
        for r in &mut faster.results {
            r.updates_per_sec_mean *= 1.08;
            r.updates_per_sec *= 1.08;
            r.cv = 0.0;
        }
        let mut quiet = report.clone();
        for r in &mut quiet.results {
            r.cv = 0.0;
        }
        assert!(guard_against_baseline(&quiet, &to_json(&faster), 0.02).is_err());
        // The same gap with 5% run-to-run noise on the baseline side is
        // within 2σ of the combined noise: the gate must not fail.
        let mut noisy = faster.clone();
        for r in &mut noisy.results {
            r.cv = 0.05;
        }
        let summary = guard_against_baseline(&quiet, &to_json(&noisy), 0.02).unwrap();
        assert!(summary.contains("tol"), "{summary}");
    }
}
