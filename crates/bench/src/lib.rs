//! `pgl bench` — the reproducible SGD-throughput harness.
//!
//! The repository's north star is making the hot path measurably faster
//! every time it is touched; this module is the measuring stick. It lays
//! out a bundled workload preset across the hot-path axes (engine ×
//! precision × memory layout), records applied updates per second for
//! each combination, and emits a small self-describing JSON document
//! (`BENCH_<n>.json` is committed per perf PR, so the repo carries its
//! own performance trajectory).
//!
//! Everything is deterministic — generated graphs, seeds, iteration
//! counts — except wall time itself, so two runs on one machine are
//! directly comparable and `--baseline` (a prior run's updates/sec)
//! turns the report into a speedup statement.

use layout_core::{BatchEngine, CpuEngine, DataLayout, LayoutConfig, Precision};
use pangraph::lean::LeanGraph;
use workloads::{generate, PangenomeSpec};

/// JSON schema tag; bump when the document shape changes.
pub const BENCH_SCHEMA: &str = "pgl-bench/1";

/// What to measure.
#[derive(Debug, Clone)]
pub struct BenchOptions {
    /// Workload preset: `small`, `medium` or `large`.
    pub preset: String,
    /// Worker threads per run (0 ⇒ all cores). Keep fixed across runs
    /// you intend to compare.
    pub threads: usize,
    /// Schedule length per run.
    pub iters: u32,
    /// Timed repetitions per configuration; the best (highest
    /// updates/sec) is reported, standard practice for throughput.
    pub repeat: usize,
    /// CI smoke mode: a tiny graph, three iterations, and only the two
    /// headline configurations.
    pub quick: bool,
    /// A reference updates/sec (e.g. the previous release's headline
    /// number on this machine); each record then carries its speedup.
    pub baseline_updates_per_sec: Option<f64>,
}

impl Default for BenchOptions {
    fn default() -> Self {
        Self {
            preset: "medium".into(),
            threads: 1,
            iters: 15,
            repeat: 2,
            quick: false,
            baseline_updates_per_sec: None,
        }
    }
}

/// One measured configuration.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Engine (`cpu` or `batch`).
    pub engine: String,
    /// Coordinate precision label (`f64` / `f32`).
    pub precision: String,
    /// Memory layout label (`aos` / `soa`).
    pub layout: String,
    /// Worker threads used.
    pub threads: usize,
    /// Term-block size of the hot loop.
    pub term_block: usize,
    /// Mini-batch size (batch engine only; 0 otherwise).
    pub batch: usize,
    /// Iterations run.
    pub iters: u32,
    /// Terms actually applied.
    pub terms_applied: u64,
    /// Wall seconds of the best repetition.
    pub wall_s: f64,
    /// Applied updates per second (the headline metric).
    pub updates_per_sec: f64,
}

/// A full harness run.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Preset name.
    pub preset: String,
    /// Graph shape, so numbers are interpretable later.
    pub nodes: usize,
    /// Path count.
    pub paths: usize,
    /// Total path steps (updates per iteration = 10 × this).
    pub steps: usize,
    /// Quick (CI smoke) mode?
    pub quick: bool,
    /// Timed repetitions per configuration.
    pub repeat: usize,
    /// Reference updates/sec, when provided.
    pub baseline_updates_per_sec: Option<f64>,
    /// One record per measured configuration.
    pub results: Vec<BenchRecord>,
}

impl BenchReport {
    /// The fastest measured configuration.
    pub fn best(&self) -> Option<&BenchRecord> {
        self.results.iter().max_by(|a, b| {
            a.updates_per_sec
                .partial_cmp(&b.updates_per_sec)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
    }
}

/// The preset graph the harness measures on. `small`/`medium`/`large`
/// are fixed, seeded generator specs; `quick` substitutes a tiny graph
/// so CI smoke runs finish in seconds.
pub fn bench_spec(preset: &str, quick: bool) -> Result<PangenomeSpec, String> {
    // Validate the preset name even in quick mode, so a typoed
    // `--preset` fails loudly instead of silently benchmarking the
    // quick graph.
    let full = match preset {
        "small" => workloads::hla_drb1(),
        "medium" => workloads::mhc_like(0.05),
        "large" => workloads::mhc_like(0.25),
        other => return Err(format!("unknown preset {other:?} (small, medium, large)")),
    };
    if quick {
        return Ok(PangenomeSpec::basic("bench-quick", 150, 4, 0xBE7C));
    }
    Ok(full)
}

fn layout_label(l: DataLayout) -> &'static str {
    match l {
        DataLayout::CacheFriendlyAos => "aos",
        DataLayout::OriginalSoa => "soa",
    }
}

/// Run the harness: generate the preset, sweep the hot-path axes, and
/// return the measured records. Progress lines go to stderr.
pub fn run_bench(opts: &BenchOptions) -> Result<BenchReport, String> {
    let spec = bench_spec(&opts.preset, opts.quick)?;
    eprintln!("pgl bench: generating {} ...", spec.name);
    let lean = LeanGraph::from_graph(&generate(&spec));
    let iters = if opts.quick { 3 } else { opts.iters };
    let repeat = opts.repeat.max(1);

    let base_cfg = |precision, data_layout| LayoutConfig {
        iter_max: iters,
        threads: opts.threads,
        precision,
        data_layout,
        seed: 0xBE9C_5EED,
        ..LayoutConfig::default()
    };

    // The sweep: the two headline rows first (the f64 baseline and the
    // f32 fast path, both on the cache-friendly layout), then the SoA
    // ablation rows and the batch engine — skipped in quick mode.
    let mut cpu_rows = vec![
        (Precision::F64, DataLayout::CacheFriendlyAos),
        (Precision::F32, DataLayout::CacheFriendlyAos),
    ];
    if !opts.quick {
        cpu_rows.push((Precision::F64, DataLayout::OriginalSoa));
        cpu_rows.push((Precision::F32, DataLayout::OriginalSoa));
    }

    let mut results = Vec::new();
    for (precision, data_layout) in cpu_rows {
        let cfg = base_cfg(precision, data_layout);
        let engine = CpuEngine::new(cfg.clone());
        let mut best: Option<BenchRecord> = None;
        for _ in 0..repeat {
            let (_, report) = engine.run(&lean);
            let rec = BenchRecord {
                engine: "cpu".into(),
                precision: precision.label().into(),
                layout: layout_label(data_layout).into(),
                threads: report.threads,
                term_block: cfg.resolved_term_block(),
                batch: 0,
                iters,
                terms_applied: report.terms_applied,
                wall_s: report.wall.as_secs_f64(),
                updates_per_sec: report.updates_per_sec(),
            };
            if best
                .as_ref()
                .is_none_or(|b| rec.updates_per_sec > b.updates_per_sec)
            {
                best = Some(rec);
            }
        }
        let rec = best.expect("repeat >= 1");
        eprintln!(
            "  cpu   {:>3} {:>3}  {:>8.2} ms  {:>6.2} M updates/s",
            rec.precision,
            rec.layout,
            rec.wall_s * 1e3,
            rec.updates_per_sec / 1e6
        );
        results.push(rec);
    }

    if !opts.quick {
        let cfg = base_cfg(Precision::F64, DataLayout::CacheFriendlyAos);
        let batch_size = 1024;
        let engine = BatchEngine::new(cfg.clone(), batch_size);
        let mut best: Option<BenchRecord> = None;
        for _ in 0..repeat {
            let (_, report) = engine.run(&lean);
            let wall_s = report.wall.as_secs_f64();
            let rec = BenchRecord {
                engine: "batch".into(),
                precision: Precision::F64.label().into(),
                layout: layout_label(DataLayout::CacheFriendlyAos).into(),
                threads: 1,
                term_block: batch_size,
                batch: batch_size,
                iters,
                terms_applied: report.terms_applied,
                wall_s,
                updates_per_sec: report.terms_applied as f64 / wall_s.max(1e-12),
            };
            if best
                .as_ref()
                .is_none_or(|b| rec.updates_per_sec > b.updates_per_sec)
            {
                best = Some(rec);
            }
        }
        let rec = best.expect("repeat >= 1");
        eprintln!(
            "  batch {:>3} {:>3}  {:>8.2} ms  {:>6.2} M updates/s",
            rec.precision,
            rec.layout,
            rec.wall_s * 1e3,
            rec.updates_per_sec / 1e6
        );
        results.push(rec);
    }

    Ok(BenchReport {
        preset: if opts.quick {
            "quick".into()
        } else {
            opts.preset.clone()
        },
        nodes: lean.node_count(),
        paths: lean.path_count(),
        steps: lean.total_steps(),
        quick: opts.quick,
        repeat,
        baseline_updates_per_sec: opts.baseline_updates_per_sec,
        results,
    })
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".into()
    }
}

/// Render a report as the committed `BENCH_*.json` document.
pub fn to_json(report: &BenchReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{BENCH_SCHEMA}\",\n"));
    out.push_str(&format!("  \"preset\": \"{}\",\n", report.preset));
    out.push_str(&format!(
        "  \"graph\": {{\"nodes\": {}, \"paths\": {}, \"steps\": {}}},\n",
        report.nodes, report.paths, report.steps
    ));
    out.push_str(&format!("  \"quick\": {},\n", report.quick));
    out.push_str(&format!("  \"repeat\": {},\n", report.repeat));
    match report.baseline_updates_per_sec {
        Some(b) => out.push_str(&format!(
            "  \"baseline_updates_per_sec\": {},\n",
            json_f64(b)
        )),
        None => out.push_str("  \"baseline_updates_per_sec\": null,\n"),
    }
    out.push_str("  \"results\": [\n");
    for (i, r) in report.results.iter().enumerate() {
        let speedup = report
            .baseline_updates_per_sec
            .map(|b| json_f64(r.updates_per_sec / b))
            .unwrap_or_else(|| "null".into());
        out.push_str(&format!(
            "    {{\"engine\": \"{}\", \"precision\": \"{}\", \"layout\": \"{}\", \
             \"threads\": {}, \"term_block\": {}, \"batch\": {}, \"iters\": {}, \
             \"terms_applied\": {}, \"wall_s\": {}, \"updates_per_sec\": {}, \
             \"speedup_vs_baseline\": {}}}{}\n",
            r.engine,
            r.precision,
            r.layout,
            r.threads,
            r.term_block,
            r.batch,
            r.iters,
            r.terms_applied,
            json_f64(r.wall_s),
            json_f64(r.updates_per_sec),
            speedup,
            if i + 1 == report.results.len() {
                ""
            } else {
                ","
            }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Structural validation of a `BENCH_*.json` document — what the CI
/// smoke job runs against the artifact it just produced. Not a general
/// JSON parser: it checks the schema tag, brace/bracket balance, that
/// at least one result record is present, and that every record carries
/// the required keys with a positive `updates_per_sec`.
pub fn validate_json(text: &str) -> Result<(), String> {
    if !text.contains(&format!("\"schema\": \"{BENCH_SCHEMA}\"")) {
        return Err(format!("missing schema tag {BENCH_SCHEMA:?}"));
    }
    let mut depth_brace = 0i64;
    let mut depth_bracket = 0i64;
    let mut in_string = false;
    let mut prev = '\0';
    for c in text.chars() {
        if in_string {
            if c == '"' && prev != '\\' {
                in_string = false;
            }
        } else {
            match c {
                '"' => in_string = true,
                '{' => depth_brace += 1,
                '}' => depth_brace -= 1,
                '[' => depth_bracket += 1,
                ']' => depth_bracket -= 1,
                _ => {}
            }
            if depth_brace < 0 || depth_bracket < 0 {
                return Err("unbalanced braces/brackets".into());
            }
        }
        prev = c;
    }
    if depth_brace != 0 || depth_bracket != 0 || in_string {
        return Err("unterminated document".into());
    }
    let records: Vec<&str> = text
        .split("{\"engine\":")
        .skip(1)
        .map(|s| s.split('}').next().unwrap_or(""))
        .collect();
    if records.is_empty() {
        return Err("no result records".into());
    }
    for (i, rec) in records.iter().enumerate() {
        for key in [
            "\"precision\":",
            "\"layout\":",
            "\"threads\":",
            "\"term_block\":",
            "\"iters\":",
            "\"wall_s\":",
            "\"updates_per_sec\":",
        ] {
            if !rec.contains(key) {
                return Err(format!("record {i} missing {key}"));
            }
        }
        let ups = rec
            .split("\"updates_per_sec\": ")
            .nth(1)
            .and_then(|s| s.split([',', '}']).next()?.trim().parse::<f64>().ok())
            .ok_or_else(|| format!("record {i}: unparseable updates_per_sec"))?;
        if ups.is_nan() || ups <= 0.0 {
            return Err(format!("record {i}: non-positive updates_per_sec {ups}"));
        }
    }
    Ok(())
}

/// Default relative regression tolerated by [`guard_against_baseline`]:
/// 2% — the budget the observability hooks (telemetry counters, trace
/// spans) are allowed to cost the hot path.
pub const GUARD_DEFAULT_TOLERANCE: f64 = 0.02;

/// A quoted string field from one flat JSON record chunk.
fn json_str_field(rec: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\": \"");
    let at = rec.find(&needle)? + needle.len();
    Some(rec[at..].chars().take_while(|c| *c != '"').collect())
}

/// A numeric field from one flat JSON record chunk.
fn json_num_field(rec: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\": ");
    let at = rec.find(&needle)? + needle.len();
    rec[at..].split([',', '}']).next()?.trim().parse().ok()
}

/// Compare a fresh run against a committed `BENCH_*.json` baseline and
/// fail when any matching configuration (same engine, precision, memory
/// layout, and thread count) has regressed by more than `tolerance`
/// (relative; e.g. `0.02` = 2%). Configurations present on only one
/// side are reported but never fail the guard — presets and sweeps may
/// legitimately grow between PRs. Returns a human-readable comparison
/// table on success.
pub fn guard_against_baseline(
    report: &BenchReport,
    baseline_json: &str,
    tolerance: f64,
) -> Result<String, String> {
    validate_json(baseline_json).map_err(|e| format!("baseline document invalid: {e}"))?;
    // (engine, precision, layout, threads) -> baseline updates/sec,
    // parsed with the same flat-record idiom as `validate_json`.
    let baseline: Vec<(String, String, String, usize, f64)> = baseline_json
        .split("{\"engine\":")
        .skip(1)
        .filter_map(|chunk| {
            let rec = chunk.split('}').next()?;
            let engine: String = rec
                .trim_start()
                .strip_prefix('"')?
                .chars()
                .take_while(|c| *c != '"')
                .collect();
            Some((
                engine,
                json_str_field(rec, "precision")?,
                json_str_field(rec, "layout")?,
                json_num_field(rec, "threads")? as usize,
                json_num_field(rec, "updates_per_sec")?,
            ))
        })
        .collect();
    let mut lines = Vec::new();
    let mut regressions = Vec::new();
    for r in &report.results {
        let key = format!("{}/{}/{}/{}t", r.engine, r.precision, r.layout, r.threads);
        let Some((.., base_ups)) = baseline.iter().find(|(e, p, l, t, _)| {
            *e == r.engine && *p == r.precision && *l == r.layout && *t == r.threads
        }) else {
            lines.push(format!("  {key:<20} no baseline row (skipped)"));
            continue;
        };
        let ratio = r.updates_per_sec / base_ups.max(1e-12);
        lines.push(format!(
            "  {key:<20} {:>7.2}M vs {:>7.2}M updates/s  ({:+.1}%)",
            r.updates_per_sec / 1e6,
            base_ups / 1e6,
            (ratio - 1.0) * 100.0
        ));
        if ratio < 1.0 - tolerance {
            regressions.push(format!(
                "{key}: {:.2}M vs baseline {:.2}M updates/s ({:.1}% below, tolerance {:.1}%)",
                r.updates_per_sec / 1e6,
                base_ups / 1e6,
                (1.0 - ratio) * 100.0,
                tolerance * 100.0
            ));
        }
    }
    if !regressions.is_empty() {
        return Err(format!(
            "performance regression:\n{}",
            regressions.join("\n")
        ));
    }
    Ok(lines.join("\n"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_opts() -> BenchOptions {
        BenchOptions {
            quick: true,
            threads: 1,
            repeat: 1,
            ..BenchOptions::default()
        }
    }

    #[test]
    fn quick_bench_produces_valid_json() {
        let report = run_bench(&quick_opts()).unwrap();
        assert_eq!(report.results.len(), 2, "quick mode: two headline rows");
        assert!(report.results.iter().all(|r| r.updates_per_sec > 0.0));
        assert!(report.best().is_some());
        let json = to_json(&report);
        validate_json(&json).unwrap();
        assert!(json.contains("\"preset\": \"quick\""));
    }

    #[test]
    fn baseline_adds_speedups() {
        let mut opts = quick_opts();
        opts.baseline_updates_per_sec = Some(1.0);
        let report = run_bench(&opts).unwrap();
        let json = to_json(&report);
        validate_json(&json).unwrap();
        assert!(json.contains("\"baseline_updates_per_sec\": 1.000000"));
        assert!(!json.contains("\"speedup_vs_baseline\": null"));
    }

    #[test]
    fn unknown_preset_is_an_error() {
        let opts = BenchOptions {
            preset: "galactic".into(),
            ..BenchOptions::default()
        };
        assert!(run_bench(&opts).is_err());
        assert!(bench_spec("galactic", false).is_err());
        assert!(bench_spec("medium", false).is_ok());
    }

    #[test]
    fn guard_passes_against_its_own_run_and_catches_regressions() {
        let report = run_bench(&quick_opts()).unwrap();
        let json = to_json(&report);
        // A run guarded against its own document is exactly at ratio 1.0.
        let summary = guard_against_baseline(&report, &json, GUARD_DEFAULT_TOLERANCE).unwrap();
        assert!(summary.contains("cpu/f64/aos/1t"), "{summary}");
        assert!(!summary.contains("no baseline row"), "{summary}");
        // Inflate the baseline far past tolerance: the same run now reads
        // as a massive regression.
        let mut inflated = report.clone();
        for r in &mut inflated.results {
            r.updates_per_sec *= 10.0;
        }
        let err = guard_against_baseline(&report, &to_json(&inflated), GUARD_DEFAULT_TOLERANCE)
            .unwrap_err();
        assert!(err.contains("regression"), "{err}");
        // Rows without a baseline counterpart are skipped, not failed.
        let mut renamed = report.clone();
        for r in &mut renamed.results {
            r.engine = "exotic".into();
        }
        let summary = guard_against_baseline(&renamed, &json, GUARD_DEFAULT_TOLERANCE).unwrap();
        assert!(summary.contains("no baseline row"), "{summary}");
        // A broken baseline document is an error, not a silent pass.
        assert!(guard_against_baseline(&report, "{}", GUARD_DEFAULT_TOLERANCE).is_err());
    }

    #[test]
    fn validator_rejects_broken_documents() {
        assert!(validate_json("{}").is_err(), "no schema");
        let good = to_json(&run_bench(&quick_opts()).unwrap());
        assert!(validate_json(&good).is_ok());
        let truncated = &good[..good.len() - 4];
        assert!(validate_json(truncated).is_err(), "unbalanced");
        let zeroed = good.replace("\"updates_per_sec\": ", "\"updates_per_sec\": -");
        assert!(validate_json(&zeroed).is_err(), "non-positive rate");
        let missing = good.replace("\"wall_s\":", "\"wall\":");
        assert!(validate_json(&missing).is_err(), "missing key");
    }
}
