//! **Sampled path stress** (paper Eq. 2) — the scalable quality metric.
//!
//! Estimates path stress by drawing `samples_per_node × |p|` random
//! endpoint pairs per path (default 100, the paper's choice: "each node is
//! expected to be sampled 100 times within its path") and averaging their
//! stress terms. By the central limit theorem the estimator is
//! asymptotically normal, so the paper attaches a 95% confidence interval
//! `μ ± 1.96 σ/√n`, which we reproduce.
//!
//! Complexity is linear in total path length — minutes instead of
//! GPU-hours for a chromosome (paper Table V) — and the estimator
//! correlates with exact path stress at r = 0.995 (Fig. 13; reproduced in
//! the `fig13` experiment).

use crate::stress::term_stress;
use pangraph::layout2d::Layout2D;
use pangraph::lean::LeanGraph;
use pgrng::{Rng64, Xoshiro256Plus};
use rayon::prelude::*;

/// Configuration for the sampled estimator.
#[derive(Debug, Clone, Copy)]
pub struct SamplingConfig {
    /// Expected samples per node within its path (paper default: 100).
    pub samples_per_node: u32,
    /// PRNG seed; the paper verifies the estimate is seed-stable.
    pub seed: u64,
}

impl Default for SamplingConfig {
    fn default() -> Self {
        Self {
            samples_per_node: 100,
            seed: 0x5EED_5EED,
        }
    }
}

/// Result of a sampled path-stress evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampledStress {
    /// The estimate μ.
    pub mean: f64,
    /// Lower edge of the 95% confidence interval.
    pub ci_lo: f64,
    /// Upper edge of the 95% confidence interval.
    pub ci_hi: f64,
    /// Sample standard deviation σ.
    pub std_dev: f64,
    /// Number of counted samples.
    pub n: u64,
}

impl SampledStress {
    /// Width of the confidence interval.
    pub fn ci_width(&self) -> f64 {
        self.ci_hi - self.ci_lo
    }

    /// True when `x` falls inside the confidence interval.
    pub fn ci_contains(&self, x: f64) -> bool {
        (self.ci_lo..=self.ci_hi).contains(&x)
    }
}

/// Compute sampled path stress over all paths, Rayon-parallel with one
/// deterministic PRNG stream per path.
pub fn sampled_path_stress(
    layout: &Layout2D,
    lean: &LeanGraph,
    cfg: SamplingConfig,
) -> SampledStress {
    let parts: Vec<(f64, f64, u64)> = (0..lean.path_count() as u32)
        .into_par_iter()
        .map(|p| sample_one_path(layout, lean, p, cfg))
        .collect();
    let (sum, sum_sq, n) = parts
        .into_iter()
        .fold((0.0, 0.0, 0u64), |(s, q, n), (s2, q2, n2)| {
            (s + s2, q + q2, n + n2)
        });
    finalize(sum, sum_sq, n)
}

/// Draw `samples_per_node × |p|` pairs within one path; returns
/// `(Σ stress, Σ stress², counted samples)`.
fn sample_one_path(
    layout: &Layout2D,
    lean: &LeanGraph,
    p: u32,
    cfg: SamplingConfig,
) -> (f64, f64, u64) {
    let steps = lean.steps_in(p);
    if steps < 2 {
        return (0.0, 0.0, 0);
    }
    // Decorrelate paths deterministically: one seed per (config seed, path).
    let mut rng =
        Xoshiro256Plus::seed_from_u64(cfg.seed ^ (p as u64).wrapping_mul(0x9E3779B97F4A7C15));
    let draws = cfg.samples_per_node as u64 * steps as u64;
    let base = lean.flat_step(p, 0);
    let mut sum = 0.0;
    let mut sum_sq = 0.0;
    let mut n = 0u64;
    for _ in 0..draws {
        let i = rng.gen_below(steps as u64) as usize;
        let mut j = rng.gen_below(steps as u64 - 1) as usize;
        if j >= i {
            j += 1; // uniform over j ≠ i
        }
        let (s_i, s_j) = (base + i, base + j);
        let end_i = rng.flip();
        let end_j = rng.flip();
        let d_ref = lean.d_ref_endpoints(s_i, end_i, s_j, end_j);
        let n_i = lean.node_of_flat(s_i);
        let n_j = lean.node_of_flat(s_j);
        if let Some(s) = term_stress(layout.get(n_i, end_i), layout.get(n_j, end_j), d_ref) {
            sum += s;
            sum_sq += s * s;
            n += 1;
        }
    }
    (sum, sum_sq, n)
}

fn finalize(sum: f64, sum_sq: f64, n: u64) -> SampledStress {
    if n == 0 {
        return SampledStress {
            mean: 0.0,
            ci_lo: 0.0,
            ci_hi: 0.0,
            std_dev: 0.0,
            n: 0,
        };
    }
    let nf = n as f64;
    let mean = sum / nf;
    // Sample variance via the shifted-moment identity; clamp tiny negative
    // round-off.
    let var = ((sum_sq / nf) - mean * mean).max(0.0);
    let std_dev = var.sqrt();
    let half = 1.96 * std_dev / nf.sqrt();
    SampledStress {
        mean,
        ci_lo: mean - half,
        ci_hi: mean + half,
        std_dev,
        n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path_stress::path_stress;
    use pangraph::model::{fig1_graph, GraphBuilder, Handle};

    fn line_layout(lean: &LeanGraph, scale: f64) -> Layout2D {
        let mut l = Layout2D::zeros(lean.node_count());
        for p in 0..lean.path_count() as u32 {
            for i in 0..lean.steps_in(p) {
                let s = lean.flat_step(p, i);
                let n = lean.node_of_flat(s);
                l.set(
                    n,
                    false,
                    lean.endpoint_pos_of_flat(s, false) as f64 * scale,
                    0.0,
                );
                l.set(
                    n,
                    true,
                    lean.endpoint_pos_of_flat(s, true) as f64 * scale,
                    0.0,
                );
            }
        }
        l
    }

    fn chain_graph(n: usize) -> LeanGraph {
        let mut b = GraphBuilder::new();
        let ids: Vec<u32> = (0..n).map(|i| b.add_node_len(1 + (i as u32 % 7))).collect();
        b.add_path("p", ids.iter().map(|&i| Handle::forward(i)).collect());
        b.ensure_path_edges();
        LeanGraph::from_graph(&b.build())
    }

    #[test]
    fn zero_on_exact_embedding() {
        let lean = chain_graph(50);
        let layout = line_layout(&lean, 1.0);
        let s = sampled_path_stress(&layout, &lean, SamplingConfig::default());
        assert!(s.mean.abs() < 1e-15);
        assert!(s.n > 0);
    }

    #[test]
    fn matches_analytic_value_on_scaled_embedding() {
        // Every term is exactly (2−1)² = 1, so the estimator is exact and
        // its variance is 0.
        let lean = chain_graph(50);
        let layout = line_layout(&lean, 2.0);
        let s = sampled_path_stress(&layout, &lean, SamplingConfig::default());
        assert!((s.mean - 1.0).abs() < 1e-12, "mean = {}", s.mean);
        assert!(s.std_dev < 1e-12);
        assert!(s.ci_width() < 1e-12);
    }

    #[test]
    fn estimates_exact_path_stress_closely() {
        // A mildly perturbed layout: sampled estimate must land near the
        // exact metric (this is the Fig. 13 property in miniature).
        let lean = chain_graph(60);
        let mut layout = line_layout(&lean, 1.0);
        let mut rng = Xoshiro256Plus::seed_from_u64(9);
        for node in 0..lean.node_count() as u32 {
            for end in [false, true] {
                let (x, y) = layout.get(node, end);
                layout.set(
                    node,
                    end,
                    x + rng.next_f64() * 4.0 - 2.0,
                    y + rng.next_f64() * 4.0 - 2.0,
                );
            }
        }
        let exact = path_stress(&layout, &lean).stress;
        let sampled = sampled_path_stress(&layout, &lean, SamplingConfig::default());
        let rel = (sampled.mean - exact).abs() / exact.max(1e-12);
        assert!(rel < 0.25, "sampled {} vs exact {exact}", sampled.mean);
    }

    #[test]
    fn sample_count_follows_config() {
        let lean = chain_graph(30);
        let layout = line_layout(&lean, 1.0);
        let cfg = SamplingConfig {
            samples_per_node: 10,
            seed: 1,
        };
        let s = sampled_path_stress(&layout, &lean, cfg);
        // 10 × 30 draws; a handful may be skipped for d_ref = 0 (adjacent
        // abutting endpoints).
        assert!(s.n <= 300);
        assert!(s.n > 250, "n = {}", s.n);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g = fig1_graph();
        let lean = LeanGraph::from_graph(&g);
        let layout = line_layout(&lean, 1.5);
        let cfg = SamplingConfig {
            samples_per_node: 50,
            seed: 77,
        };
        let a = sampled_path_stress(&layout, &lean, cfg);
        let b = sampled_path_stress(&layout, &lean, cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn seed_stability_of_the_estimate() {
        // The paper verifies sampled path stress is consistent across
        // random seeds; different seeds must agree within CI widths.
        let lean = chain_graph(80);
        let layout = line_layout(&lean, 1.4); // constant stress 0.16 exactly
        let a = sampled_path_stress(
            &layout,
            &lean,
            SamplingConfig {
                samples_per_node: 100,
                seed: 1,
            },
        );
        let b = sampled_path_stress(
            &layout,
            &lean,
            SamplingConfig {
                samples_per_node: 100,
                seed: 2,
            },
        );
        assert!((a.mean - b.mean).abs() < 1e-9);
    }

    #[test]
    fn tracks_exact_value_for_perturbed_layout() {
        // The estimator samples endpoint-combination *terms* while the
        // exact metric averages the four combinations per node pair, so on
        // heavy-tailed term distributions the two targets differ by a
        // bounded factor; the paper's Fig. 13 claim is *tracking* (r=0.995
        // across layouts), which we assert here as same order of magnitude
        // plus a non-degenerate CI.
        let lean = chain_graph(100);
        let mut layout = line_layout(&lean, 1.0);
        let mut rng = Xoshiro256Plus::seed_from_u64(123);
        for node in 0..lean.node_count() as u32 {
            let (x, y) = layout.get(node, false);
            layout.set(
                node,
                false,
                x + rng.next_f64() - 0.5,
                y + rng.next_f64() - 0.5,
            );
        }
        let exact = path_stress(&layout, &lean).stress;
        let s = sampled_path_stress(
            &layout,
            &lean,
            SamplingConfig {
                samples_per_node: 200,
                seed: 3,
            },
        );
        let ratio = s.mean / exact;
        assert!(
            (0.3..3.0).contains(&ratio),
            "sampled {} vs exact {exact} (ratio {ratio})",
            s.mean
        );
        assert!(s.ci_lo < s.mean && s.mean < s.ci_hi);
        assert!(s.ci_width() > 0.0);
    }

    #[test]
    fn single_step_paths_contribute_nothing() {
        let mut b = GraphBuilder::new();
        let a = b.add_node_len(5);
        b.add_path("lonely", vec![Handle::forward(a)]);
        let lean = LeanGraph::from_graph(&b.build());
        let layout = Layout2D::zeros(1);
        let s = sampled_path_stress(&layout, &lean, SamplingConfig::default());
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
    }
}
