//! Exact **path stress** (paper Eq. 1).
//!
//! ```text
//!                Σ_{p∈P} Σ_{n_i,n_j ∈ p} stress(n_i, n_j)
//! path stress = ──────────────────────────────────────────
//!                        N_total_node_pairs
//! ```
//!
//! The sum runs over all unordered step pairs of every path — O(Σ|p|²)
//! terms, which is why the paper reports 194 GPU-hours for Chr.1 (Table V)
//! and introduces the sampled estimator. We parallelize the reduction with
//! Rayon over per-path pair blocks (the CPU analogue of the paper's GPU
//! reduction tree).

use crate::stress::node_pair_stress;
use pangraph::layout2d::Layout2D;
use pangraph::lean::LeanGraph;
use rayon::prelude::*;

/// Result of an exact path-stress evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathStressReport {
    /// The metric value (mean stress per counted node pair).
    pub stress: f64,
    /// Number of node pairs with at least one defined term.
    pub pairs: u64,
    /// Number of pairs skipped because every endpoint combination had
    /// `d_ref = 0` (possible only for duplicate zero-length placements).
    pub skipped: u64,
}

/// Exact path stress, Rayon-parallel over paths and leading steps.
pub fn path_stress(layout: &Layout2D, lean: &LeanGraph) -> PathStressReport {
    let per_path: Vec<(f64, u64, u64)> = (0..lean.path_count() as u32)
        .into_par_iter()
        .flat_map_iter(|p| {
            let n = lean.steps_in(p);
            let base = lean.flat_step(p, 0);
            (0..n).map(move |i| (p, base, n, i))
        })
        .map(|(_p, base, n, i)| {
            let mut sum = 0.0;
            let mut pairs = 0u64;
            let mut skipped = 0u64;
            for j in (i + 1)..n {
                match node_pair_stress(layout, lean, base + i, base + j) {
                    Some(s) => {
                        sum += s;
                        pairs += 1;
                    }
                    None => skipped += 1,
                }
            }
            (sum, pairs, skipped)
        })
        .collect();
    reduce(per_path)
}

/// Single-threaded reference implementation (used by tests to validate the
/// parallel reduction and by the metric-runtime benchmark's baseline).
pub fn path_stress_serial(layout: &Layout2D, lean: &LeanGraph) -> PathStressReport {
    let mut acc = Vec::new();
    for p in 0..lean.path_count() as u32 {
        let n = lean.steps_in(p);
        let base = lean.flat_step(p, 0);
        for i in 0..n {
            let mut sum = 0.0;
            let mut pairs = 0u64;
            let mut skipped = 0u64;
            for j in (i + 1)..n {
                match node_pair_stress(layout, lean, base + i, base + j) {
                    Some(s) => {
                        sum += s;
                        pairs += 1;
                    }
                    None => skipped += 1,
                }
            }
            acc.push((sum, pairs, skipped));
        }
    }
    reduce(acc)
}

fn reduce(parts: Vec<(f64, u64, u64)>) -> PathStressReport {
    let (sum, pairs, skipped) = parts
        .into_iter()
        .fold((0.0, 0u64, 0u64), |(s, p, k), (s2, p2, k2)| {
            (s + s2, p + p2, k + k2)
        });
    PathStressReport {
        stress: if pairs > 0 { sum / pairs as f64 } else { 0.0 },
        pairs,
        skipped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pangraph::model::fig1_graph;

    fn line_layout(lean: &LeanGraph, scale: f64) -> Layout2D {
        let mut l = Layout2D::zeros(lean.node_count());
        for p in 0..lean.path_count() as u32 {
            for i in 0..lean.steps_in(p) {
                let s = lean.flat_step(p, i);
                let n = lean.node_of_flat(s);
                l.set(
                    n,
                    false,
                    lean.endpoint_pos_of_flat(s, false) as f64 * scale,
                    0.0,
                );
                l.set(
                    n,
                    true,
                    lean.endpoint_pos_of_flat(s, true) as f64 * scale,
                    0.0,
                );
            }
        }
        l
    }

    /// Single-path graph: exact line embedding has stress exactly 0, and a
    /// uniformly scaled one has stress exactly (s−1)².
    fn single_path_graph() -> LeanGraph {
        use pangraph::model::{GraphBuilder, Handle};
        let mut b = GraphBuilder::new();
        let ids: Vec<u32> = (0..20).map(|i| b.add_node_len(1 + (i % 5))).collect();
        b.add_path("p", ids.iter().map(|&i| Handle::forward(i)).collect());
        b.ensure_path_edges();
        LeanGraph::from_graph(&b.build())
    }

    #[test]
    fn zero_on_exact_embedding() {
        let lean = single_path_graph();
        let layout = line_layout(&lean, 1.0);
        let r = path_stress(&layout, &lean);
        assert!(r.stress.abs() < 1e-15, "stress = {}", r.stress);
        assert!(r.pairs > 0);
    }

    #[test]
    fn scaled_embedding_has_analytic_stress() {
        let lean = single_path_graph();
        let layout = line_layout(&lean, 2.5);
        let r = path_stress(&layout, &lean);
        assert!(
            (r.stress - 2.25).abs() < 1e-9,
            "expected (2.5-1)^2 = 2.25, got {}",
            r.stress
        );
    }

    #[test]
    fn pair_count_matches_formula() {
        let lean = single_path_graph();
        let layout = line_layout(&lean, 1.0);
        let r = path_stress(&layout, &lean);
        // one path with 20 steps: 20·19/2 = 190 pairs, none fully skipped.
        assert_eq!(r.pairs + r.skipped, 190);
        assert_eq!(r.skipped, 0);
    }

    #[test]
    fn parallel_matches_serial() {
        let g = fig1_graph();
        let lean = LeanGraph::from_graph(&g);
        let layout = line_layout(&lean, 1.3);
        let a = path_stress(&layout, &lean);
        let b = path_stress_serial(&layout, &lean);
        assert_eq!(a.pairs, b.pairs);
        assert_eq!(a.skipped, b.skipped);
        assert!((a.stress - b.stress).abs() < 1e-12);
    }

    #[test]
    fn worse_layouts_have_higher_stress() {
        let g = fig1_graph();
        let lean = LeanGraph::from_graph(&g);
        let good = line_layout(&lean, 1.0);
        let bad = line_layout(&lean, 10.0);
        let sg = path_stress(&good, &lean).stress;
        let sb = path_stress(&bad, &lean).stress;
        assert!(sb > sg, "bad {sb} should exceed good {sg}");
    }

    #[test]
    fn collapsed_layout_has_stress_one() {
        // All points at the origin: every term is ((0−d)/d)² = 1.
        let g = fig1_graph();
        let lean = LeanGraph::from_graph(&g);
        let layout = Layout2D::zeros(lean.node_count());
        let r = path_stress(&layout, &lean);
        assert!((r.stress - 1.0).abs() < 1e-12, "stress = {}", r.stress);
    }

    #[test]
    fn multi_path_graph_counts_pairs_per_path() {
        let g = fig1_graph();
        let lean = LeanGraph::from_graph(&g);
        let layout = line_layout(&lean, 1.0);
        let r = path_stress(&layout, &lean);
        // paths of 6,5,7 steps: 15+10+21 = 46 pairs total.
        assert_eq!(r.pairs + r.skipped, 46);
    }
}
