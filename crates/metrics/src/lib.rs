//! # pgmetrics — quantitative layout-quality metrics
//!
//! Implements the paper's Sec. VI:
//!
//! * [`stress`] — the per-term and per-node-pair stress
//!   `((‖v_i − v_j‖ − d_ref) / d_ref)²` (Alg. 1 line 14), with the paper's
//!   four-endpoint-combination average for node pairs.
//! * [`path_stress`] — **path stress** (Eq. 1): the exact average over all
//!   node pairs on all paths. Quadratic in path length; parallelized with
//!   a Rayon reduction (the paper uses a GPU reduction-tree kernel).
//! * [`sampled`] — **sampled path stress** (Eq. 2): the scalable
//!   estimator drawing `100·|p|` endpoint pairs per path, with its 95%
//!   confidence interval `μ ± 1.96σ/√n`; linear in total path length.
//!
//! The crate also exposes [`pearson`], used by the Fig. 13 correlation
//! experiment (sampled vs exact stress, r = 0.995 in the paper).

pub mod path_stress;
pub mod sampled;
pub mod stress;

pub use path_stress::{path_stress, path_stress_serial, PathStressReport};
pub use sampled::{sampled_path_stress, SampledStress, SamplingConfig};
pub use stress::{node_pair_stress, term_stress};

/// Pearson correlation coefficient between two equal-length samples.
///
/// Used to validate that sampled path stress tracks exact path stress
/// (paper Fig. 13 reports r = 0.995 over 1824 layouts).
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "pearson needs paired samples");
    assert!(xs.len() >= 2, "pearson needs at least two pairs");
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    if sxx == 0.0 || syy == 0.0 {
        return 0.0;
    }
    sxy / (sxx * syy).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_perfect_positive() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_perfect_negative() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [3.0, 2.0, 1.0];
        assert!((pearson(&xs, &ys) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_zero_variance_returns_zero() {
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "paired")]
    fn pearson_rejects_mismatched() {
        let _ = pearson(&[1.0], &[1.0, 2.0]);
    }
}
