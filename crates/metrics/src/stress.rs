//! Stress terms — the loss of Alg. 1 line 14 and the per-node-pair
//! quantity aggregated by the path-stress metrics.

use pangraph::layout2d::Layout2D;
use pangraph::lean::LeanGraph;

/// Single-term stress `((‖v_i − v_j‖ − d_ref) / d_ref)²` between two
/// concrete visualization points. Terms with `d_ref = 0` are undefined and
/// return `None` (the metrics skip them, as odgi does for zero-distance
/// terms).
#[inline]
pub fn term_stress(vi: (f64, f64), vj: (f64, f64), d_ref: f64) -> Option<f64> {
    if d_ref <= 0.0 {
        return None;
    }
    let dx = vi.0 - vj.0;
    let dy = vi.1 - vj.1;
    let dist = (dx * dx + dy * dy).sqrt();
    let r = (dist - d_ref) / d_ref;
    Some(r * r)
}

/// The paper's node-pair stress: the average of [`term_stress`] over all
/// four combinations of the two nodes' segment endpoints, each combination
/// using its own reference distance. Undefined combinations (`d_ref = 0`,
/// e.g. abutting endpoints of adjacent steps) are excluded from the
/// average; returns `None` when all four are undefined.
///
/// `s_i`, `s_j` are *flat step indices* into `lean` on the same path.
#[inline]
pub fn node_pair_stress(
    layout: &Layout2D,
    lean: &LeanGraph,
    s_i: usize,
    s_j: usize,
) -> Option<f64> {
    let n_i = lean.node_of_flat(s_i);
    let n_j = lean.node_of_flat(s_j);
    let mut sum = 0.0;
    let mut count = 0u32;
    for end_i in [false, true] {
        for end_j in [false, true] {
            let d_ref = lean.d_ref_endpoints(s_i, end_i, s_j, end_j);
            if let Some(s) = term_stress(layout.get(n_i, end_i), layout.get(n_j, end_j), d_ref) {
                sum += s;
                count += 1;
            }
        }
    }
    (count > 0).then(|| sum / count as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pangraph::model::fig1_graph;

    /// Lay a single path exactly on the number line: endpoint positions
    /// equal nucleotide positions. Every stress term is then exactly zero.
    fn exact_line_layout(lean: &LeanGraph) -> Layout2D {
        let mut l = Layout2D::zeros(lean.node_count());
        // Walk path 0 and place each node by its step position. For graphs
        // where a node appears once, this is exact for that path.
        for i in 0..lean.steps_in(0) {
            let s = lean.flat_step(0, i);
            let n = lean.node_of_flat(s);
            l.set(n, false, lean.endpoint_pos_of_flat(s, false) as f64, 0.0);
            l.set(n, true, lean.endpoint_pos_of_flat(s, true) as f64, 0.0);
        }
        l
    }

    #[test]
    fn term_stress_zero_at_reference_distance() {
        assert_eq!(term_stress((0.0, 0.0), (3.0, 4.0), 5.0), Some(0.0));
    }

    #[test]
    fn term_stress_one_when_distance_doubles() {
        // dist = 10, d_ref = 5: ((10-5)/5)^2 = 1.
        assert_eq!(term_stress((0.0, 0.0), (10.0, 0.0), 5.0), Some(1.0));
    }

    #[test]
    fn term_stress_one_when_distance_collapses() {
        // dist = 0, d_ref = 5: ((0-5)/5)^2 = 1.
        assert_eq!(term_stress((1.0, 1.0), (1.0, 1.0), 5.0), Some(1.0));
    }

    #[test]
    fn term_stress_undefined_for_zero_reference() {
        assert_eq!(term_stress((0.0, 0.0), (1.0, 0.0), 0.0), None);
    }

    #[test]
    fn node_pair_stress_is_zero_on_exact_line() {
        let g = fig1_graph();
        let lean = LeanGraph::from_graph(&g);
        let layout = exact_line_layout(&lean);
        // steps 0 and 3 of path 0 (v0 and v5): all four combos defined.
        let s0 = lean.flat_step(0, 0);
        let s3 = lean.flat_step(0, 3);
        let val = node_pair_stress(&layout, &lean, s0, s3).unwrap();
        assert!(val.abs() < 1e-18, "stress = {val}");
    }

    #[test]
    fn node_pair_stress_scales_quadratically() {
        // Scaling the layout by s makes every term ((s·d−d)/d)² = (s−1)².
        let g = fig1_graph();
        let lean = LeanGraph::from_graph(&g);
        let mut layout = exact_line_layout(&lean);
        layout.scale(3.0);
        let s0 = lean.flat_step(0, 0);
        let s3 = lean.flat_step(0, 3);
        let val = node_pair_stress(&layout, &lean, s0, s3).unwrap();
        assert!((val - 4.0).abs() < 1e-9, "expected (3-1)^2 = 4, got {val}");
    }

    #[test]
    fn adjacent_steps_skip_abutting_combination() {
        // Steps 0 and 1: end of v0 (pos 2) coincides with start of v2
        // (pos 2) ⇒ that combination has d_ref = 0 and is skipped, but the
        // other three are defined.
        let g = fig1_graph();
        let lean = LeanGraph::from_graph(&g);
        let layout = exact_line_layout(&lean);
        let s0 = lean.flat_step(0, 0);
        let s1 = lean.flat_step(0, 1);
        let val = node_pair_stress(&layout, &lean, s0, s1);
        assert!(val.is_some());
        assert!(val.unwrap().abs() < 1e-18);
    }

    #[test]
    fn symmetric_in_argument_order() {
        let g = fig1_graph();
        let lean = LeanGraph::from_graph(&g);
        let mut layout = exact_line_layout(&lean);
        layout.scale(1.7);
        let a = lean.flat_step(0, 1);
        let b = lean.flat_step(0, 4);
        assert_eq!(
            node_pair_stress(&layout, &lean, a, b),
            node_pair_stress(&layout, &lean, b, a)
        );
    }
}
