//! Scaled catalog of the 24 HPRC human chromosome pangenomes.
//!
//! The paper's Tables VI–VIII and Fig. 14–16 run over the 24 chromosome
//! graphs (Chr.1–Chr.22, Chr.X, Chr.Y). Per-chromosome graph sizes are not
//! printed in the paper, but its Fig. 15 establishes that layout run time
//! is linear in total path length, so the per-chromosome *CPU run times of
//! Table VII* are a faithful proxy for relative graph size. This catalog
//! pins each synthetic chromosome's size to that proxy (Chr.1 anchored at
//! its published 1.1×10⁷ nodes), so every between-chromosome ratio the
//! tables report is preserved under scaling.
//!
//! Each entry also records the paper's measured run times (CPU, RTX A6000,
//! A100) so the benchmark harness can print paper-vs-measured columns.

use crate::generator::{PangenomeSpec, SiteMix};

/// One HPRC chromosome: paper-reported timings plus derived full-scale
/// graph dimensions.
#[derive(Debug, Clone, Copy)]
pub struct ChromEntry {
    /// Chromosome name, e.g. `"chr1"`.
    pub name: &'static str,
    /// Paper Table VII: 32-thread CPU baseline run time, seconds.
    pub cpu_paper_s: f64,
    /// Paper Table VII: RTX A6000 run time, seconds.
    pub a6000_paper_s: f64,
    /// Paper Table VII: A100 run time, seconds.
    pub a100_paper_s: f64,
    /// Derived full-scale node count (∝ CPU time, anchored at Chr.1).
    pub nodes_full: u64,
    /// Derived full-scale path count (∝ CPU time, anchored at Chr.1's
    /// 2,262 contig paths, floored at 100).
    pub paths_full: u64,
}

/// Expected nodes produced per backbone site under the chromosome mix.
const NODES_PER_SITE: f64 = 1.28;

impl ChromEntry {
    /// Paper Table VII speedup of the A6000 over the CPU baseline.
    pub fn a6000_paper_speedup(&self) -> f64 {
        self.cpu_paper_s / self.a6000_paper_s
    }

    /// Paper Table VII speedup of the A100 over the CPU baseline.
    pub fn a100_paper_speedup(&self) -> f64 {
        self.cpu_paper_s / self.a100_paper_s
    }

    /// Build the generator spec at a given scale.
    ///
    /// * `scale = 1.0` targets the full derived size (Chr.1: 1.1×10⁷
    ///   nodes, haplotype depth 54 ⇒ Σ|p| ≈ 6×10⁸, matching the paper's
    ///   "six billion node pair updates per iteration").
    /// * `scale < 1` shrinks the backbone linearly and uses a fixed
    ///   haplotype depth of 12 split into 4 fragments (48 paths), keeping
    ///   every between-chromosome ratio intact.
    pub fn spec(&self, scale: f64) -> PangenomeSpec {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        let full = (scale - 1.0).abs() < f64::EPSILON;
        let sites = ((self.nodes_full as f64 * scale / NODES_PER_SITE) as usize).max(200);
        let (haplotypes, fragments) = if full {
            (54usize, ((self.paths_full as usize) / 54).max(1))
        } else {
            (12usize, 4usize)
        };
        PangenomeSpec {
            name: if full {
                self.name.to_string()
            } else {
                format!("{}(x{scale})", self.name)
            },
            sites,
            mean_node_len: 130, // → ≈100 realized nuc/node under the mix
            haplotypes,
            fragments_per_hap: fragments,
            mix: SiteMix {
                snv: 0.2,
                insertion: 0.04,
                deletion: 0.04,
            },
            sv_sites: ((sites as f64) * 2.0e-4).ceil() as usize,
            loop_sites: ((sites as f64) * 1.0e-4).ceil() as usize,
            store_sequences: false,
            // Distinct, reproducible seed per chromosome.
            seed: 0xC0DE ^ fxhash(self.name),
        }
    }
}

fn fxhash(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Paper Table VII run times, parsed to seconds, with derived sizes.
pub fn hprc_catalog() -> Vec<ChromEntry> {
    // (name, cpu h:mm:ss → s, A6000 s, A100 s)
    const RAW: [(&str, f64, f64, f64); 24] = [
        ("chr1", 9158.0, 299.0, 162.0),
        ("chr2", 4623.0, 213.0, 61.0),
        ("chr3", 5321.0, 207.0, 91.0),
        ("chr4", 6452.0, 220.0, 126.0),
        ("chr5", 6069.0, 199.0, 67.0),
        ("chr6", 4435.0, 169.0, 87.0),
        ("chr7", 4606.0, 180.0, 94.0),
        ("chr8", 4647.0, 177.0, 101.0),
        ("chr9", 4609.0, 173.0, 55.0),
        ("chr10", 2914.0, 142.0, 44.0),
        ("chr11", 3385.0, 127.0, 37.0),
        ("chr12", 2645.0, 127.0, 49.0),
        ("chr13", 3812.0, 142.0, 53.0),
        ("chr14", 3081.0, 124.0, 46.0),
        ("chr15", 4293.0, 172.0, 76.0),
        ("chr16", 8387.0, 296.0, 778.0),
        ("chr17", 3825.0, 121.0, 67.0),
        ("chr18", 3029.0, 110.0, 68.0),
        ("chr19", 2423.0, 89.0, 27.0),
        ("chr20", 3094.0, 90.0, 61.0),
        ("chr21", 2658.0, 86.0, 38.0),
        ("chr22", 2399.0, 97.0, 30.0),
        ("chrX", 3846.0, 109.0, 49.0),
        ("chrY", 115.0, 3.0, 4.0),
    ];
    const CHR1_CPU_S: f64 = 9158.0;
    const CHR1_NODES: f64 = 1.1e7;
    const CHR1_PATHS: f64 = 2262.0;
    RAW.iter()
        .map(|&(name, cpu, a6000, a100)| {
            let w = cpu / CHR1_CPU_S;
            ChromEntry {
                name,
                cpu_paper_s: cpu,
                a6000_paper_s: a6000,
                a100_paper_s: a100,
                nodes_full: (CHR1_NODES * w) as u64,
                paths_full: ((CHR1_PATHS * w) as u64).clamp(100, 3100),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate;
    use pangraph::stats::{AggregateStats, GraphStats};

    #[test]
    fn catalog_has_24_chromosomes() {
        let cat = hprc_catalog();
        assert_eq!(cat.len(), 24);
        assert_eq!(cat[0].name, "chr1");
        assert_eq!(cat[23].name, "chrY");
    }

    #[test]
    fn paper_speedup_geomeans_match_abstract() {
        // The paper reports geometric-mean speedups of 27.7x (A6000) and
        // 57.3x (A100); recompute from the table we transcribed.
        let cat = hprc_catalog();
        let geo = |xs: Vec<f64>| (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp();
        let a6000 = geo(cat.iter().map(|c| c.a6000_paper_speedup()).collect());
        let a100 = geo(cat.iter().map(|c| c.a100_paper_speedup()).collect());
        assert!((a6000 - 27.7).abs() < 1.0, "A6000 geomean {a6000}");
        assert!((a100 - 57.3).abs() < 2.0, "A100 geomean {a100}");
    }

    #[test]
    fn chr1_is_the_largest_and_chry_the_smallest() {
        let cat = hprc_catalog();
        let max = cat.iter().max_by_key(|c| c.nodes_full).unwrap();
        let min = cat.iter().min_by_key(|c| c.nodes_full).unwrap();
        assert_eq!(max.name, "chr1");
        assert_eq!(min.name, "chrY");
        assert_eq!(max.nodes_full, 1.1e7 as u64);
    }

    #[test]
    fn full_scale_chr1_spec_matches_paper_update_count() {
        // Σ|p| ≈ 54 × 1.1e7 ≈ 5.9e8 ⇒ ~6e9 updates/iteration at 10×Σ|p|.
        let spec = hprc_catalog()[0].spec(1.0);
        let approx_steps = spec.sites as f64 * NODES_PER_SITE * spec.haplotypes as f64;
        let updates_per_iter = 10.0 * approx_steps;
        assert!(
            (4.0e9..8.0e9).contains(&updates_per_iter),
            "updates/iter {updates_per_iter:.2e}"
        );
    }

    #[test]
    fn scaled_specs_preserve_chromosome_ratios() {
        let cat = hprc_catalog();
        let s1 = cat[0].spec(0.001); // chr1
        let s19 = cat[18].spec(0.001); // chr19
        let ratio = s1.sites as f64 / s19.sites as f64;
        let expect = cat[0].cpu_paper_s / cat[18].cpu_paper_s;
        assert!(
            (ratio / expect - 1.0).abs() < 0.05,
            "ratio {ratio} expect {expect}"
        );
    }

    #[test]
    fn generated_catalog_matches_table6_regime() {
        // Generate a tiny-scale version of every chromosome and check the
        // Table VI structural constants (degree ≈ 1.4, tiny density).
        let cat = hprc_catalog();
        let stats: Vec<GraphStats> = cat
            .iter()
            .map(|c| GraphStats::measure(&generate(&c.spec(0.0002))))
            .collect();
        let agg = AggregateStats::over(&stats);
        assert!(
            (1.0..2.0).contains(&agg.mean.avg_degree),
            "mean degree {}",
            agg.mean.avg_degree
        );
        assert!(agg.max.density < 1e-1);
        assert!(agg.min.nodes >= 200);
        // chr1 ≫ chrY in every size measure.
        assert!(stats[0].nodes > 5 * stats[23].nodes);
    }

    #[test]
    fn specs_have_distinct_seeds() {
        let cat = hprc_catalog();
        let mut seeds: Vec<u64> = cat.iter().map(|c| c.spec(0.01).seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 24);
    }

    #[test]
    #[should_panic(expected = "scale")]
    fn oversized_scale_rejected() {
        let _ = hprc_catalog()[0].spec(1.5);
    }
}
