//! The synthetic variation-graph generator.
//!
//! A graph is generated as a sequence of **sites** along a linear
//! backbone. Each site is one of:
//!
//! * `Shared` — a single node every haplotype traverses;
//! * `Snv` — two single-nucleotide allele nodes (ref/alt);
//! * `Insertion` — an optional node only carrier haplotypes traverse;
//! * `Deletion` — a backbone node non-carrier haplotypes *skip*;
//! * `Sv` — a large structural variant: a multi-node reference branch and
//!   either a divergent alternative branch or an **inversion** (the ref
//!   branch walked in reverse orientation);
//! * `LoopDup` — a tandem duplication: carriers traverse the node twice,
//!   which yields the loop structures visible in the paper's Fig. 2.
//!
//! Haplotype walks choose an allele at every site according to a per-site
//! allele frequency; each walk is then split into several contiguous
//! *fragments*, mirroring HPRC assembly contigs. All randomness flows from
//! one seed (Xoshiro256**), so generation is fully deterministic.

use pangraph::model::{GraphBuilder, Handle, VariationGraph};
use pgrng::{Rng64, Xoshiro256StarStar};

/// Relative frequency of each variant-site kind.
#[derive(Debug, Clone, Copy)]
pub struct SiteMix {
    /// Probability a site is an SNV.
    pub snv: f64,
    /// Probability a site is an insertion.
    pub insertion: f64,
    /// Probability a site is a deletion.
    pub deletion: f64,
}

impl Default for SiteMix {
    fn default() -> Self {
        // Roughly the SNV-dominated mix of human pangenomes.
        Self {
            snv: 0.15,
            insertion: 0.04,
            deletion: 0.04,
        }
    }
}

/// Full description of a synthetic pangenome.
#[derive(Debug, Clone)]
pub struct PangenomeSpec {
    /// Graph name (used in reports).
    pub name: String,
    /// Number of backbone sites.
    pub sites: usize,
    /// Mean shared-node length in nucleotides (exponential-ish skew).
    pub mean_node_len: u32,
    /// Number of full-coverage haplotype walks.
    pub haplotypes: usize,
    /// Contig fragments each haplotype is split into (≥1).
    pub fragments_per_hap: usize,
    /// Variant-site kind mix.
    pub mix: SiteMix,
    /// Number of large structural-variant sites.
    pub sv_sites: usize,
    /// Number of tandem-duplication (loop) sites.
    pub loop_sites: usize,
    /// Store actual nucleotide bases (only sensible for small graphs).
    pub store_sequences: bool,
    /// Generator seed.
    pub seed: u64,
}

impl PangenomeSpec {
    /// A minimal spec with the given backbone size and haplotype count;
    /// other knobs at defaults.
    pub fn basic(name: impl Into<String>, sites: usize, haplotypes: usize, seed: u64) -> Self {
        Self {
            name: name.into(),
            sites,
            mean_node_len: 25,
            haplotypes,
            fragments_per_hap: 1,
            mix: SiteMix::default(),
            sv_sites: 0,
            loop_sites: 0,
            store_sequences: false,
            seed,
        }
    }

    /// Expected node count (used to size specs toward a target; the
    /// realized count is random but concentrates here).
    pub fn expected_nodes(&self) -> f64 {
        // Shared sites contribute 1 node; SNVs 2; insertions 2 (backbone +
        // inserted); deletions 1; SVs ~9 (ref ~4 + alt ~4 + flank); loops 1.
        let m = &self.mix;
        let shared = 1.0 - m.snv - m.insertion - m.deletion;
        self.sites as f64 * (shared + 2.0 * m.snv + 2.0 * m.insertion + m.deletion)
            + 9.0 * self.sv_sites as f64
            + self.loop_sites as f64
    }
}

/// One generated site: the alternative walks and the allele frequency of
/// the alternative branch.
enum Site {
    Shared(Vec<Handle>),
    /// (ref branch, alt branch, alt allele frequency)
    Branch(Vec<Handle>, Vec<Handle>, f64),
    /// (node, duplication frequency): carriers walk it twice.
    LoopDup(Vec<Handle>, f64),
}

/// Generate a variation graph from a spec.
pub fn generate(spec: &PangenomeSpec) -> VariationGraph {
    assert!(spec.sites > 0, "need at least one site");
    assert!(spec.haplotypes > 0, "need at least one haplotype");
    assert!(
        spec.fragments_per_hap >= 1,
        "fragments_per_hap must be >= 1"
    );
    let mut rng = Xoshiro256StarStar::seed_from_u64(spec.seed);
    let mut b = GraphBuilder::new();

    // Pre-select distinct special sites (SVs, loops) among interior sites.
    let specials = pick_special_sites(&mut rng, spec);

    let add_node = |b: &mut GraphBuilder, rng: &mut Xoshiro256StarStar, len: u32| {
        if spec.store_sequences {
            let seq = random_seq(rng, len);
            b.add_node_seq(&seq)
        } else {
            b.add_node_len(len)
        }
    };

    let mut sites: Vec<Site> = Vec::with_capacity(spec.sites);
    for s in 0..spec.sites {
        let kind = specials.get(&s).copied();
        let site = match kind {
            Some(Special::Sv) => {
                // Reference branch: 3–6 nodes; alt: divergent branch of
                // similar size, or an inversion of the ref branch.
                let k = 3 + rng.gen_below(4) as usize;
                let ref_nodes: Vec<Handle> = (0..k)
                    .map(|_| {
                        let len = sample_len(&mut rng, spec.mean_node_len * 4);
                        Handle::forward(add_node(&mut b, &mut rng, len))
                    })
                    .collect();
                let freq = allele_freq(&mut rng);
                if rng.flip() {
                    // Inversion: walk the ref chain backwards on the
                    // reverse strand.
                    let alt: Vec<Handle> = ref_nodes.iter().rev().map(|h| h.flip()).collect();
                    Site::Branch(ref_nodes, alt, freq)
                } else {
                    let m = 3 + rng.gen_below(4) as usize;
                    let alt: Vec<Handle> = (0..m)
                        .map(|_| {
                            let len = sample_len(&mut rng, spec.mean_node_len * 4);
                            Handle::forward(add_node(&mut b, &mut rng, len))
                        })
                        .collect();
                    Site::Branch(ref_nodes, alt, freq)
                }
            }
            Some(Special::LoopDup) => {
                let len = sample_len(&mut rng, spec.mean_node_len * 2);
                let n = Handle::forward(add_node(&mut b, &mut rng, len));
                Site::LoopDup(vec![n], allele_freq(&mut rng))
            }
            None => {
                let u = rng.next_f64();
                let m = &spec.mix;
                if u < m.snv {
                    let r = Handle::forward(add_node(&mut b, &mut rng, 1));
                    let a = Handle::forward(add_node(&mut b, &mut rng, 1));
                    Site::Branch(vec![r], vec![a], allele_freq(&mut rng))
                } else if u < m.snv + m.insertion {
                    let len = sample_len(&mut rng, spec.mean_node_len.clamp(1, 8));
                    let ins = Handle::forward(add_node(&mut b, &mut rng, len));
                    // Alt branch carries the insertion; ref branch is empty.
                    Site::Branch(vec![], vec![ins], allele_freq(&mut rng))
                } else if u < m.snv + m.insertion + m.deletion {
                    let len = sample_len(&mut rng, spec.mean_node_len);
                    let d = Handle::forward(add_node(&mut b, &mut rng, len));
                    // Alt branch skips the node.
                    Site::Branch(vec![d], vec![], allele_freq(&mut rng))
                } else {
                    let len = sample_len(&mut rng, spec.mean_node_len);
                    Site::Shared(vec![Handle::forward(add_node(&mut b, &mut rng, len))])
                }
            }
        };
        sites.push(site);
    }

    // Haplotype walks → fragmented paths.
    for h in 0..spec.haplotypes {
        let mut walk: Vec<Handle> = Vec::with_capacity(spec.sites);
        for site in &sites {
            match site {
                Site::Shared(nodes) => walk.extend_from_slice(nodes),
                Site::Branch(ref_b, alt_b, freq) => {
                    if rng.next_f64() < *freq {
                        walk.extend_from_slice(alt_b);
                    } else {
                        walk.extend_from_slice(ref_b);
                    }
                }
                Site::LoopDup(nodes, freq) => {
                    walk.extend_from_slice(nodes);
                    if rng.next_f64() < *freq {
                        walk.extend_from_slice(nodes); // tandem copy → loop
                    }
                }
            }
        }
        debug_assert!(!walk.is_empty());
        for (f, chunk) in split_fragments(&mut rng, &walk, spec.fragments_per_hap)
            .into_iter()
            .enumerate()
        {
            b.add_path(format!("hap{h}#frag{f}"), chunk);
        }
    }

    b.ensure_path_edges();
    b.build()
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Special {
    Sv,
    LoopDup,
}

fn pick_special_sites(
    rng: &mut Xoshiro256StarStar,
    spec: &PangenomeSpec,
) -> std::collections::HashMap<usize, Special> {
    let mut out = std::collections::HashMap::new();
    let want = spec.sv_sites + spec.loop_sites;
    if want == 0 {
        return out;
    }
    assert!(want < spec.sites, "more special sites than backbone sites");
    let mut placed = 0;
    while placed < want {
        let s = rng.gen_below(spec.sites as u64) as usize;
        if out.contains_key(&s) {
            continue;
        }
        let kind = if placed < spec.sv_sites {
            Special::Sv
        } else {
            Special::LoopDup
        };
        out.insert(s, kind);
        placed += 1;
    }
    out
}

/// Exponential-ish node length with the given mean, clamped to [1, 20·mean].
fn sample_len(rng: &mut Xoshiro256StarStar, mean: u32) -> u32 {
    let mean = mean.max(1);
    if mean == 1 {
        return 1;
    }
    let u: f64 = rng.next_f64();
    let x = -(1.0 - u).ln() * mean as f64;
    (x as u32).clamp(1, mean * 20)
}

/// Allele frequency drawn uniformly from [0.05, 0.95].
fn allele_freq(rng: &mut Xoshiro256StarStar) -> f64 {
    0.05 + 0.9 * rng.next_f64()
}

fn random_seq(rng: &mut Xoshiro256StarStar, len: u32) -> Vec<u8> {
    const BASES: [u8; 4] = [b'A', b'C', b'G', b'T'];
    (0..len).map(|_| BASES[rng.gen_below(4) as usize]).collect()
}

/// Split a walk into `k` non-empty contiguous fragments at random cuts.
fn split_fragments(rng: &mut Xoshiro256StarStar, walk: &[Handle], k: usize) -> Vec<Vec<Handle>> {
    let k = k.min(walk.len()).max(1);
    if k == 1 {
        return vec![walk.to_vec()];
    }
    // Choose k-1 distinct interior cut points.
    let mut cuts: Vec<usize> = Vec::with_capacity(k - 1);
    while cuts.len() < k - 1 {
        let c = 1 + rng.gen_below(walk.len() as u64 - 1) as usize;
        if !cuts.contains(&c) {
            cuts.push(c);
        }
    }
    cuts.sort_unstable();
    let mut out = Vec::with_capacity(k);
    let mut prev = 0;
    for &c in &cuts {
        out.push(walk[prev..c].to_vec());
        prev = c;
    }
    out.push(walk[prev..].to_vec());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pangraph::stats::GraphStats;

    fn spec_small() -> PangenomeSpec {
        PangenomeSpec {
            name: "test".into(),
            sites: 400,
            mean_node_len: 10,
            haplotypes: 8,
            fragments_per_hap: 3,
            mix: SiteMix {
                snv: 0.2,
                insertion: 0.05,
                deletion: 0.05,
            },
            sv_sites: 3,
            loop_sites: 2,
            store_sequences: false,
            seed: 42,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&spec_small());
        let b = generate(&spec_small());
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.edge_count(), b.edge_count());
        assert_eq!(a.path_count(), b.path_count());
        for (p, q) in a.paths().iter().zip(b.paths()) {
            assert_eq!(p.steps, q.steps);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut s2 = spec_small();
        s2.seed = 43;
        let a = generate(&spec_small());
        let b = generate(&s2);
        assert_ne!(
            a.paths()
                .iter()
                .map(|p| p.steps.clone())
                .collect::<Vec<_>>(),
            b.paths()
                .iter()
                .map(|p| p.steps.clone())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn node_count_near_expectation() {
        let spec = spec_small();
        let g = generate(&spec);
        let expect = spec.expected_nodes();
        let actual = g.node_count() as f64;
        assert!(
            (actual / expect - 1.0).abs() < 0.3,
            "nodes {actual} vs expected {expect}"
        );
    }

    #[test]
    fn path_count_is_haps_times_fragments() {
        let spec = spec_small();
        let g = generate(&spec);
        assert_eq!(g.path_count(), spec.haplotypes * spec.fragments_per_hap);
    }

    #[test]
    fn fragments_of_one_hap_reassemble_the_walk() {
        // With fragments=1 vs fragments=3 at the same seed the total step
        // count per haplotype is preserved? (Different rng consumption per
        // fragment split means we can't compare across specs; instead check
        // every fragment is non-empty and consecutive steps are linked.)
        let g = generate(&spec_small());
        for p in g.paths() {
            assert!(!p.steps.is_empty());
            for w in p.steps.windows(2) {
                assert!(g.has_edge(w[0], w[1]), "missing path edge");
            }
        }
    }

    #[test]
    fn degree_is_in_pangenome_regime() {
        // Paper: average node degree ≈ 1.4 for human pangenomes. Accept a
        // generous band around it.
        let g = generate(&spec_small());
        let deg = g.avg_degree();
        assert!((1.0..2.2).contains(&deg), "degree = {deg}");
    }

    #[test]
    fn stats_are_self_consistent() {
        let g = generate(&spec_small());
        let s = GraphStats::measure(&g);
        assert_eq!(s.nodes, g.node_count() as u64);
        assert!(s.nucleotides > s.nodes, "multi-nucleotide nodes dominate");
        assert!(s.total_path_steps > s.nodes / 2);
    }

    #[test]
    fn sequences_are_stored_when_requested() {
        let mut spec = spec_small();
        spec.sites = 50;
        spec.store_sequences = true;
        let g = generate(&spec);
        for id in 0..g.node_count() as u32 {
            let seq = g.node_seq(id).expect("sequence stored");
            assert_eq!(seq.len() as u32, g.node_len(id));
            assert!(seq.iter().all(|b| b"ACGT".contains(b)));
        }
    }

    #[test]
    fn inversions_produce_reverse_handles() {
        // With many SV sites and a fixed seed some inversion alt branches
        // exist; at least one path step should be reverse-strand.
        let mut spec = spec_small();
        spec.sv_sites = 20;
        spec.sites = 300;
        let g = generate(&spec);
        let any_rev = g
            .paths()
            .iter()
            .flat_map(|p| &p.steps)
            .any(|h| h.is_reverse());
        assert!(any_rev, "expected at least one inversion traversal");
    }

    #[test]
    fn loops_duplicate_steps() {
        let mut spec = spec_small();
        spec.loop_sites = 10;
        spec.sites = 200;
        let g = generate(&spec);
        // Some path should contain the same handle twice in a row.
        let any_dup = g
            .paths()
            .iter()
            .any(|p| p.steps.windows(2).any(|w| w[0] == w[1]));
        assert!(any_dup, "expected a tandem duplication");
    }

    #[test]
    fn sample_len_respects_bounds() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(5);
        for mean in [1u32, 2, 10, 100] {
            for _ in 0..1000 {
                let l = sample_len(&mut rng, mean);
                assert!(l >= 1 && l <= mean.max(1) * 20);
            }
        }
    }

    #[test]
    fn split_fragments_covers_walk_exactly() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(9);
        let walk: Vec<Handle> = (0..57).map(Handle::forward).collect();
        for k in [1usize, 2, 3, 7, 57] {
            let frags = split_fragments(&mut rng, &walk, k);
            assert_eq!(frags.len(), k.min(walk.len()));
            let glued: Vec<Handle> = frags.concat();
            assert_eq!(glued, walk, "fragments must tile the walk");
            assert!(frags.iter().all(|f| !f.is_empty()));
        }
    }

    #[test]
    #[should_panic(expected = "special sites")]
    fn too_many_specials_rejected() {
        let mut spec = spec_small();
        spec.sites = 4;
        spec.sv_sites = 10;
        let _ = generate(&spec);
    }
}
