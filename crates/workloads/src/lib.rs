//! # workloads — synthetic pangenome graphs standing in for HPRC data
//!
//! The paper evaluates on the 24 human chromosome pangenomes of the Human
//! Pangenome Reference Consortium — ~250 GB of graphs that are not
//! available in this environment. This crate synthesizes variation graphs
//! with the same *structural regime*:
//!
//! * a **linear backbone** (genomes are linear; paper Sec. II-A notes the
//!   resulting near-linear graph structure, average node degree ≈ 1.4 and
//!   density ~3.5×10⁻⁷),
//! * **variant sites** layered on the backbone — SNVs, insertions,
//!   deletions, large structural variants (including inversions) and
//!   tandem-duplication loops: exactly the feature classes the paper's
//!   Fig. 2 layout is expected to reveal,
//! * **haplotype walks** over the sites, fragmented into multiple path
//!   contigs per haplotype (HPRC paths are assembly contigs, which is why
//!   chromosome graphs carry hundreds to thousands of paths).
//!
//! [`presets`] pins down the three representative graphs of paper Table I
//! (HLA-DRB1 at full scale; MHC and Chr.1 scaled down), and [`hprc`]
//! provides a 24-chromosome catalog whose *relative* sizes follow the
//! paper's per-chromosome measurements, so the Table VI/VII/VIII
//! experiments preserve between-chromosome shape.
//!
//! Layout cost is Θ(total path length) per iteration (paper Fig. 15), so
//! scaling every graph by a factor `s` scales all runtimes by `s` without
//! changing who wins — the substitution DESIGN.md documents.

pub mod generator;
pub mod hprc;
pub mod presets;

pub use generator::{generate, PangenomeSpec, SiteMix};
pub use hprc::{hprc_catalog, ChromEntry};
pub use presets::{chr1_like, hla_drb1, mhc_like, small_graph_family};
