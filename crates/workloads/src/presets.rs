//! Presets for the paper's three representative pangenomes (Table I) and
//! the Fig. 13 small-graph family.
//!
//! | Pangenome | # Nuc.   | # Nodes | # Edges | # Paths |
//! |-----------|----------|---------|---------|---------|
//! | HLA-DRB1  | 2.2×10⁴  | 5.0×10³ | 6.8×10³ | 12      |
//! | MHC       | 5.9×10⁶  | 2.3×10⁵ | 3.2×10⁵ | 99      |
//! | Chr.1     | 1.1×10⁹  | 1.1×10⁷ | 1.5×10⁷ | 2,262   |
//!
//! HLA-DRB1 is generated at **full scale** (it is tiny). MHC and Chr.1
//! take a `scale` factor: at `scale = 1.0` the specs target the paper's
//! real sizes; experiments run them at ~1/20 to ~1/500 so the whole
//! evaluation fits a laptop-class budget, which preserves shape because
//! layout cost is linear in total path length (paper Fig. 15).

use crate::generator::{PangenomeSpec, SiteMix};

/// HLA-DRB1 at full scale: ≈5×10³ nodes, ≈2.2×10⁴ nucleotides, 12 paths.
///
/// The gene's graph is variant-dense (small nodes, ~4.4 nuc/node), with a
/// large structural variant, a loop and divergent regions — the three
/// features annotated in paper Fig. 2.
pub fn hla_drb1() -> PangenomeSpec {
    PangenomeSpec {
        name: "HLA-DRB1".into(),
        // ~3400 sites * (1 + .25 + .06) + specials ≈ 4.5-5k nodes
        sites: 3400,
        mean_node_len: 5,
        haplotypes: 12,
        fragments_per_hap: 1,
        mix: SiteMix {
            snv: 0.25,
            insertion: 0.06,
            deletion: 0.06,
        },
        sv_sites: 4,
        loop_sites: 2,
        store_sequences: false,
        seed: 0xD2B1,
    }
}

/// MHC-like pangenome: at `scale = 1.0` targets 2.3×10⁵ nodes and
/// 99 haplotype paths; 5.9×10⁶ nucleotides (~26 nuc/node).
pub fn mhc_like(scale: f64) -> PangenomeSpec {
    assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
    let sites = ((1.8e5 * scale) as usize).max(50);
    PangenomeSpec {
        name: format!("MHC(x{scale})"),
        sites,
        mean_node_len: 33,
        haplotypes: scaled_haps(99, scale),
        fragments_per_hap: 1,
        mix: SiteMix {
            snv: 0.2,
            insertion: 0.04,
            deletion: 0.04,
        },
        sv_sites: (8.0 * scale).ceil() as usize,
        loop_sites: (4.0 * scale).ceil() as usize,
        store_sequences: false,
        seed: 0x4A4C,
    }
}

/// Chr.1-like pangenome: at `scale = 1.0` targets 1.1×10⁷ nodes,
/// 1.1×10⁹ nucleotides, haplotype depth ≈54 (the paper's Chr.1 performs
/// 6×10⁹ pair updates per iteration ⇒ Σ|p| ≈ 6×10⁸ ≈ 54 × nodes), with
/// contig fragmentation giving thousands of paths.
pub fn chr1_like(scale: f64) -> PangenomeSpec {
    crate::hprc::hprc_catalog()[0].spec(scale)
}

/// The Fig. 13 family: `n` small graphs of varying size, variant density
/// and node-length regime, used to correlate sampled vs exact path stress
/// over many layouts (the paper uses 1824 small layouts).
pub fn small_graph_family(n: usize, seed: u64) -> Vec<PangenomeSpec> {
    (0..n)
        .map(|i| {
            let k = i as u64;
            // Deterministic variety without RNG plumbing.
            let sites = 60 + (k * 37) % 300;
            let haps = 4 + (k * 7) % 12;
            let mean_len = 2 + (k * 13) % 30;
            PangenomeSpec {
                name: format!("small{i}"),
                sites: sites as usize,
                mean_node_len: mean_len as u32,
                haplotypes: haps as usize,
                fragments_per_hap: 1 + (k % 3) as usize,
                mix: SiteMix {
                    snv: 0.08 + 0.2 * ((k % 5) as f64 / 5.0),
                    insertion: 0.02 + 0.04 * ((k % 3) as f64 / 3.0),
                    deletion: 0.02 + 0.04 * ((k % 7) as f64 / 7.0),
                },
                sv_sites: (k % 3) as usize,
                loop_sites: (k % 2) as usize,
                store_sequences: false,
                seed: seed ^ (0xABCD + k * 0x9E37),
            }
        })
        .collect()
}

/// Scale a haplotype count, keeping at least 4 for path diversity.
fn scaled_haps(full: usize, scale: f64) -> usize {
    // Haplotype count shrinks with the square root of scale: path *count*
    // matters less than total path length, and keeping more haplotypes at
    // small scale preserves allele diversity.
    ((full as f64 * scale.sqrt()) as usize).clamp(4, full)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate;
    use pangraph::stats::GraphStats;

    #[test]
    fn hla_drb1_matches_table1_scale() {
        let g = generate(&hla_drb1());
        let s = GraphStats::measure(&g);
        // Table I: 5.0e3 nodes, 2.2e4 nucleotides, 12 paths, 6.8e3 edges.
        assert!(
            (3500..6500).contains(&(s.nodes as usize)),
            "nodes {}",
            s.nodes
        );
        assert!(
            (1.2e4..4.0e4).contains(&(s.nucleotides as f64)),
            "nuc {}",
            s.nucleotides
        );
        assert_eq!(s.paths, 12);
        assert!(
            (s.edges as f64) < 2.0 * s.nodes as f64,
            "edges {} nodes {}",
            s.edges,
            s.nodes
        );
    }

    #[test]
    fn mhc_preset_scales_linearly() {
        let small = generate(&mhc_like(0.01));
        let bigger = generate(&mhc_like(0.02));
        let a = GraphStats::measure(&small);
        let b = GraphStats::measure(&bigger);
        let ratio = b.nodes as f64 / a.nodes as f64;
        assert!((1.6..2.4).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn mhc_full_scale_targets_table1() {
        // Don't generate the full graph (2.3e5 nodes is fine, but keep the
        // test fast): check the spec arithmetic instead.
        let spec = mhc_like(1.0);
        let e = spec.expected_nodes();
        assert!((1.8e5..2.9e5).contains(&e), "expected nodes {e}");
        assert_eq!(spec.haplotypes, 99);
    }

    #[test]
    fn chr1_full_scale_targets_table1() {
        let spec = chr1_like(1.0);
        let e = spec.expected_nodes();
        assert!((0.8e7..1.4e7).contains(&e), "expected nodes {e}");
    }

    #[test]
    fn chr1_scaled_is_generable() {
        let g = generate(&chr1_like(0.001));
        let s = GraphStats::measure(&g);
        assert!(s.nodes > 5_000, "nodes {}", s.nodes);
        assert!(s.paths > 20, "paths {}", s.paths);
    }

    #[test]
    fn small_family_is_diverse_and_deterministic() {
        let fam1 = small_graph_family(20, 7);
        let fam2 = small_graph_family(20, 7);
        assert_eq!(fam1.len(), 20);
        for (a, b) in fam1.iter().zip(&fam2) {
            assert_eq!(a.seed, b.seed);
            assert_eq!(a.sites, b.sites);
        }
        // Diversity: not all the same size.
        let sizes: std::collections::BTreeSet<usize> = fam1.iter().map(|s| s.sites).collect();
        assert!(sizes.len() > 10);
    }

    #[test]
    #[should_panic(expected = "scale")]
    fn zero_scale_rejected() {
        let _ = mhc_like(0.0);
    }
}
