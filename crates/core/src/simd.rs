//! A tiny, std-only SIMD shim: fixed-width lanes of [`LayoutScalar`]s.
//!
//! The offline-build policy rules out `std::simd` (nightly) and crates
//! like `wide`, so this is the portable array-of-lanes form: a `[T; W]`
//! newtype whose arithmetic is written as straight per-lane loops over a
//! compile-time width. Every op is `#[inline(always)]`, so after
//! monomorphization the hot kernel (`term_deltas_lanes`) is one
//! branch-free basic block of independent lane arithmetic — exactly the
//! shape LLVM's auto-vectorizer turns into packed `mulpd`/`sqrtpd`/
//! `divpd` (SSE2 at the default target, wider when the build enables
//! AVX). The win is real even at 128 bits: the SGD step is dominated by
//! two divides and a square root per term, and packed divide/sqrt
//! amortize the divider unit across lanes.
//!
//! Widths used by the engines: 4 lanes for `f64`, 8 for `f32`
//! ([`F64_LANES`]/[`F32_LANES`]) — two/four 128-bit registers at the
//! SSE2 baseline, one/two at AVX2.
//!
//! Per-lane arithmetic is IEEE-identical to the scalar path (same ops,
//! same order); what the vector apply path changes is only the *memory
//! interleaving* of a term group (all gathers before all scatters), so
//! vector-path results are tolerance-equivalent, not bit-equal, to the
//! scalar path when a group touches one node twice.

use crate::scalar::LayoutScalar;
use std::ops::{Add, Div, Mul, Sub};

/// Lane width used for `f64` kernels (4 × 64 bit = two SSE2 registers).
pub const F64_LANES: usize = 4;
/// Lane width used for `f32` kernels (8 × 32 bit = two SSE2 registers).
pub const F32_LANES: usize = 8;

/// A fixed-width pack of scalars with element-wise arithmetic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Lanes<T, const W: usize>(pub [T; W]);

impl<T: LayoutScalar, const W: usize> Lanes<T, W> {
    /// All lanes set to `v`.
    #[inline(always)]
    pub fn splat(v: T) -> Self {
        Self([v; W])
    }

    /// Build from a per-lane closure (the gather step).
    #[inline(always)]
    pub fn from_fn(f: impl FnMut(usize) -> T) -> Self {
        Self(std::array::from_fn(f))
    }

    /// Element-wise square root.
    #[inline(always)]
    pub fn sqrt(self) -> Self {
        Self(std::array::from_fn(|l| self.0[l].sqrt()))
    }

    /// Element-wise minimum.
    #[inline(always)]
    pub fn min(self, other: Self) -> Self {
        Self(std::array::from_fn(|l| self.0[l].min_s(other.0[l])))
    }

    /// Lane-wise select: where `self < threshold`, take `lt`'s lane,
    /// else keep this one. Written as a per-lane conditional move so the
    /// vectorizer lowers it to a compare + blend, never a branch.
    #[inline(always)]
    pub fn select_lt(self, threshold: T, lt: Self) -> Self {
        Self(std::array::from_fn(|l| {
            if self.0[l] < threshold {
                lt.0[l]
            } else {
                self.0[l]
            }
        }))
    }
}

macro_rules! lane_op {
    ($trait:ident, $method:ident) => {
        impl<T: LayoutScalar, const W: usize> $trait for Lanes<T, W> {
            type Output = Self;

            #[inline(always)]
            fn $method(self, rhs: Self) -> Self {
                Self(std::array::from_fn(|l| self.0[l].$method(rhs.0[l])))
            }
        }
    };
}

lane_op!(Add, add);
lane_op!(Sub, sub);
lane_op!(Mul, mul);
lane_op!(Div, div);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_is_element_wise() {
        let a = Lanes::<f64, 4>([1.0, 2.0, 3.0, 4.0]);
        let b = Lanes::splat(2.0);
        assert_eq!((a + b).0, [3.0, 4.0, 5.0, 6.0]);
        assert_eq!((a - b).0, [-1.0, 0.0, 1.0, 2.0]);
        assert_eq!((a * b).0, [2.0, 4.0, 6.0, 8.0]);
        assert_eq!((a / b).0, [0.5, 1.0, 1.5, 2.0]);
    }

    #[test]
    fn sqrt_min_and_select_behave() {
        let a = Lanes::<f32, 8>([4.0, 9.0, 1.0, 16.0, 25.0, 0.0, 36.0, 49.0]);
        assert_eq!(a.sqrt().0, [2.0, 3.0, 1.0, 4.0, 5.0, 0.0, 6.0, 7.0]);
        let b = Lanes::splat(10.0f32);
        assert_eq!(a.min(b).0[3], 10.0);
        assert_eq!(a.min(b).0[2], 1.0);
        // Lanes below the threshold take the fallback, others keep.
        let sel = a.select_lt(4.5, Lanes::splat(-1.0));
        assert_eq!(sel.0, [-1.0, 9.0, -1.0, 16.0, 25.0, -1.0, 36.0, 49.0]);
    }

    #[test]
    fn from_fn_gathers_in_lane_order() {
        let v = Lanes::<f64, 4>::from_fn(|l| l as f64 * 10.0);
        assert_eq!(v.0, [0.0, 10.0, 20.0, 30.0]);
    }

    #[test]
    fn lane_math_is_bit_identical_to_scalar_math() {
        // The per-lane ops are the same IEEE ops in the same order as the
        // scalar path — the shim adds width, never different rounding.
        let xs = [1.5e-3, 7.25, 1e9, std::f64::consts::PI];
        let ys = [2.5, 1e-7, 42.0, std::f64::consts::E];
        let packed = Lanes::<f64, 4>(xs) * Lanes(ys) + Lanes(xs).sqrt();
        for l in 0..4 {
            assert_eq!(
                packed.0[l].to_bits(),
                (xs[l] * ys[l] + xs[l].sqrt()).to_bits()
            );
        }
    }
}
