//! Layout configuration — the knobs of Alg. 1 with odgi-layout's defaults.

use crate::coords::{DataLayout, Precision};

/// Ceiling on [`LayoutConfig::term_block`]: each worker thread keeps a
/// term buffer of this many entries (~56 B each ⇒ ≤ ~56 MB/thread at the
/// cap), so a hostile or fat-fingered block size cannot turn into a
/// terabyte allocation.
pub const MAX_TERM_BLOCK: usize = 1 << 20;

/// How node pairs are selected within a path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairSelection {
    /// The paper's scheme: uniform pairs before cooling, Zipf-distance
    /// pairs during cooling (Alg. 1 lines 6–11).
    PgSgd,
    /// The degenerate scheme of paper Fig. 6: the second node is always a
    /// fixed number of hops away. Kills randomness; used to demonstrate
    /// why randomness matters for convergence.
    FixedHop(u32),
}

/// Full configuration of a layout run.
#[derive(Debug, Clone)]
pub struct LayoutConfig {
    /// Total iterations `N_iters` (paper default: 30).
    pub iter_max: u32,
    /// Per-iteration step budget factor: `N_steps = factor × Σ|p|`
    /// (Alg. 1 line 1 uses 10).
    pub steps_per_path_node: f64,
    /// Learning-rate floor ε (odgi default 0.01); `η_min = ε`.
    pub eps: f64,
    /// Optional explicit `η_max`; default `(max d_ref)²` per Zheng et al.
    pub eta_max: Option<f64>,
    /// Fraction of iterations before cooling always applies (Alg. 1 line 6
    /// uses 0.5).
    pub cooling_start: f64,
    /// Zipf exponent θ for cooled pair selection (odgi default 0.99).
    pub zipf_theta: f64,
    /// Zipf exact-table bound (odgi default 1000).
    pub zipf_space_max: u64,
    /// Zipf quantization step beyond the bound (odgi default 100).
    pub zipf_quant: u64,
    /// Worker threads for the Hogwild engine (0 ⇒ all available cores).
    pub threads: usize,
    /// PRNG seed.
    pub seed: u64,
    /// Coordinate-store memory layout (the Table IX CDL axis).
    pub data_layout: DataLayout,
    /// Coordinate precision: `f64` (odgi's CPU baseline) or `f32` (the
    /// paper's GPU coordinates; half the memory traffic per update).
    pub precision: Precision,
    /// Terms sampled per hot-loop block: worker threads draw this many
    /// terms, then apply them in one monomorphized straight-line pass.
    /// Amortizes sampler dispatch; larger blocks coarsen Hogwild
    /// interleaving but do not change the objective.
    pub term_block: usize,
    /// Pair-selection scheme.
    pub pair_selection: PairSelection,
    /// Initial-placement jitter amplitude relative to graph length.
    pub init_jitter: f64,
}

impl Default for LayoutConfig {
    fn default() -> Self {
        Self {
            iter_max: 30,
            steps_per_path_node: 10.0,
            eps: 0.01,
            eta_max: None,
            cooling_start: 0.5,
            zipf_theta: 0.99,
            zipf_space_max: 1000,
            zipf_quant: 100,
            threads: 0,
            seed: 93_992_202,
            data_layout: DataLayout::CacheFriendlyAos,
            precision: Precision::F64,
            term_block: 256,
            pair_selection: PairSelection::PgSgd,
            init_jitter: 0.01,
        }
    }
}

impl LayoutConfig {
    /// A small, fast configuration for unit tests: few iterations, the
    /// given thread count, deterministic seed.
    pub fn for_tests(threads: usize) -> Self {
        Self {
            iter_max: 12,
            steps_per_path_node: 5.0,
            threads,
            ..Self::default()
        }
    }

    /// Resolved worker-thread count.
    pub fn resolved_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }

    /// The first iteration at which cooling is unconditional
    /// (`iter ≥ N_iters/2` in Alg. 1 line 6).
    pub fn first_cooling_iter(&self) -> u32 {
        (self.iter_max as f64 * self.cooling_start).floor() as u32
    }

    /// Steps per iteration for a graph with `total_path_steps` path nodes.
    pub fn steps_per_iter(&self, total_path_steps: u64) -> u64 {
        (self.steps_per_path_node * total_path_steps as f64).ceil() as u64
    }

    /// The term-block size, clamped to `1..=`[`MAX_TERM_BLOCK`]: a zero
    /// block would stall the hot loop, and an absurd one is a per-thread
    /// allocation request (the service accepts this field from the
    /// network).
    pub fn resolved_term_block(&self) -> usize {
        self.term_block.clamp(1, MAX_TERM_BLOCK)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = LayoutConfig::default();
        assert_eq!(c.iter_max, 30);
        assert_eq!(c.steps_per_path_node, 10.0);
        assert_eq!(c.zipf_theta, 0.99);
        assert_eq!(c.cooling_start, 0.5);
        assert_eq!(c.first_cooling_iter(), 15);
    }

    #[test]
    fn steps_per_iter_is_factor_times_path_nodes() {
        let c = LayoutConfig::default();
        assert_eq!(c.steps_per_iter(1000), 10_000);
        let mut c2 = c.clone();
        c2.steps_per_path_node = 2.5;
        assert_eq!(c2.steps_per_iter(1000), 2_500);
    }

    #[test]
    fn resolved_threads_nonzero() {
        let mut c = LayoutConfig::default();
        assert!(c.resolved_threads() >= 1);
        c.threads = 3;
        assert_eq!(c.resolved_threads(), 3);
    }

    #[test]
    fn test_config_is_small() {
        let c = LayoutConfig::for_tests(2);
        assert!(c.iter_max <= 16);
        assert_eq!(c.threads, 2);
    }

    #[test]
    fn hot_path_axes_default_to_the_faithful_baseline() {
        let c = LayoutConfig::default();
        assert_eq!(c.precision, Precision::F64);
        assert!(c.term_block >= 1);
        assert_eq!(c.resolved_term_block(), c.term_block);
        let zero = LayoutConfig {
            term_block: 0,
            ..LayoutConfig::default()
        };
        assert_eq!(zero.resolved_term_block(), 1);
        let huge = LayoutConfig {
            term_block: usize::MAX,
            ..LayoutConfig::default()
        };
        assert_eq!(
            huge.resolved_term_block(),
            MAX_TERM_BLOCK,
            "network-supplied block sizes must not become giant allocations"
        );
    }
}
