//! Layout configuration — the knobs of Alg. 1 with odgi-layout's defaults.

use crate::coords::{DataLayout, Precision};

/// Ceiling on [`LayoutConfig::term_block`]: each worker thread keeps a
/// term buffer of this many entries (~56 B each ⇒ ≤ ~56 MB/thread at the
/// cap), so a hostile or fat-fingered block size cannot turn into a
/// terabyte allocation.
pub const MAX_TERM_BLOCK: usize = 1 << 20;

/// Tri-state engine knob: let the engine pick, or force a side. Used by
/// the SIMD apply path ([`LayoutConfig::simd`]) and the sharded-write
/// Hogwild mode ([`LayoutConfig::write_shard`]), both of which have a
/// heuristic "on when it pays" default that benchmarks need to override
/// in either direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Toggle {
    /// Engine heuristic decides. The default.
    #[default]
    Auto,
    /// Force on.
    On,
    /// Force off.
    Off,
}

impl Toggle {
    /// Lower-case wire/report name (`auto` / `on` / `off`).
    pub fn label(self) -> &'static str {
        match self {
            Toggle::Auto => "auto",
            Toggle::On => "on",
            Toggle::Off => "off",
        }
    }

    /// Parse a wire name (`None` for anything unrecognized).
    pub fn parse_name(s: &str) -> Option<Self> {
        match s {
            "auto" => Some(Toggle::Auto),
            "on" => Some(Toggle::On),
            "off" => Some(Toggle::Off),
            _ => None,
        }
    }

    /// Resolve against the heuristic's answer for `Auto`.
    #[inline]
    pub fn resolve(self, auto_default: bool) -> bool {
        match self {
            Toggle::Auto => auto_default,
            Toggle::On => true,
            Toggle::Off => false,
        }
    }
}

/// How node pairs are selected within a path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairSelection {
    /// The paper's scheme: uniform pairs before cooling, Zipf-distance
    /// pairs during cooling (Alg. 1 lines 6–11).
    PgSgd,
    /// The degenerate scheme of paper Fig. 6: the second node is always a
    /// fixed number of hops away. Kills randomness; used to demonstrate
    /// why randomness matters for convergence.
    FixedHop(u32),
}

/// Full configuration of a layout run.
#[derive(Debug, Clone)]
pub struct LayoutConfig {
    /// Total iterations `N_iters` (paper default: 30).
    pub iter_max: u32,
    /// Per-iteration step budget factor: `N_steps = factor × Σ|p|`
    /// (Alg. 1 line 1 uses 10).
    pub steps_per_path_node: f64,
    /// Learning-rate floor ε (odgi default 0.01); `η_min = ε`.
    pub eps: f64,
    /// Optional explicit `η_max`; default `(max d_ref)²` per Zheng et al.
    pub eta_max: Option<f64>,
    /// Fraction of iterations before cooling always applies (Alg. 1 line 6
    /// uses 0.5).
    pub cooling_start: f64,
    /// Zipf exponent θ for cooled pair selection (odgi default 0.99).
    pub zipf_theta: f64,
    /// Zipf exact-table bound (odgi default 1000).
    pub zipf_space_max: u64,
    /// Zipf quantization step beyond the bound (odgi default 100).
    pub zipf_quant: u64,
    /// Worker threads for the Hogwild engine (0 ⇒ all available cores).
    pub threads: usize,
    /// PRNG seed.
    pub seed: u64,
    /// Coordinate-store memory layout (the Table IX CDL axis).
    pub data_layout: DataLayout,
    /// Coordinate precision: `f64` (odgi's CPU baseline) or `f32` (the
    /// paper's GPU coordinates; half the memory traffic per update).
    pub precision: Precision,
    /// Terms sampled per hot-loop block: worker threads draw this many
    /// terms, then apply them in one monomorphized straight-line pass.
    /// Amortizes sampler dispatch; larger blocks coarsen Hogwild
    /// interleaving but do not change the objective.
    pub term_block: usize,
    /// SIMD apply path: restructure the term-block loop into gather →
    /// lane-wide delta computation → scatter (4-wide f64 / 8-wide f32
    /// via the std-only [`crate::simd`] shim). `Auto` enables it for
    /// `f32` runs and for any multi-threaded run; the single-thread
    /// `f64` scalar path stays the bit-exact faithful baseline. Lane
    /// grouping reorders load/store interleaving within a group, so the
    /// vector path is tolerance-equivalent (not bit-equal) to scalar.
    pub simd: Toggle,
    /// Sharded-write Hogwild mode: each worker thread owns a contiguous
    /// node range and is the only writer of those coordinate cache
    /// lines; updates to foreign nodes are exchanged through per-thread
    /// spill buffers drained at term-block boundaries. Cuts cache-line
    /// ping-pong on many-core boxes. `Auto` enables it at ≥ 4 threads;
    /// `Off` is pure Hogwild (every thread writes everywhere).
    pub write_shard: Toggle,
    /// Pair-selection scheme.
    pub pair_selection: PairSelection,
    /// Initial-placement jitter amplitude relative to graph length.
    pub init_jitter: f64,
}

impl Default for LayoutConfig {
    fn default() -> Self {
        Self {
            iter_max: 30,
            steps_per_path_node: 10.0,
            eps: 0.01,
            eta_max: None,
            cooling_start: 0.5,
            zipf_theta: 0.99,
            zipf_space_max: 1000,
            zipf_quant: 100,
            threads: 0,
            seed: 93_992_202,
            data_layout: DataLayout::CacheFriendlyAos,
            precision: Precision::F64,
            term_block: 256,
            simd: Toggle::Auto,
            write_shard: Toggle::Auto,
            pair_selection: PairSelection::PgSgd,
            init_jitter: 0.01,
        }
    }
}

impl LayoutConfig {
    /// A small, fast configuration for unit tests: few iterations, the
    /// given thread count, deterministic seed.
    pub fn for_tests(threads: usize) -> Self {
        Self {
            iter_max: 12,
            steps_per_path_node: 5.0,
            threads,
            ..Self::default()
        }
    }

    /// Resolved worker-thread count.
    pub fn resolved_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }

    /// The first iteration at which cooling is unconditional
    /// (`iter ≥ N_iters/2` in Alg. 1 line 6).
    pub fn first_cooling_iter(&self) -> u32 {
        (self.iter_max as f64 * self.cooling_start).floor() as u32
    }

    /// Steps per iteration for a graph with `total_path_steps` path nodes.
    pub fn steps_per_iter(&self, total_path_steps: u64) -> u64 {
        (self.steps_per_path_node * total_path_steps as f64).ceil() as u64
    }

    /// The term-block size, clamped to `1..=`[`MAX_TERM_BLOCK`]: a zero
    /// block would stall the hot loop, and an absurd one is a per-thread
    /// allocation request (the service accepts this field from the
    /// network).
    pub fn resolved_term_block(&self) -> usize {
        self.term_block.clamp(1, MAX_TERM_BLOCK)
    }

    /// Whether the SIMD apply path is used. `Auto` ⇒ on for
    /// multi-threaded runs (already nondeterministic under Hogwild, and
    /// the block-structured gather/scatter doubles as the sharded write
    /// path's routing stage); off for single-thread runs — the `f64`
    /// baseline must stay bit-identical across releases, and for `f32`
    /// interleaved A/B pairs measured the lane path a few percent
    /// *slower* than the already memory-bound per-term loop at one
    /// thread. `--simd on` forces it.
    pub fn resolved_simd(&self) -> bool {
        self.simd.resolve(self.resolved_threads() > 1)
    }

    /// Whether the Hogwild engine runs in sharded-write mode. `Auto` ⇒
    /// on from 4 threads up, where coordinate cache-line ping-pong
    /// starts to dominate; below that the spill-buffer exchange costs
    /// more than the sharing it avoids.
    pub fn resolved_write_shard(&self) -> bool {
        self.write_shard.resolve(self.resolved_threads() >= 4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = LayoutConfig::default();
        assert_eq!(c.iter_max, 30);
        assert_eq!(c.steps_per_path_node, 10.0);
        assert_eq!(c.zipf_theta, 0.99);
        assert_eq!(c.cooling_start, 0.5);
        assert_eq!(c.first_cooling_iter(), 15);
    }

    #[test]
    fn steps_per_iter_is_factor_times_path_nodes() {
        let c = LayoutConfig::default();
        assert_eq!(c.steps_per_iter(1000), 10_000);
        let mut c2 = c.clone();
        c2.steps_per_path_node = 2.5;
        assert_eq!(c2.steps_per_iter(1000), 2_500);
    }

    #[test]
    fn resolved_threads_nonzero() {
        let mut c = LayoutConfig::default();
        assert!(c.resolved_threads() >= 1);
        c.threads = 3;
        assert_eq!(c.resolved_threads(), 3);
    }

    #[test]
    fn test_config_is_small() {
        let c = LayoutConfig::for_tests(2);
        assert!(c.iter_max <= 16);
        assert_eq!(c.threads, 2);
    }

    #[test]
    fn hot_path_axes_default_to_the_faithful_baseline() {
        let c = LayoutConfig::default();
        assert_eq!(c.precision, Precision::F64);
        assert!(c.term_block >= 1);
        assert_eq!(c.resolved_term_block(), c.term_block);
        let zero = LayoutConfig {
            term_block: 0,
            ..LayoutConfig::default()
        };
        assert_eq!(zero.resolved_term_block(), 1);
        let huge = LayoutConfig {
            term_block: usize::MAX,
            ..LayoutConfig::default()
        };
        assert_eq!(
            huge.resolved_term_block(),
            MAX_TERM_BLOCK,
            "network-supplied block sizes must not become giant allocations"
        );
    }

    #[test]
    fn toggle_parses_and_resolves() {
        assert_eq!(Toggle::parse_name("auto"), Some(Toggle::Auto));
        assert_eq!(Toggle::parse_name("on"), Some(Toggle::On));
        assert_eq!(Toggle::parse_name("off"), Some(Toggle::Off));
        assert_eq!(Toggle::parse_name("maybe"), None);
        assert_eq!(Toggle::default(), Toggle::Auto);
        assert!(Toggle::On.resolve(false));
        assert!(!Toggle::Off.resolve(true));
        assert!(Toggle::Auto.resolve(true));
        assert!(!Toggle::Auto.resolve(false));
        for t in [Toggle::Auto, Toggle::On, Toggle::Off] {
            assert_eq!(Toggle::parse_name(t.label()), Some(t));
        }
    }

    #[test]
    fn simd_auto_spares_the_faithful_f64_single_thread_baseline() {
        use crate::coords::Precision;
        let base = LayoutConfig {
            threads: 1,
            ..LayoutConfig::default()
        };
        assert!(!base.resolved_simd(), "f64 1-thread stays scalar");
        let f32_run = LayoutConfig {
            precision: Precision::F32,
            ..base.clone()
        };
        assert!(
            !f32_run.resolved_simd(),
            "f32 1-thread stays on the per-term loop (measured faster)"
        );
        let mt = LayoutConfig {
            threads: 2,
            ..base.clone()
        };
        assert!(mt.resolved_simd());
        let forced = LayoutConfig {
            simd: Toggle::On,
            ..base.clone()
        };
        assert!(forced.resolved_simd());
        let off = LayoutConfig {
            simd: Toggle::Off,
            threads: 8,
            precision: Precision::F32,
            ..LayoutConfig::default()
        };
        assert!(!off.resolved_simd());
    }

    #[test]
    fn write_shard_auto_starts_at_four_threads() {
        let mk = |threads, write_shard| LayoutConfig {
            threads,
            write_shard,
            ..LayoutConfig::default()
        };
        assert!(!mk(1, Toggle::Auto).resolved_write_shard());
        assert!(!mk(3, Toggle::Auto).resolved_write_shard());
        assert!(mk(4, Toggle::Auto).resolved_write_shard());
        assert!(mk(8, Toggle::Auto).resolved_write_shard());
        assert!(mk(1, Toggle::On).resolved_write_shard());
        assert!(!mk(8, Toggle::Off).resolved_write_shard());
    }
}
