//! # layout-core — path-guided SGD pangenome graph layout
//!
//! The paper's primary algorithm (Alg. 1), implemented as a small family of
//! engines over the same sampling and update-step machinery:
//!
//! * [`cpu::CpuEngine`] — a faithful port of the `odgi-layout`
//!   multithreaded CPU baseline: Hogwild! lock-free updates on relaxed
//!   atomics, Xoshiro256+ per-thread streams, Zipf-cooled pair selection,
//!   and a per-iteration barrier (mirroring odgi's iteration structure and
//!   the GPU port's one-kernel-per-iteration design). Supports both the
//!   original struct-of-arrays coordinate layout and the paper's
//!   cache-friendly array-of-structs layout ([`coords::DataLayout`]),
//!   which is the CPU half of the Table IX ablation.
//! * [`batch::BatchEngine`] — the PyTorch-style implementation of paper
//!   Sec. IV: synchronous mini-batch SGD assembled from tensor-like
//!   "kernel ops" (`index` gather/scatter, `pow`, `mul`, `where`, `add`),
//!   with per-op timing (Fig. 7), kernel-launch accounting (Table IV) and
//!   the batch-size/quality trade-off of Table III.
//!
//! The GPU-simulator engines (crate `gpu-sim`) reuse [`sampler`],
//! [`schedule`] and [`step`] so all engines optimize the identical
//! objective.

pub mod atomicf;
pub mod batch;
pub mod config;
pub mod control;
pub mod coords;
pub mod cpu;
pub mod init;
pub mod sampler;
pub mod scalar;
pub mod schedule;
pub mod simd;
pub mod sort1d;
pub mod step;

pub use batch::{BatchEngine, BatchReport, KernelOp};
pub use config::{LayoutConfig, PairSelection, Toggle};
pub use control::{EngineTelemetry, LayoutControl};
pub use coords::{CoordStore, DataLayout, Precision};
pub use cpu::{CpuEngine, RunReport};
pub use init::{init_linear, init_random};
pub use sampler::{PairSampler, Term};
pub use schedule::Schedule;
pub use sort1d::{order_quality, path_sgd_order};

use pangraph::layout2d::Layout2D;
use pangraph::lean::LeanGraph;

/// Common engine interface: consume a lean graph, produce a 2D layout.
pub trait LayoutEngine {
    /// Engine name for reports.
    fn name(&self) -> &str;
    /// Run the full layout schedule and return the result.
    fn layout(&self, lean: &LeanGraph) -> Layout2D;
    /// Progress- and cancellation-aware entry point, used by schedulers
    /// such as `pgl-service`. Returns `None` when the run was cancelled.
    ///
    /// The default implementation wraps [`LayoutEngine::layout`]: it
    /// honors a cancel requested *before* the run starts and reports
    /// completion afterwards, so engines keep working unmodified.
    /// Engines that can do better (see `CpuEngine`) override this to
    /// publish per-iteration progress and stop at iteration boundaries.
    fn layout_controlled(
        &self,
        lean: &LeanGraph,
        ctl: &control::LayoutControl,
    ) -> Option<Layout2D> {
        if ctl.is_cancelled() {
            return None;
        }
        let layout = self.layout(lean);
        ctl.finish();
        if ctl.is_cancelled() {
            None
        } else {
            Some(layout)
        }
    }
}

#[cfg(test)]
mod engine_trait_tests {
    use super::*;
    use workloads::{generate, PangenomeSpec};

    #[test]
    fn cpu_engine_implements_layout_engine() {
        let g = generate(&PangenomeSpec::basic("t", 60, 4, 1));
        let lean = LeanGraph::from_graph(&g);
        let cfg = LayoutConfig::for_tests(2);
        let engine = CpuEngine::new(cfg);
        let e: &dyn LayoutEngine = &engine;
        assert_eq!(e.name(), "cpu-hogwild");
        let layout = e.layout(&lean);
        assert!(layout.all_finite());
    }

    #[test]
    fn default_layout_controlled_works_for_unmodified_engines() {
        // An engine that only implements `layout`: the trait default
        // must run it to completion and honor pre-cancellation.
        struct PlainEngine(CpuEngine);
        impl LayoutEngine for PlainEngine {
            fn name(&self) -> &str {
                "plain"
            }
            fn layout(&self, lean: &LeanGraph) -> Layout2D {
                self.0.layout(lean)
            }
        }
        let g = generate(&PangenomeSpec::basic("t", 40, 3, 2));
        let lean = LeanGraph::from_graph(&g);
        let engine = PlainEngine(CpuEngine::new(LayoutConfig::for_tests(1)));
        let e: &dyn LayoutEngine = &engine;

        let ctl = LayoutControl::new();
        let layout = e.layout_controlled(&lean, &ctl).expect("completes");
        assert!(layout.all_finite());
        assert_eq!(ctl.progress(), 1.0);

        let cancelled = LayoutControl::new();
        cancelled.cancel();
        assert!(e.layout_controlled(&lean, &cancelled).is_none());
    }

    #[test]
    fn batch_and_gpu_overrides_report_real_progress() {
        // The service-facing satellite of the progress/cancel extension:
        // both engines publish fractional progress and honor
        // mid-run cancellation instead of the before/after-only default.
        let g = generate(&PangenomeSpec::basic("t", 60, 3, 3));
        let lean = LeanGraph::from_graph(&g);
        let engine = BatchEngine::new(LayoutConfig::for_tests(1), 64);
        let e: &dyn LayoutEngine = &engine;
        let ctl = LayoutControl::new();
        assert!(e.layout_controlled(&lean, &ctl).is_some());
        assert_eq!(ctl.progress(), 1.0);
    }
}
