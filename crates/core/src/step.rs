//! The SGD update step (Alg. 1 lines 14–15, Fig. 3).
//!
//! For a term with visualization points `v_i`, `v_j` and reference
//! distance `d`, path-guided SGD (following Zheng et al.'s SGD² and the
//! odgi-layout implementation) moves both points along the line joining
//! them:
//!
//! ```text
//! w  = d⁻²                      (term weight)
//! μ  = min(η·w, 1)              (capped step size)
//! Δ  = μ · (‖v_i − v_j‖ − d)/2  (half the residual, shared by both ends)
//! v_i ← v_i − Δ·û,   v_j ← v_j + Δ·û     with û = (v_i−v_j)/‖v_i−v_j‖
//! ```
//!
//! The μ cap is what lets the schedule start at `η_max = d_max²`: the very
//! first updates snap even the farthest pairs to their reference distance
//! without overshooting.

use crate::scalar::LayoutScalar;
use crate::simd::Lanes;

/// Coordinate deltas for the two points of one term: `(Δv_i, Δv_j)`.
pub type TermDeltas = ((f64, f64), (f64, f64));

/// Lane-wide update step: `W` independent terms at once, the same
/// arithmetic as [`term_deltas_t`] per lane (identical ops in identical
/// order, so each lane's result is bit-equal to a scalar call on the
/// same inputs). Returns `(rx, ry)` such that `Δv_i = (−rx, −ry)` and
/// `Δv_j = (rx, ry)` — the caller scatters both ends.
///
/// `#[inline(always)]`: this is the body the auto-vectorizer must see
/// inside the gather/scatter loop of `CoordStore::apply_block`; an
/// outlined call (cross-CGU without LTO) would forfeit the packed
/// divide/sqrt that makes the path worthwhile.
#[inline(always)]
pub fn term_deltas_lanes<T: LayoutScalar, const W: usize>(
    xi: Lanes<T, W>,
    yi: Lanes<T, W>,
    xj: Lanes<T, W>,
    yj: Lanes<T, W>,
    d_ref: Lanes<T, W>,
    eta: Lanes<T, W>,
) -> (Lanes<T, W>, Lanes<T, W>) {
    let one = Lanes::splat(T::ONE);
    let w = one / (d_ref * d_ref);
    let mu = (eta * w).min(one);
    let dx = xi - xj;
    let dy = yi - yj;
    let mag = (dx * dx + dy * dy).sqrt();
    // Coincident-point fallback, as blends instead of the scalar
    // branch: lanes with a degenerate magnitude get the deterministic
    // infinitesimal x-offset.
    let dx = Lanes::from_fn(|l| {
        if mag.0[l] < T::MAG_EPS {
            T::MAG_FALLBACK
        } else {
            dx.0[l]
        }
    });
    let dy = Lanes::from_fn(|l| {
        if mag.0[l] < T::MAG_EPS {
            T::ZERO
        } else {
            dy.0[l]
        }
    });
    let mag = mag.select_lt(T::MAG_EPS, Lanes::splat(T::MAG_FALLBACK));
    let delta = mu * (mag - d_ref) / Lanes::splat(T::TWO);
    let r = delta / mag;
    (r * dx, r * dy)
}

/// Precision-generic update step: the same arithmetic as [`term_deltas`],
/// monomorphized per [`LayoutScalar`] so the `f32` hot path computes —
/// not just stores — in single precision, exactly like the paper's CUDA
/// kernel. The `f64` instantiation is bit-identical to [`term_deltas`].
#[inline]
pub fn term_deltas_t<T: LayoutScalar>(
    vi: (T, T),
    vj: (T, T),
    d_ref: T,
    eta: T,
) -> ((T, T), (T, T)) {
    debug_assert!(d_ref > T::ZERO, "term deltas require positive d_ref");
    let w = T::ONE / (d_ref * d_ref);
    let mu = (eta * w).min_s(T::ONE);
    let mut dx = vi.0 - vj.0;
    let mut dy = vi.1 - vj.1;
    let mut mag = (dx * dx + dy * dy).sqrt();
    if mag < T::MAG_EPS {
        dx = T::MAG_FALLBACK;
        dy = T::ZERO;
        mag = T::MAG_FALLBACK;
    }
    let delta = mu * (mag - d_ref) / T::TWO;
    let r = delta / mag;
    let rx = r * dx;
    let ry = r * dy;
    ((-rx, -ry), (rx, ry))
}

/// Compute the Hogwild deltas for one update step. `d_ref` must be
/// positive (callers skip zero-distance terms).
///
/// When the two points coincide, a deterministic infinitesimal x-offset
/// stands in for the direction (odgi perturbs randomly; determinism aids
/// testing and changes nothing statistically).
#[inline]
pub fn term_deltas(vi: (f64, f64), vj: (f64, f64), d_ref: f64, eta: f64) -> TermDeltas {
    term_deltas_t::<f64>(vi, vj, d_ref, eta)
}

/// Convenience: the stress of a term after hypothetically applying the
/// deltas (used by convergence tests).
pub fn post_update_residual(vi: (f64, f64), vj: (f64, f64), d_ref: f64, eta: f64) -> f64 {
    let ((dix, diy), (djx, djy)) = term_deltas(vi, vj, d_ref, eta);
    let ni = (vi.0 + dix, vi.1 + diy);
    let nj = (vj.0 + djx, vj.1 + djy);
    let dist = ((ni.0 - nj.0).powi(2) + (ni.1 - nj.1).powi(2)).sqrt();
    (dist - d_ref).abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_move_when_distance_is_exact() {
        let (di, dj) = term_deltas((0.0, 0.0), (5.0, 0.0), 5.0, 10.0);
        assert_eq!(di, (0.0, 0.0));
        assert_eq!(dj, (0.0, 0.0));
    }

    #[test]
    fn attraction_when_too_far() {
        // Points 10 apart, reference 5: vi moves toward vj.
        let (di, dj) = term_deltas((0.0, 0.0), (10.0, 0.0), 5.0, 1e9);
        assert!(di.0 > 0.0, "vi moves right (toward vj): {di:?}");
        assert!(dj.0 < 0.0, "vj moves left (toward vi): {dj:?}");
        assert_eq!(di.1, 0.0);
    }

    #[test]
    fn repulsion_when_too_close() {
        let (di, dj) = term_deltas((0.0, 0.0), (1.0, 0.0), 5.0, 1e9);
        assert!(di.0 < 0.0, "vi moves away: {di:?}");
        assert!(dj.0 > 0.0, "vj moves away: {dj:?}");
    }

    #[test]
    fn full_mu_snaps_to_reference_distance() {
        // With μ capped at 1 the update halves the residual on each side:
        // the post-update distance equals d_ref exactly.
        let res = post_update_residual((0.0, 0.0), (10.0, 0.0), 4.0, 1e12);
        assert!(res < 1e-9, "residual {res}");
    }

    #[test]
    fn small_eta_takes_partial_step() {
        // μ = η/d² = 0.01·25⁻¹... pick η so μ = 0.5: η = 0.5·d² = 12.5.
        let d = 5.0;
        let (di, dj) = term_deltas((0.0, 0.0), (10.0, 0.0), d, 0.5 * d * d);
        // Δ = 0.5·(10−5)/2 = 1.25 on each side.
        assert!((di.0 - 1.25).abs() < 1e-12);
        assert!((dj.0 + 1.25).abs() < 1e-12);
        let res = post_update_residual((0.0, 0.0), (10.0, 0.0), d, 0.5 * d * d);
        assert!((res - 2.5).abs() < 1e-12, "half the residual remains");
    }

    #[test]
    fn deltas_are_antisymmetric() {
        let (di, dj) = term_deltas((1.0, 2.0), (4.0, 6.0), 3.0, 2.0);
        assert!((di.0 + dj.0).abs() < 1e-15);
        assert!((di.1 + dj.1).abs() < 1e-15);
    }

    #[test]
    fn update_is_along_the_joining_line() {
        let vi = (0.0, 0.0);
        let vj = (3.0, 4.0);
        let (di, _) = term_deltas(vi, vj, 2.0, 1e9);
        // Direction must be parallel to (vi - vj) = (-3, -4).
        let cross = di.0 * (-4.0) - di.1 * (-3.0);
        assert!(cross.abs() < 1e-12, "cross product {cross}");
    }

    #[test]
    fn coincident_points_separate_deterministically() {
        let (di, dj) = term_deltas((1.0, 1.0), (1.0, 1.0), 2.0, 1e9);
        assert_ne!(di, (0.0, 0.0));
        assert_ne!(dj, (0.0, 0.0));
        // And both calls agree.
        let (di2, _) = term_deltas((1.0, 1.0), (1.0, 1.0), 2.0, 1e9);
        assert_eq!(di, di2);
    }

    #[test]
    fn mu_cap_prevents_overshoot() {
        // Even with a huge eta the post-update residual never flips sign
        // past the reference distance (monotone approach).
        for eta in [1.0, 1e3, 1e6, 1e12] {
            let res = post_update_residual((0.0, 0.0), (100.0, 0.0), 30.0, eta);
            assert!(res <= 70.0 + 1e-9, "eta {eta}: residual {res}");
        }
    }

    #[test]
    fn f32_instantiation_tracks_f64_within_single_precision() {
        for (vi, vj, d, eta) in [
            ((0.0, 0.0), (10.0, 0.0), 5.0, 1e3),
            ((1.0, 2.0), (4.0, 6.0), 3.0, 2.0),
            ((0.0, 0.0), (1.0, 0.0), 5.0, 1e9),
            ((1.0, 1.0), (1.0, 1.0), 2.0, 1e9), // coincident fallback
        ] {
            let (di, dj) = term_deltas(vi, vj, d, eta);
            let (si, sj) = term_deltas_t::<f32>(
                (vi.0 as f32, vi.1 as f32),
                (vj.0 as f32, vj.1 as f32),
                d as f32,
                eta as f32,
            );
            for (a, b) in [(di.0, si.0), (di.1, si.1), (dj.0, sj.0), (dj.1, sj.1)] {
                let tol = (a.abs() * 1e-5).max(1e-6);
                assert!(
                    (a - b as f64).abs() <= tol,
                    "f64 {a} vs f32 {b} for {vi:?} {vj:?} d={d} eta={eta}"
                );
            }
        }
    }

    #[test]
    fn lane_kernel_is_bit_identical_to_scalar_kernel_per_lane() {
        use crate::simd::Lanes;
        // Mixed regular / degenerate / huge-eta lanes in one pack: every
        // lane must reproduce the scalar kernel's bits exactly, for both
        // precisions.
        let cases = [
            ((0.0, 0.0), (10.0, 0.0), 5.0, 1e3),
            ((1.0, 2.0), (4.0, 6.0), 3.0, 2.0),
            ((1.0, 1.0), (1.0, 1.0), 2.0, 1e9), // coincident fallback
            ((-3.5, 0.25), (7.0, -1.5), 12.0, 0.7),
        ];
        let (rx, ry) = term_deltas_lanes::<f64, 4>(
            Lanes(std::array::from_fn(|l| cases[l].0 .0)),
            Lanes(std::array::from_fn(|l| cases[l].0 .1)),
            Lanes(std::array::from_fn(|l| cases[l].1 .0)),
            Lanes(std::array::from_fn(|l| cases[l].1 .1)),
            Lanes(std::array::from_fn(|l| cases[l].2)),
            Lanes(std::array::from_fn(|l| cases[l].3)),
        );
        for (l, (vi, vj, d, eta)) in cases.into_iter().enumerate() {
            let (di, dj) = term_deltas_t::<f64>(vi, vj, d, eta);
            assert_eq!(rx.0[l].to_bits(), dj.0.to_bits(), "lane {l} rx");
            assert_eq!(ry.0[l].to_bits(), dj.1.to_bits(), "lane {l} ry");
            assert_eq!((-rx.0[l]).to_bits(), di.0.to_bits(), "lane {l} -rx");
        }
        // f32, 8 lanes (cases cycled).
        let at = |l: usize| cases[l % 4];
        let (rx32, ry32) = term_deltas_lanes::<f32, 8>(
            Lanes(std::array::from_fn(|l| at(l).0 .0 as f32)),
            Lanes(std::array::from_fn(|l| at(l).0 .1 as f32)),
            Lanes(std::array::from_fn(|l| at(l).1 .0 as f32)),
            Lanes(std::array::from_fn(|l| at(l).1 .1 as f32)),
            Lanes(std::array::from_fn(|l| at(l).2 as f32)),
            Lanes(std::array::from_fn(|l| at(l).3 as f32)),
        );
        for l in 0..8 {
            let (vi, vj, d, eta) = at(l);
            let (_, sj) = term_deltas_t::<f32>(
                (vi.0 as f32, vi.1 as f32),
                (vj.0 as f32, vj.1 as f32),
                d as f32,
                eta as f32,
            );
            assert_eq!(rx32.0[l].to_bits(), sj.0.to_bits(), "f32 lane {l}");
            assert_eq!(ry32.0[l].to_bits(), sj.1.to_bits(), "f32 lane {l}");
        }
    }

    #[test]
    fn repeated_updates_converge_to_reference() {
        let mut vi = (0.0, 0.0);
        let mut vj = (1.0, 0.0);
        let d = 10.0;
        for _ in 0..200 {
            let (di, dj) = term_deltas(vi, vj, d, 20.0); // μ = 0.2
            vi = (vi.0 + di.0, vi.1 + di.1);
            vj = (vj.0 + dj.0, vj.1 + dj.1);
        }
        let dist = ((vi.0 - vj.0).powi(2) + (vi.1 - vj.1).powi(2)).sqrt();
        assert!((dist - d).abs() < 1e-6, "converged distance {dist}");
    }
}
