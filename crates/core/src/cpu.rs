//! The multithreaded Hogwild! CPU engine — a faithful port of
//! `odgi-layout`'s path-guided SGD (the paper's CPU baseline).
//!
//! Execution structure mirrors both the original and the paper's GPU
//! design: one *iteration* = one learning-rate value = one parallel sweep
//! of `N_steps` update steps, with a barrier between iterations (odgi
//! joins its worker pool per iteration; the GPU port launches one CUDA
//! kernel per iteration and synchronizes between launches). Within an
//! iteration, worker threads perform steps independently:
//!
//! * each thread owns a Xoshiro256+ stream placed 2¹²⁸ draws apart,
//! * steps are processed in *term blocks* (`LayoutConfig::term_block`):
//!   a thread samples a block of terms, then applies it through one
//!   monomorphized straight-line pass
//!   ([`CoordStore::apply_block`]) — the block hoists the layout ×
//!   precision dispatch out of the per-term path and amortizes sampler
//!   entry, mirroring the paper's batched term updates (Sec. V-B),
//! * coordinate updates are relaxed-atomic read-modify-writes with **no**
//!   synchronization (Hogwild!), racing exactly as the original does,
//! * the shared [`PairSampler`] and [`LeanGraph`] are read-only.
//!
//! Because sampling never reads coordinates, block application is
//! bit-identical to interleaved sample/apply on a single thread — block
//! size is purely a performance knob.
//!
//! Two optional kernel shapes layer on top (`LayoutConfig::simd`,
//! `LayoutConfig::write_shard`):
//!
//! * **SIMD apply** — blocks go through
//!   [`CoordStore::apply_block_simd`]'s gather → lane kernel → scatter
//!   path. Auto-enabled for multithreaded runs, where results are
//!   already not bit-pinned; single-thread runs keep the per-term loop
//!   (bit-stability for `f64`, and measured faster for `f32` too).
//! * **Sharded writes** — each thread owns a contiguous node range for
//!   write-back. Deltas to foreign nodes are buffered in per-thread
//!   spill vectors ([`ShardSpills`]) and posted to per-`(owner, sender)`
//!   mailboxes at block boundaries; owners drain their mailboxes after
//!   each block and once more at the iteration barrier. This trades a
//!   bounded delta delay (within an iteration) for writes that never
//!   cross shard cache lines, removing inter-core coherence traffic on
//!   the coordinate slabs. Auto-enabled at ≥ 4 threads.

use crate::config::LayoutConfig;
use crate::control::LayoutControl;
use crate::coords::{CoordStore, ShardSpills, SpillEntry};
use crate::init::init_linear;
use crate::sampler::{PairSampler, Term};
use crate::schedule::Schedule;
use crate::LayoutEngine;
use pangraph::layout2d::Layout2D;
use pangraph::lean::LeanGraph;
use pgrng::Xoshiro256Plus;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};
use std::time::{Duration, Instant};

/// Per-`(owner, sender)` spill mailboxes for sharded-write mode.
/// Slot `owner * threads + sender` is only ever touched by those two
/// threads, so lock contention is a two-party affair per slot.
type Mailboxes = Vec<Mutex<Vec<SpillEntry>>>;

/// Post this thread's accumulated foreign-shard deltas to the owners'
/// mailboxes. An empty mailbox slot takes the whole buffer by swap
/// (no copying); a non-empty one gets appended to.
fn post_spills(mail: &Mailboxes, tid: usize, threads: usize, spills: &mut ShardSpills) {
    for dst in 0..threads {
        if dst == tid || spills.bufs[dst].is_empty() {
            continue;
        }
        let mut slot = mail[dst * threads + tid].lock().unwrap();
        if slot.is_empty() {
            std::mem::swap(&mut *slot, &mut spills.bufs[dst]);
        } else {
            slot.append(&mut spills.bufs[dst]);
        }
    }
}

/// Drain every mailbox addressed to this thread, recomputing and
/// applying the deferred term halves to the nodes it owns. The buffer
/// is swapped out under the lock and applied outside it.
fn drain_spills(
    store: &CoordStore,
    mail: &Mailboxes,
    tid: usize,
    threads: usize,
    eta: f64,
    scratch: &mut Vec<SpillEntry>,
) {
    for src in 0..threads {
        if src == tid {
            continue;
        }
        {
            let mut slot = mail[tid * threads + src].lock().unwrap();
            if slot.is_empty() {
                continue;
            }
            std::mem::swap(&mut *slot, scratch);
        }
        store.apply_spills(scratch, eta);
        scratch.clear();
    }
}

/// Statistics from one engine run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Wall-clock time of the SGD loop (excludes graph flattening).
    pub wall: Duration,
    /// Steps attempted (`N_iters × N_steps`).
    pub steps_attempted: u64,
    /// Terms actually applied (attempted minus rejected draws).
    pub terms_applied: u64,
    /// Worker threads used.
    pub threads: usize,
    /// Iterations executed.
    pub iters: u32,
}

impl RunReport {
    /// Applied updates per second of wall time.
    pub fn updates_per_sec(&self) -> f64 {
        self.terms_applied as f64 / self.wall.as_secs_f64().max(1e-12)
    }
}

/// A completed run with optional per-iteration snapshots.
pub struct CpuRun {
    /// Final layout.
    pub layout: Layout2D,
    /// Run statistics.
    pub report: RunReport,
    /// `(iteration, layout-after-that-iteration)` snapshots.
    pub snapshots: Vec<(u32, Layout2D)>,
}

/// The Hogwild CPU layout engine.
pub struct CpuEngine {
    cfg: LayoutConfig,
}

impl CpuEngine {
    /// Create an engine with the given configuration.
    pub fn new(cfg: LayoutConfig) -> Self {
        Self { cfg }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &LayoutConfig {
        &self.cfg
    }

    /// Run the full schedule; returns the layout and statistics.
    pub fn run(&self, lean: &LeanGraph) -> (Layout2D, RunReport) {
        let r = self.run_with_snapshots(lean, &[]);
        (r.layout, r.report)
    }

    /// Run the full schedule from a caller-provided initial layout.
    pub fn run_from(&self, lean: &LeanGraph, initial: &Layout2D) -> (Layout2D, RunReport) {
        let r = self.run_inner(lean, Some(initial), &[], None);
        (r.layout, r.report)
    }

    /// Run, capturing layout snapshots after the listed iterations
    /// (used by the Fig. 12 quality-progression experiment).
    pub fn run_with_snapshots(&self, lean: &LeanGraph, snapshot_iters: &[u32]) -> CpuRun {
        self.run_inner(lean, None, snapshot_iters, None)
    }

    /// Run under a [`LayoutControl`]: progress is published after every
    /// iteration and cancellation is honored at the next iteration
    /// barrier. Returns `None` when the run was cancelled (the partial
    /// layout is discarded).
    pub fn run_controlled(
        &self,
        lean: &LeanGraph,
        ctl: &LayoutControl,
    ) -> Option<(Layout2D, RunReport)> {
        if ctl.is_cancelled() {
            return None;
        }
        let r = self.run_inner(lean, None, &[], Some(ctl));
        if ctl.is_cancelled() {
            None
        } else {
            ctl.finish();
            Some((r.layout, r.report))
        }
    }

    fn run_inner(
        &self,
        lean: &LeanGraph,
        initial: Option<&Layout2D>,
        snapshot_iters: &[u32],
        ctl: Option<&LayoutControl>,
    ) -> CpuRun {
        let cfg = &self.cfg;
        let store = CoordStore::with_precision(cfg.data_layout, cfg.precision, lean);
        match initial {
            Some(l) => store.load_from(l),
            None => store.load_from(&init_linear(lean, cfg.init_jitter, cfg.seed)),
        }

        let total_steps = lean.total_steps() as u64;
        let d_max = (lean.max_path_nuc_len() as f64).max(1.0);
        if total_steps == 0 || lean.max_path_steps() < 2 {
            // Degenerate graph: nothing to optimize.
            return CpuRun {
                layout: store.to_layout(),
                report: RunReport {
                    wall: Duration::ZERO,
                    steps_attempted: 0,
                    terms_applied: 0,
                    threads: cfg.resolved_threads(),
                    iters: 0,
                },
                snapshots: Vec::new(),
            };
        }

        let schedule = Schedule::new(cfg, d_max);
        let sampler = PairSampler::new(lean, cfg);
        let threads = cfg.resolved_threads();
        let use_simd = cfg.resolved_simd();
        let sharded = cfg.resolved_write_shard();
        let steps_per_iter = cfg.steps_per_iter(total_steps);
        let applied = AtomicU64::new(0);
        let iters_done = AtomicU64::new(0);
        let stop = AtomicBool::new(false);
        let barrier = Barrier::new(threads);
        let rngs = Xoshiro256Plus::split_streams(cfg.seed, threads);
        let snapshots: std::sync::Mutex<Vec<(u32, Layout2D)>> = std::sync::Mutex::new(Vec::new());
        // Spill mailboxes exist only in sharded-write mode.
        let mailboxes: Option<Mailboxes> = sharded.then(|| {
            (0..threads * threads)
                .map(|_| Mutex::new(Vec::new()))
                .collect()
        });

        let t0 = Instant::now();
        std::thread::scope(|scope| {
            for (tid, mut rng) in rngs.into_iter().enumerate() {
                let store = &store;
                let sampler = &sampler;
                let schedule = &schedule;
                let applied = &applied;
                let barrier = &barrier;
                let snapshots = &snapshots;
                // Split N_steps across threads; thread 0 takes the slack.
                let base = steps_per_iter / threads as u64;
                let my_steps = if tid == 0 {
                    base + steps_per_iter % threads as u64
                } else {
                    base
                };
                let iters_done = &iters_done;
                let stop = &stop;
                let mailboxes = &mailboxes;
                let term_block = cfg.resolved_term_block();
                scope.spawn(move || {
                    let mut my_applied = 0u64;
                    // Applied terms already flushed to the control's
                    // telemetry counters (controlled runs only).
                    let mut my_flushed = 0u64;
                    let mut block: Vec<Term> =
                        Vec::with_capacity(term_block.min(my_steps as usize));
                    let mut spills = ShardSpills::new(threads);
                    let mut scratch: Vec<SpillEntry> = Vec::new();
                    for iter in 0..cfg.iter_max {
                        let eta = schedule.eta(iter);
                        // Sample a block of terms, then apply it in one
                        // monomorphized pass: the layout × precision
                        // dispatch runs once per block, not per term.
                        let mut left = my_steps;
                        while left > 0 {
                            let want = left.min(term_block as u64) as usize;
                            left -= want as u64;
                            let got = sampler.sample_block(lean, &mut rng, iter, want, &mut block);
                            match mailboxes {
                                Some(mail) => {
                                    store.apply_block_sharded(
                                        &block,
                                        eta,
                                        use_simd,
                                        tid,
                                        threads,
                                        &mut spills,
                                    );
                                    // Block boundary: hand foreign deltas
                                    // to their owners, absorb ours.
                                    post_spills(mail, tid, threads, &mut spills);
                                    drain_spills(store, mail, tid, threads, eta, &mut scratch);
                                }
                                None if use_simd => store.apply_block_simd(&block, eta),
                                None => store.apply_block(&block, eta),
                            }
                            my_applied += got as u64;
                        }
                        if let Some(mail) = mailboxes {
                            // All posts for this iteration precede this
                            // barrier; one final drain applies any deltas
                            // posted after our last block-boundary drain.
                            // The iteration barrier below then publishes
                            // the fully-drained coordinates.
                            barrier.wait();
                            drain_spills(store, mail, tid, threads, eta, &mut scratch);
                        }
                        // Iteration barrier (odgi's join; the GPU's kernel
                        // boundary).
                        barrier.wait();
                        if snapshot_iters.contains(&iter) {
                            if tid == 0 {
                                snapshots.lock().unwrap().push((iter, store.to_layout()));
                            }
                            barrier.wait();
                        }
                        if let Some(ctl) = ctl {
                            // Flush this thread's applied-terms delta to
                            // the live telemetry counter: one relaxed
                            // fetch_add per thread per iteration, never
                            // per term, so the hot loop stays untouched.
                            ctl.telemetry().add_applied(my_applied - my_flushed);
                            my_flushed = my_applied;
                            // Thread 0 publishes progress and folds the
                            // cancel flag into `stop`; the second barrier
                            // guarantees every thread reads the same
                            // decision, so all break at the same
                            // iteration and nobody deadlocks waiting.
                            if tid == 0 {
                                iters_done.store(iter as u64 + 1, Ordering::Relaxed);
                                ctl.telemetry().set_iteration(iter + 1, cfg.iter_max);
                                ctl.set_progress(iter as u64 + 1, cfg.iter_max as u64);
                                if ctl.is_cancelled() {
                                    stop.store(true, Ordering::Relaxed);
                                }
                            }
                            barrier.wait();
                            if stop.load(Ordering::Relaxed) {
                                break;
                            }
                        }
                    }
                    applied.fetch_add(my_applied, Ordering::Relaxed);
                });
            }
        });
        let wall = t0.elapsed();

        let executed = match ctl {
            Some(_) => iters_done.load(Ordering::Relaxed) as u32,
            None => cfg.iter_max,
        };
        CpuRun {
            layout: store.to_layout(),
            report: RunReport {
                wall,
                steps_attempted: steps_per_iter * executed as u64,
                terms_applied: applied.load(Ordering::Relaxed),
                threads,
                iters: executed,
            },
            snapshots: snapshots.into_inner().unwrap(),
        }
    }
}

impl LayoutEngine for CpuEngine {
    fn name(&self) -> &str {
        "cpu-hogwild"
    }

    fn layout(&self, lean: &LeanGraph) -> Layout2D {
        self.run(lean).0
    }

    fn layout_controlled(&self, lean: &LeanGraph, ctl: &LayoutControl) -> Option<Layout2D> {
        self.run_controlled(lean, ctl).map(|(layout, _)| layout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PairSelection;
    use crate::coords::DataLayout;
    use pgmetrics::{sampled_path_stress, SamplingConfig};
    use workloads::{generate, PangenomeSpec};

    fn test_graph(sites: usize, haps: usize, seed: u64) -> LeanGraph {
        LeanGraph::from_graph(&generate(&PangenomeSpec::basic("t", sites, haps, seed)))
    }

    fn quality(layout: &Layout2D, lean: &LeanGraph) -> f64 {
        sampled_path_stress(
            layout,
            lean,
            SamplingConfig {
                samples_per_node: 30,
                seed: 11,
            },
        )
        .mean
    }

    #[test]
    fn layout_improves_over_random_init() {
        let lean = test_graph(300, 6, 1);
        let cfg = LayoutConfig {
            iter_max: 20,
            threads: 2,
            ..LayoutConfig::default()
        };
        let engine = CpuEngine::new(cfg);
        let total: f64 = lean.node_len.iter().map(|&l| l as f64).sum();
        let random = crate::init::init_random(&lean, total, 5);
        let before = quality(&random, &lean);
        let (after_layout, report) = engine.run_from(&lean, &random);
        let after = quality(&after_layout, &lean);
        assert!(
            after < before / 5.0,
            "stress should drop sharply: before {before}, after {after}"
        );
        assert!(report.terms_applied > 0);
        assert!(after_layout.all_finite());
    }

    #[test]
    fn single_thread_run_is_deterministic() {
        let lean = test_graph(150, 4, 2);
        let cfg = LayoutConfig {
            threads: 1,
            iter_max: 8,
            ..LayoutConfig::default()
        };
        let a = CpuEngine::new(cfg.clone()).run(&lean).0;
        let b = CpuEngine::new(cfg).run(&lean).0;
        assert_eq!(a, b, "single-threaded runs must be bit-identical");
    }

    #[test]
    fn multithreaded_quality_matches_single_thread() {
        // Hogwild races change bits but not quality (paper Sec. III-A).
        let lean = test_graph(400, 8, 3);
        let mk = |threads| LayoutConfig {
            threads,
            iter_max: 15,
            ..LayoutConfig::default()
        };
        let (l1, _) = CpuEngine::new(mk(1)).run(&lean);
        let (l4, _) = CpuEngine::new(mk(4)).run(&lean);
        let q1 = quality(&l1, &lean);
        let q4 = quality(&l4, &lean);
        assert!(
            q4 < q1 * 3.0 + 0.05,
            "4-thread quality {q4} should be comparable to 1-thread {q1}"
        );
    }

    #[test]
    fn term_block_size_does_not_change_single_thread_results() {
        // Sampling never reads coordinates, so block application is
        // bit-identical to interleaved sample/apply on one thread: the
        // block size is purely a performance knob.
        let lean = test_graph(150, 4, 13);
        let mk = |term_block| LayoutConfig {
            threads: 1,
            iter_max: 6,
            term_block,
            ..LayoutConfig::default()
        };
        let one = CpuEngine::new(mk(1)).run(&lean).0;
        let small = CpuEngine::new(mk(7)).run(&lean).0;
        let big = CpuEngine::new(mk(1024)).run(&lean).0;
        assert_eq!(one, small, "block=7 must match block=1 bitwise");
        assert_eq!(one, big, "block=1024 must match block=1 bitwise");
    }

    #[test]
    fn f32_runs_are_deterministic_and_converge() {
        use crate::coords::Precision;
        let lean = test_graph(250, 5, 14);
        let cfg = LayoutConfig {
            threads: 1,
            iter_max: 12,
            precision: Precision::F32,
            ..LayoutConfig::default()
        };
        let (a, report) = CpuEngine::new(cfg.clone()).run(&lean);
        let (b, _) = CpuEngine::new(cfg).run(&lean);
        assert_eq!(a, b, "single-threaded f32 runs must be bit-identical");
        assert!(report.terms_applied > 0);
        assert!(a.all_finite());
        let q = quality(&a, &lean);
        assert!(q < 1.0, "f32 quality {q}");
    }

    #[test]
    fn write_shard_on_is_bit_identical_to_off_at_one_thread() {
        // With one thread every node is self-owned: the routed scatter
        // degenerates to direct Hogwild adds and must not change bits.
        use crate::config::Toggle;
        let lean = test_graph(150, 4, 21);
        let mk = |write_shard| LayoutConfig {
            threads: 1,
            iter_max: 6,
            write_shard,
            ..LayoutConfig::default()
        };
        let off = CpuEngine::new(mk(Toggle::Off)).run(&lean).0;
        let on = CpuEngine::new(mk(Toggle::On)).run(&lean).0;
        assert_eq!(off, on);
    }

    #[test]
    fn simd_kernel_converges_on_one_thread_f64() {
        // Forcing the vector path on the bit-pinned default combination:
        // results may differ in bits (gather/scatter interleaving) but
        // must match in quality.
        use crate::config::Toggle;
        let lean = test_graph(250, 5, 22);
        let mk = |simd| LayoutConfig {
            threads: 1,
            iter_max: 12,
            simd,
            ..LayoutConfig::default()
        };
        let (scalar, _) = CpuEngine::new(mk(Toggle::Off)).run(&lean);
        let (vector, _) = CpuEngine::new(mk(Toggle::On)).run(&lean);
        let qs = quality(&scalar, &lean);
        let qv = quality(&vector, &lean);
        assert!(vector.all_finite());
        assert!(
            qv < qs * 1.5 + 0.05,
            "vector-path quality {qv} should match scalar {qs}"
        );
    }

    #[test]
    fn sharded_multithread_quality_matches_hogwild() {
        use crate::config::Toggle;
        let lean = test_graph(400, 8, 23);
        let mk = |write_shard| LayoutConfig {
            threads: 4,
            iter_max: 15,
            write_shard,
            ..LayoutConfig::default()
        };
        let (hog, _) = CpuEngine::new(mk(Toggle::Off)).run(&lean);
        let (shard, _) = CpuEngine::new(mk(Toggle::On)).run(&lean);
        let qh = quality(&hog, &lean);
        let qs = quality(&shard, &lean);
        assert!(shard.all_finite());
        assert!(
            qs < qh * 3.0 + 0.05,
            "sharded quality {qs} should be comparable to pure Hogwild {qh}"
        );
    }

    #[test]
    fn both_data_layouts_converge() {
        let lean = test_graph(250, 5, 4);
        for layout_kind in [DataLayout::OriginalSoa, DataLayout::CacheFriendlyAos] {
            let cfg = LayoutConfig {
                data_layout: layout_kind,
                threads: 2,
                iter_max: 12,
                ..LayoutConfig::default()
            };
            let (l, _) = CpuEngine::new(cfg).run(&lean);
            let q = quality(&l, &lean);
            assert!(q < 1.0, "{layout_kind:?} quality {q}");
        }
    }

    #[test]
    fn fixed_hop_selection_converges_worse() {
        // Paper Fig. 6: forcing all pairs 10 hops apart kills convergence.
        let lean = test_graph(300, 6, 5);
        let total: f64 = lean.node_len.iter().map(|&l| l as f64).sum();
        let random = crate::init::init_random(&lean, total, 7);
        let mk = |sel| LayoutConfig {
            pair_selection: sel,
            threads: 2,
            iter_max: 15,
            ..LayoutConfig::default()
        };
        let (good, _) = CpuEngine::new(mk(PairSelection::PgSgd)).run_from(&lean, &random);
        let (bad, _) = CpuEngine::new(mk(PairSelection::FixedHop(10))).run_from(&lean, &random);
        let qg = quality(&good, &lean);
        let qb = quality(&bad, &lean);
        assert!(
            qb > 3.0 * qg,
            "fixed-hop stress {qb} should be far above pg-sgd stress {qg}"
        );
    }

    #[test]
    fn snapshots_are_captured_in_order() {
        let lean = test_graph(100, 4, 6);
        let cfg = LayoutConfig {
            threads: 2,
            iter_max: 10,
            ..LayoutConfig::default()
        };
        let run = CpuEngine::new(cfg).run_with_snapshots(&lean, &[0, 4, 9]);
        assert_eq!(run.snapshots.len(), 3);
        assert_eq!(
            run.snapshots.iter().map(|(i, _)| *i).collect::<Vec<_>>(),
            vec![0, 4, 9]
        );
        // The last snapshot equals the final layout (iteration 9 is last).
        assert_eq!(run.snapshots[2].1, run.layout);
    }

    #[test]
    fn snapshot_quality_improves_monotonically_ish() {
        let lean = test_graph(300, 6, 7);
        let cfg = LayoutConfig {
            threads: 2,
            iter_max: 16,
            ..LayoutConfig::default()
        };
        // Start from random so there is headroom to improve.
        let engine = CpuEngine::new(cfg);
        let total: f64 = lean.node_len.iter().map(|&l| l as f64).sum();
        let random = crate::init::init_random(&lean, total, 8);
        // run_from doesn't capture snapshots; emulate by comparing a short
        // run against a long run.
        let short = CpuEngine::new(LayoutConfig {
            threads: 2,
            iter_max: 3,
            ..LayoutConfig::default()
        });
        let (l_short, _) = short.run_from(&lean, &random);
        let (l_long, _) = engine.run_from(&lean, &random);
        assert!(quality(&l_long, &lean) <= quality(&l_short, &lean) * 1.5);
    }

    #[test]
    fn report_counts_are_consistent() {
        let lean = test_graph(120, 4, 9);
        let cfg = LayoutConfig {
            threads: 3,
            iter_max: 5,
            ..LayoutConfig::default()
        };
        let (_, report) = CpuEngine::new(cfg.clone()).run(&lean);
        assert_eq!(
            report.steps_attempted,
            cfg.steps_per_iter(lean.total_steps() as u64) * 5
        );
        assert!(report.terms_applied <= report.steps_attempted);
        assert!(report.terms_applied > report.steps_attempted / 2);
        assert_eq!(report.threads, 3);
        assert!(report.updates_per_sec() > 0.0);
    }

    #[test]
    fn controlled_run_completes_with_full_progress() {
        let lean = test_graph(80, 3, 10);
        let ctl = LayoutControl::new();
        let (layout, report) = CpuEngine::new(LayoutConfig::for_tests(2))
            .run_controlled(&lean, &ctl)
            .expect("uncancelled run completes");
        assert!(layout.all_finite());
        assert_eq!(ctl.progress(), 1.0);
        assert_eq!(report.iters, LayoutConfig::for_tests(2).iter_max);
    }

    #[test]
    fn controlled_run_publishes_live_telemetry() {
        let lean = test_graph(80, 3, 15);
        let ctl = LayoutControl::new();
        let cfg = LayoutConfig::for_tests(2);
        let (_, report) = CpuEngine::new(cfg.clone())
            .run_controlled(&lean, &ctl)
            .expect("uncancelled run completes");
        // Every applied term was flushed by the final iteration barrier.
        assert_eq!(ctl.telemetry().terms_applied(), report.terms_applied);
        assert_eq!(ctl.telemetry().iteration(), (report.iters, cfg.iter_max));
    }

    #[test]
    fn cancel_before_start_runs_nothing() {
        let lean = test_graph(50, 3, 11);
        let ctl = LayoutControl::new();
        ctl.cancel();
        assert!(CpuEngine::new(LayoutConfig::for_tests(1))
            .run_controlled(&lean, &ctl)
            .is_none());
    }

    #[test]
    fn cancel_mid_run_stops_at_an_iteration_boundary() {
        let lean = test_graph(200, 5, 12);
        // Far more iterations than we are willing to wait for: the test
        // only terminates promptly because cancellation works.
        let cfg = LayoutConfig {
            iter_max: 100_000,
            threads: 2,
            ..LayoutConfig::default()
        };
        let engine = CpuEngine::new(cfg);
        let ctl = LayoutControl::new();
        std::thread::scope(|s| {
            s.spawn(|| {
                while ctl.progress() == 0.0 {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                ctl.cancel();
            });
            assert!(engine.run_controlled(&lean, &ctl).is_none());
        });
    }

    #[test]
    fn degenerate_graph_returns_init() {
        use pangraph::model::{GraphBuilder, Handle};
        let mut b = GraphBuilder::new();
        let a = b.add_node_len(5);
        b.add_path("single", vec![Handle::forward(a)]);
        let lean = LeanGraph::from_graph(&b.build());
        let (layout, report) = CpuEngine::new(LayoutConfig::for_tests(2)).run(&lean);
        assert_eq!(report.terms_applied, 0);
        assert!(layout.all_finite());
    }
}
