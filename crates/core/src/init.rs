//! Initial layout placement.
//!
//! `odgi-layout` seeds the optimization with nodes spread along the x-axis
//! in graph order (cumulative node-length offsets) plus a small random
//! vertical jitter — variation graphs are nearly linear, so this is an
//! excellent warm start. A uniform-random placement is also provided for
//! the quality-progression experiments (paper Fig. 12 needs layouts all
//! the way from "random, stress 142" down to "converged, stress 0.07").

use pangraph::layout2d::Layout2D;
use pangraph::lean::LeanGraph;
use pgrng::{Rng64, Xoshiro256Plus};

/// Graph-order linear initialization: node `i`'s segment spans
/// `[offset_i, offset_i + len_i]` on the x-axis, with vertical jitter of
/// amplitude `jitter_frac × total_length`.
pub fn init_linear(lean: &LeanGraph, jitter_frac: f64, seed: u64) -> Layout2D {
    let mut rng = Xoshiro256Plus::seed_from_u64(seed);
    let n = lean.node_count();
    let total: f64 = lean.node_len.iter().map(|&l| l as f64).sum();
    let amp = jitter_frac.max(0.0) * total;
    let mut layout = Layout2D::zeros(n);
    let mut offset = 0.0f64;
    for (i, &len) in lean.node_len.iter().enumerate() {
        let y0 = (rng.next_f64() - 0.5) * amp;
        let y1 = (rng.next_f64() - 0.5) * amp;
        layout.set(i as u32, false, offset, y0);
        layout.set(i as u32, true, offset + len as f64, y1);
        offset += len as f64;
    }
    layout
}

/// Uniform-random initialization inside a centered square of side
/// `extent` (endpoint pairs placed independently — a genuinely bad start).
pub fn init_random(lean: &LeanGraph, extent: f64, seed: u64) -> Layout2D {
    assert!(extent > 0.0, "extent must be positive");
    let mut rng = Xoshiro256Plus::seed_from_u64(seed);
    let n = lean.node_count();
    let mut layout = Layout2D::zeros(n);
    for i in 0..n as u32 {
        for end in [false, true] {
            let x = (rng.next_f64() - 0.5) * extent;
            let y = (rng.next_f64() - 0.5) * extent;
            layout.set(i, end, x, y);
        }
    }
    layout
}

#[cfg(test)]
mod tests {
    use super::*;
    use pangraph::model::fig1_graph;

    fn lean() -> LeanGraph {
        LeanGraph::from_graph(&fig1_graph())
    }

    #[test]
    fn linear_init_spans_total_length() {
        let lean = lean();
        let layout = init_linear(&lean, 0.0, 1);
        let total: f64 = lean.node_len.iter().map(|&l| l as f64).sum();
        let (min_x, _, max_x, _) = layout.bounds();
        assert_eq!(min_x, 0.0);
        assert_eq!(max_x, total);
    }

    #[test]
    fn linear_init_segment_lengths_match_nodes() {
        let lean = lean();
        let layout = init_linear(&lean, 0.0, 1);
        for i in 0..lean.node_count() as u32 {
            let (x0, _) = layout.get(i, false);
            let (x1, _) = layout.get(i, true);
            assert!(
                ((x1 - x0) - lean.node_len[i as usize] as f64).abs() < 1e-12,
                "node {i}"
            );
        }
    }

    #[test]
    fn zero_jitter_is_flat() {
        let layout = init_linear(&lean(), 0.0, 7);
        assert!(layout.ys().iter().all(|&y| y == 0.0));
    }

    #[test]
    fn jitter_is_bounded_and_nonzero() {
        let lean = lean();
        let total: f64 = lean.node_len.iter().map(|&l| l as f64).sum();
        let layout = init_linear(&lean, 0.05, 7);
        let amp = 0.05 * total;
        assert!(layout.ys().iter().any(|&y| y != 0.0));
        assert!(layout.ys().iter().all(|&y| y.abs() <= amp / 2.0 + 1e-12));
    }

    #[test]
    fn random_init_is_inside_extent() {
        let layout = init_random(&lean(), 100.0, 3);
        let (min_x, min_y, max_x, max_y) = layout.bounds();
        assert!(min_x >= -50.0 && max_x <= 50.0);
        assert!(min_y >= -50.0 && max_y <= 50.0);
        // And actually spread out.
        assert!(max_x - min_x > 10.0);
    }

    #[test]
    fn inits_are_deterministic() {
        let lean = lean();
        assert_eq!(init_linear(&lean, 0.02, 9), init_linear(&lean, 0.02, 9));
        assert_eq!(init_random(&lean, 10.0, 9), init_random(&lean, 10.0, 9));
        assert_ne!(init_random(&lean, 10.0, 9), init_random(&lean, 10.0, 10));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn random_init_rejects_zero_extent() {
        let _ = init_random(&lean(), 0.0, 1);
    }
}
