//! Cooperative progress reporting and cancellation for layout runs.
//!
//! A [`LayoutControl`] is shared between a caller (e.g. the `pgl-service`
//! job scheduler) and a running engine. The engine polls
//! [`LayoutControl::is_cancelled`] at iteration boundaries and publishes
//! progress; the caller polls [`LayoutControl::progress`] and may flip the
//! cancel flag at any time. Everything is relaxed atomics — progress is
//! advisory and cancellation is best-effort-by-next-iteration.

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

/// Shared cancel flag + progress gauge for one layout run.
#[derive(Debug, Default)]
pub struct LayoutControl {
    cancelled: AtomicBool,
    /// Progress in thousandths (0..=1000).
    progress_milli: AtomicU32,
}

impl LayoutControl {
    /// A fresh control: not cancelled, zero progress.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation. Engines stop at their next iteration
    /// boundary; the default [`crate::LayoutEngine::layout_controlled`]
    /// only checks before and after the full run.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    /// Has cancellation been requested?
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }

    /// Publish progress as `done` of `total` units (e.g. iterations).
    pub fn set_progress(&self, done: u64, total: u64) {
        let milli = (done.saturating_mul(1000) / total.max(1)).min(1000) as u32;
        self.progress_milli.store(milli, Ordering::Relaxed);
    }

    /// Mark the run complete (progress 1.0).
    pub fn finish(&self) {
        self.progress_milli.store(1000, Ordering::Relaxed);
    }

    /// Current progress in `[0.0, 1.0]`.
    pub fn progress(&self) -> f64 {
        self.progress_milli.load(Ordering::Relaxed) as f64 / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_control_is_clean() {
        let c = LayoutControl::new();
        assert!(!c.is_cancelled());
        assert_eq!(c.progress(), 0.0);
    }

    #[test]
    fn progress_clamps_and_finishes() {
        let c = LayoutControl::new();
        c.set_progress(3, 10);
        assert!((c.progress() - 0.3).abs() < 1e-9);
        c.set_progress(20, 10);
        assert_eq!(c.progress(), 1.0);
        c.set_progress(5, 0); // degenerate total
        assert_eq!(c.progress(), 1.0);
        let c2 = LayoutControl::new();
        c2.finish();
        assert_eq!(c2.progress(), 1.0);
    }

    #[test]
    fn cancel_is_sticky() {
        let c = LayoutControl::new();
        c.cancel();
        assert!(c.is_cancelled());
        c.cancel();
        assert!(c.is_cancelled());
    }
}
