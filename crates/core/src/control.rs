//! Cooperative progress reporting and cancellation for layout runs.
//!
//! A [`LayoutControl`] is shared between a caller (e.g. the `pgl-service`
//! job scheduler) and a running engine. The engine polls
//! [`LayoutControl::is_cancelled`] at iteration boundaries and publishes
//! progress; the caller polls [`LayoutControl::progress`] and may flip the
//! cancel flag at any time. The cancel flag and the progress gauge are
//! relaxed atomics — progress is advisory and cancellation is
//! best-effort-by-next-iteration.
//!
//! A caller that wants to be *pushed* progress instead of polling can
//! register an observer ([`LayoutControl::set_observer`]): it is invoked
//! on the engine thread whenever the published progress value actually
//! changes (at most once per thousandth of progress), which is what
//! feeds the service's per-job event logs for streaming clients.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Mutex;

/// Callback invoked with the new progress fraction whenever it changes.
type ProgressObserver = Box<dyn Fn(f64) + Send + Sync>;

/// Live counters an engine publishes while it runs.
///
/// All fields are relaxed atomics, written from the engine's hot path at
/// iteration/batch granularity (never per term) and read by whoever
/// holds the [`LayoutControl`] — the service's metrics scrape and the
/// per-job event stream sample them to report live updates/s without
/// touching the engine. Stale-by-an-iteration reads are fine; the
/// counters are telemetry, not synchronization.
#[derive(Debug, Default)]
pub struct EngineTelemetry {
    /// Terms applied so far across all worker threads.
    terms_applied: AtomicU64,
    /// Iterations (or batches) completed.
    iteration: AtomicU32,
    /// Total iterations (or batches) the schedule will run.
    iteration_max: AtomicU32,
}

impl EngineTelemetry {
    /// Add `n` applied terms (engine side; one call per thread per
    /// iteration or per batch, never per term).
    pub fn add_applied(&self, n: u64) {
        if n > 0 {
            self.terms_applied.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Terms applied so far.
    pub fn terms_applied(&self) -> u64 {
        self.terms_applied.load(Ordering::Relaxed)
    }

    /// Publish the completed-iteration gauge (engine side).
    pub fn set_iteration(&self, done: u32, total: u32) {
        self.iteration.store(done, Ordering::Relaxed);
        self.iteration_max.store(total, Ordering::Relaxed);
    }

    /// `(completed, total)` iterations as last published.
    pub fn iteration(&self) -> (u32, u32) {
        (
            self.iteration.load(Ordering::Relaxed),
            self.iteration_max.load(Ordering::Relaxed),
        )
    }
}

/// Shared cancel flag + progress gauge for one layout run.
#[derive(Default)]
pub struct LayoutControl {
    cancelled: AtomicBool,
    /// Progress in thousandths (0..=1000).
    progress_milli: AtomicU32,
    /// Optional push-style progress listener. Locked only when the
    /// published value changes (≤ 1000 times per run), never on the
    /// per-iteration fast path of an unchanged value.
    observer: Mutex<Option<ProgressObserver>>,
    /// Live engine counters (terms applied, iteration) for telemetry.
    telemetry: EngineTelemetry,
}

impl std::fmt::Debug for LayoutControl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LayoutControl")
            .field("cancelled", &self.cancelled)
            .field("progress_milli", &self.progress_milli)
            .field(
                "observer",
                &self.observer.lock().map(|o| o.is_some()).unwrap_or(false),
            )
            .finish()
    }
}

impl LayoutControl {
    /// A fresh control: not cancelled, zero progress, no observer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation. Engines stop at their next iteration
    /// boundary; the default [`crate::LayoutEngine::layout_controlled`]
    /// only checks before and after the full run.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    /// Has cancellation been requested?
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }

    /// Register the progress observer, replacing any previous one. The
    /// callback runs on the engine thread at each change of the
    /// published (millis-granular) progress value; it must not block
    /// and must not call back into this control.
    pub fn set_observer(&self, observer: impl Fn(f64) + Send + Sync + 'static) {
        *self.observer.lock().unwrap() = Some(Box::new(observer));
    }

    /// Drop the observer (e.g. once the run's caller has recorded the
    /// terminal state and no longer wants callbacks).
    pub fn clear_observer(&self) {
        *self.observer.lock().unwrap() = None;
    }

    /// Publish progress as `done` of `total` units (e.g. iterations).
    pub fn set_progress(&self, done: u64, total: u64) {
        let milli = (done.saturating_mul(1000) / total.max(1)).min(1000) as u32;
        self.publish(milli);
    }

    /// Mark the run complete (progress 1.0).
    pub fn finish(&self) {
        self.publish(1000);
    }

    fn publish(&self, milli: u32) {
        let prev = self.progress_milli.swap(milli, Ordering::Relaxed);
        if prev != milli {
            if let Some(obs) = self.observer.lock().unwrap().as_ref() {
                obs(milli as f64 / 1000.0);
            }
        }
    }

    /// Current progress in `[0.0, 1.0]`.
    pub fn progress(&self) -> f64 {
        self.progress_milli.load(Ordering::Relaxed) as f64 / 1000.0
    }

    /// The live engine counters attached to this control. Engines write
    /// them at iteration/batch boundaries; observers sample them.
    pub fn telemetry(&self) -> &EngineTelemetry {
        &self.telemetry
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn fresh_control_is_clean() {
        let c = LayoutControl::new();
        assert!(!c.is_cancelled());
        assert_eq!(c.progress(), 0.0);
    }

    #[test]
    fn progress_clamps_and_finishes() {
        let c = LayoutControl::new();
        c.set_progress(3, 10);
        assert!((c.progress() - 0.3).abs() < 1e-9);
        c.set_progress(20, 10);
        assert_eq!(c.progress(), 1.0);
        c.set_progress(5, 0); // degenerate total
        assert_eq!(c.progress(), 1.0);
        let c2 = LayoutControl::new();
        c2.finish();
        assert_eq!(c2.progress(), 1.0);
    }

    #[test]
    fn cancel_is_sticky() {
        let c = LayoutControl::new();
        c.cancel();
        assert!(c.is_cancelled());
        c.cancel();
        assert!(c.is_cancelled());
    }

    #[test]
    fn observer_fires_only_on_change() {
        let c = LayoutControl::new();
        let calls = Arc::new(AtomicUsize::new(0));
        let seen = Arc::new(Mutex::new(Vec::new()));
        {
            let calls = Arc::clone(&calls);
            let seen = Arc::clone(&seen);
            c.set_observer(move |p| {
                calls.fetch_add(1, Ordering::Relaxed);
                seen.lock().unwrap().push(p);
            });
        }
        c.set_progress(1, 10); // 0.1 — change
        c.set_progress(1, 10); // same value — no call
        c.set_progress(2, 10); // 0.2 — change
        c.finish(); // 1.0 — change
        c.finish(); // still 1.0 — no call
        assert_eq!(calls.load(Ordering::Relaxed), 3);
        assert_eq!(*seen.lock().unwrap(), vec![0.1, 0.2, 1.0]);
    }

    #[test]
    fn telemetry_accumulates_and_gauges() {
        let c = LayoutControl::new();
        assert_eq!(c.telemetry().terms_applied(), 0);
        assert_eq!(c.telemetry().iteration(), (0, 0));
        c.telemetry().add_applied(100);
        c.telemetry().add_applied(0); // no-op, no fetch_add
        c.telemetry().add_applied(23);
        c.telemetry().set_iteration(2, 15);
        assert_eq!(c.telemetry().terms_applied(), 123);
        assert_eq!(c.telemetry().iteration(), (2, 15));
    }

    #[test]
    fn cleared_observer_stops_firing() {
        let c = LayoutControl::new();
        let calls = Arc::new(AtomicUsize::new(0));
        let n = Arc::clone(&calls);
        c.set_observer(move |_| {
            n.fetch_add(1, Ordering::Relaxed);
        });
        c.set_progress(1, 4);
        c.clear_observer();
        c.set_progress(2, 4);
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }
}
