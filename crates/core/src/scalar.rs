//! The coordinate-precision axis: one trait, two instantiations.
//!
//! The paper's GPU port stores layout coordinates as `float`s (fp32,
//! Sec. V-B) while odgi's CPU implementation uses `double`s; this module
//! lets every engine kernel be written once, generically, and
//! monomorphized per precision. [`LayoutScalar`] bundles the arithmetic
//! the SGD update step needs with the *relaxed-atomic cell* type the
//! Hogwild coordinate slabs are built from, so an `f32` run halves
//! memory traffic end to end — slab, loads, stores — not just the math.
//!
//! The `f64` instantiation is bit-compatible with the original scalar
//! code paths: generic kernels over `f64` produce identical results to
//! the pre-generic implementations (asserted by the engine determinism
//! tests).

use crate::atomicf::{AtomicF32, AtomicF64};
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A coordinate scalar (`f32` or `f64`) plus its relaxed-atomic cell.
pub trait LayoutScalar:
    Copy
    + PartialOrd
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + Send
    + Sync
    + 'static
{
    /// The relaxed-atomic cell holding one coordinate of this precision.
    type Cell: Send + Sync;

    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity (the μ cap).
    const ONE: Self;
    /// The divisor in `Δ = μ·(‖d‖ − d_ref)/2`.
    const TWO: Self;
    /// Coincidence threshold for the degenerate-direction fallback.
    const MAG_EPS: Self;
    /// Deterministic infinitesimal x-offset used when points coincide.
    const MAG_FALLBACK: Self;

    /// Narrow (or pass through) an `f64`.
    fn from_f64(v: f64) -> Self;
    /// Widen (or pass through) to `f64`.
    fn to_f64(self) -> f64;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Minimum of two values (`min` is not in the `Ord` path for floats).
    fn min_s(self, other: Self) -> Self;

    /// A fresh cell holding `v`.
    fn cell_new(v: Self) -> Self::Cell;
    /// Relaxed load.
    fn cell_load(cell: &Self::Cell) -> Self;
    /// Relaxed store.
    fn cell_store(cell: &Self::Cell, v: Self);
}

impl LayoutScalar for f64 {
    type Cell = AtomicF64;

    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const TWO: Self = 2.0;
    const MAG_EPS: Self = 1e-12;
    const MAG_FALLBACK: Self = 1e-9;

    #[inline]
    fn from_f64(v: f64) -> Self {
        v
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline]
    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }
    #[inline]
    fn min_s(self, other: Self) -> Self {
        f64::min(self, other)
    }
    #[inline]
    fn cell_new(v: Self) -> Self::Cell {
        AtomicF64::new(v)
    }
    #[inline]
    fn cell_load(cell: &Self::Cell) -> Self {
        cell.load()
    }
    #[inline]
    fn cell_store(cell: &Self::Cell, v: Self) {
        cell.store(v);
    }
}

impl LayoutScalar for f32 {
    type Cell = AtomicF32;

    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const TWO: Self = 2.0;
    // The f64 thresholds are representable in f32 (min normal ≈ 1.2e-38),
    // so the degenerate-direction behavior matches across precisions.
    const MAG_EPS: Self = 1e-12;
    const MAG_FALLBACK: Self = 1e-9;

    #[inline]
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline]
    fn sqrt(self) -> Self {
        f32::sqrt(self)
    }
    #[inline]
    fn min_s(self, other: Self) -> Self {
        f32::min(self, other)
    }
    #[inline]
    fn cell_new(v: Self) -> Self::Cell {
        AtomicF32::new(v)
    }
    #[inline]
    fn cell_load(cell: &Self::Cell) -> Self {
        cell.load()
    }
    #[inline]
    fn cell_store(cell: &Self::Cell, v: Self) {
        cell.store(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: LayoutScalar>(v: f64) -> f64 {
        let cell = T::cell_new(T::from_f64(v));
        T::cell_load(&cell).to_f64()
    }

    #[test]
    fn cells_round_trip_both_precisions() {
        assert_eq!(roundtrip::<f64>(1.25), 1.25);
        assert_eq!(roundtrip::<f32>(1.25), 1.25);
        // f32 narrows; f64 does not.
        let fine = 1.0 + 1e-12;
        assert_eq!(roundtrip::<f64>(fine), fine);
        assert_eq!(roundtrip::<f32>(fine), 1.0);
    }

    #[test]
    fn stores_overwrite() {
        let cell = f32::cell_new(3.0);
        f32::cell_store(&cell, -7.5);
        assert_eq!(f32::cell_load(&cell), -7.5);
    }

    #[test]
    fn arithmetic_helpers_behave() {
        // The f32 thresholds are the f64 ones up to rounding.
        let rel = (f64::MAG_EPS - f32::MAG_EPS.to_f64()).abs() / f64::MAG_EPS;
        assert!(rel < 1e-6, "MAG_EPS drifted: {rel}");
        assert_eq!(4.0f64.sqrt(), 2.0);
        assert_eq!(4.0f32.sqrt(), 2.0);
        assert_eq!(3.0f64.min_s(1.0), 1.0);
        assert_eq!(3.0f32.min_s(1.0), 1.0);
    }
}
