//! Term sampling — Alg. 1 lines 5–13, shared by every engine.
//!
//! One *term* is a pair of visualization points on the same path:
//!
//! 1. pick a path with probability ∝ |p| (alias table, O(1));
//! 2. pick the first step uniformly;
//! 3. *cooling* (unconditionally in the second half of the schedule, by
//!    coin flip before): pick the second step at a Zipf-distributed rank
//!    distance — this refines local structure; otherwise pick it
//!    uniformly — this establishes global structure;
//! 4. flip a coin per node for which segment endpoint to move;
//! 5. compute the reference distance from the path index.
//!
//! Terms with `d_ref = 0` (coincident endpoints) are rejected, as in
//! odgi-layout.

use crate::config::{LayoutConfig, PairSelection};
use pangraph::lean::LeanGraph;
use pgrng::{AliasTable, Rng64, ZipfTable};

/// One sampled SGD term.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Term {
    /// Flat step index of the first node's step.
    pub s_i: usize,
    /// Flat step index of the second node's step.
    pub s_j: usize,
    /// Node ids (cached to save a lookup in the hot loop).
    pub node_i: u32,
    /// Second node id.
    pub node_j: u32,
    /// Chosen endpoint of node i (`true` = segment end).
    pub end_i: bool,
    /// Chosen endpoint of node j.
    pub end_j: bool,
    /// Reference distance (positive).
    pub d_ref: f64,
}

/// Shared, read-only sampler state.
#[derive(Debug)]
pub struct PairSampler {
    alias: AliasTable,
    zipf: ZipfTable,
    first_cooling: u32,
    selection: PairSelection,
}

impl PairSampler {
    /// Build the sampler for a graph under a config.
    pub fn new(lean: &LeanGraph, cfg: &LayoutConfig) -> Self {
        let weights = lean.path_weights();
        let max_space = (lean.max_path_steps() as u64).max(2);
        Self {
            alias: AliasTable::new(&weights),
            zipf: ZipfTable::new(
                cfg.zipf_theta,
                cfg.zipf_space_max.min(max_space).max(2),
                cfg.zipf_quant,
                max_space,
            ),
            first_cooling: cfg.first_cooling_iter(),
            selection: cfg.pair_selection,
        }
    }

    /// The iteration at which cooling becomes unconditional.
    pub fn first_cooling_iter(&self) -> u32 {
        self.first_cooling
    }

    /// Draw one term for iteration `iter`, or `None` when the draw is
    /// rejected (single-step path, out-of-range fixed hop, or zero
    /// reference distance).
    #[inline]
    pub fn sample<R: Rng64>(&self, lean: &LeanGraph, rng: &mut R, iter: u32) -> Option<Term> {
        let p = self.alias.sample(rng) as u32;
        let n = lean.steps_in(p);
        if n < 2 {
            return None;
        }
        let i = rng.gen_below(n as u64) as usize;
        // One draw covers all four per-term coins (cooling, direction,
        // endpoint i, endpoint j), taken from the generator's highest
        // bits — xoshiro+'s best-equidistributed ones. Four separate
        // `flip()` draws would spend three extra generator steps per
        // term on single bits.
        let coins = rng.next_u64();
        let (coin_cool, coin_dir) = (coins >> 63 == 1, coins >> 62 & 1 == 1);
        let (end_i, end_j) = (coins >> 61 & 1 == 1, coins >> 60 & 1 == 1);
        let j = match self.selection {
            PairSelection::PgSgd => {
                let cooling = iter >= self.first_cooling || coin_cool;
                if cooling {
                    let z = self.zipf.sample(rng, (n - 1) as u64) as usize;
                    // Random direction, falling back to the feasible side.
                    if coin_dir {
                        if i + z < n {
                            i + z
                        } else if i >= z {
                            i - z
                        } else {
                            return None;
                        }
                    } else if i >= z {
                        i - z
                    } else if i + z < n {
                        i + z
                    } else {
                        return None;
                    }
                } else {
                    // Uniform j ≠ i.
                    let mut j = rng.gen_below(n as u64 - 1) as usize;
                    if j >= i {
                        j += 1;
                    }
                    j
                }
            }
            PairSelection::FixedHop(k) => {
                let k = k as usize;
                if i + k < n {
                    i + k
                } else if i >= k {
                    i - k
                } else {
                    return None;
                }
            }
        };
        debug_assert_ne!(i, j);
        let s_i = lean.flat_step(p, i);
        let s_j = lean.flat_step(p, j);
        let d_ref = lean.d_ref_endpoints(s_i, end_i, s_j, end_j);
        if d_ref <= 0.0 {
            return None;
        }
        Some(Term {
            s_i,
            s_j,
            node_i: lean.node_of_flat(s_i),
            node_j: lean.node_of_flat(s_j),
            end_i,
            end_j,
            d_ref,
        })
    }

    /// Draw `want` times for iteration `iter`, collecting the accepted
    /// terms into `out` (cleared first). One call per hot-loop block —
    /// the engines sample a block, then apply it in a single
    /// monomorphized pass ([`crate::coords::CoordStore::apply_block`]),
    /// amortizing sampler dispatch. Returns the number accepted; RNG
    /// consumption is identical to `want` scalar [`PairSampler::sample`]
    /// calls, so block size never changes the random stream.
    #[inline]
    pub fn sample_block<R: Rng64>(
        &self,
        lean: &LeanGraph,
        rng: &mut R,
        iter: u32,
        want: usize,
        out: &mut Vec<Term>,
    ) -> usize {
        out.clear();
        for _ in 0..want {
            if let Some(t) = self.sample(lean, rng, iter) {
                out.push(t);
            }
        }
        out.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pangraph::model::fig1_graph;
    use pgrng::Xoshiro256Plus;
    use workloads::{generate, PangenomeSpec};

    fn test_lean() -> LeanGraph {
        LeanGraph::from_graph(&generate(&PangenomeSpec::basic("s", 200, 6, 3)))
    }

    #[test]
    fn sampled_terms_are_valid() {
        let lean = test_lean();
        let cfg = LayoutConfig::default();
        let sampler = PairSampler::new(&lean, &cfg);
        let mut rng = Xoshiro256Plus::seed_from_u64(1);
        let mut accepted = 0;
        for iter in [0u32, 10, 20, 29] {
            for _ in 0..2000 {
                if let Some(t) = sampler.sample(&lean, &mut rng, iter) {
                    accepted += 1;
                    assert!(t.d_ref > 0.0);
                    assert_ne!(t.s_i, t.s_j);
                    assert!(t.s_i < lean.total_steps());
                    assert!(t.s_j < lean.total_steps());
                    assert_eq!(t.node_i, lean.node_of_flat(t.s_i));
                    assert_eq!(t.node_j, lean.node_of_flat(t.s_j));
                    // Same path: both flat steps in one path's range.
                    let in_same_path = (0..lean.path_count() as u32).any(|p| {
                        let lo = lean.flat_step(p, 0);
                        let hi = lo + lean.steps_in(p);
                        (lo..hi).contains(&t.s_i) && (lo..hi).contains(&t.s_j)
                    });
                    assert!(in_same_path);
                }
            }
        }
        assert!(accepted > 6000, "acceptance too low: {accepted}");
    }

    #[test]
    fn cooling_shrinks_rank_distance() {
        // After the cooling point the mean |i−j| in *steps* should be much
        // smaller than during the uniform phase.
        let lean = test_lean();
        let cfg = LayoutConfig {
            cooling_start: 0.5,
            ..LayoutConfig::default()
        };
        let sampler = PairSampler::new(&lean, &cfg);
        let mut rng = Xoshiro256Plus::seed_from_u64(2);
        let mean_gap = |iter: u32, rng: &mut Xoshiro256Plus| {
            let mut tot = 0f64;
            let mut cnt = 0f64;
            for _ in 0..20_000 {
                if let Some(t) = sampler.sample(&lean, rng, iter) {
                    tot += (t.s_i as f64 - t.s_j as f64).abs();
                    cnt += 1.0;
                }
            }
            tot / cnt
        };
        // iter 0: ~50% cooling (coin); iter 29: 100% cooling.
        let early = mean_gap(0, &mut rng);
        let late = mean_gap(29, &mut rng);
        assert!(
            late < 0.7 * early,
            "late gap {late} should be well below early gap {early}"
        );
    }

    #[test]
    fn fixed_hop_selection_has_constant_gap() {
        let lean = test_lean();
        let cfg = LayoutConfig {
            pair_selection: PairSelection::FixedHop(10),
            ..LayoutConfig::default()
        };
        let sampler = PairSampler::new(&lean, &cfg);
        let mut rng = Xoshiro256Plus::seed_from_u64(3);
        for _ in 0..5000 {
            if let Some(t) = sampler.sample(&lean, &mut rng, 0) {
                let gap = (t.s_i as i64 - t.s_j as i64).unsigned_abs();
                assert_eq!(gap, 10);
            }
        }
    }

    #[test]
    fn single_step_paths_are_rejected() {
        use pangraph::model::{GraphBuilder, Handle};
        let mut b = GraphBuilder::new();
        let a = b.add_node_len(5);
        b.add_path("single", vec![Handle::forward(a)]);
        let lean = LeanGraph::from_graph(&b.build());
        let cfg = LayoutConfig::default();
        let sampler = PairSampler::new(&lean, &cfg);
        let mut rng = Xoshiro256Plus::seed_from_u64(4);
        for _ in 0..100 {
            assert!(sampler.sample(&lean, &mut rng, 0).is_none());
        }
    }

    #[test]
    fn path_selection_is_length_weighted() {
        // fig1: paths of 6/5/7 steps. Count which path each term lands in.
        let lean = LeanGraph::from_graph(&fig1_graph());
        let cfg = LayoutConfig::default();
        let sampler = PairSampler::new(&lean, &cfg);
        let mut rng = Xoshiro256Plus::seed_from_u64(5);
        let mut counts = [0usize; 3];
        let ranges: Vec<(usize, usize)> = (0..3u32)
            .map(|p| {
                let lo = lean.flat_step(p, 0);
                (lo, lo + lean.steps_in(p))
            })
            .collect();
        let draws = 60_000;
        for _ in 0..draws {
            if let Some(t) = sampler.sample(&lean, &mut rng, 0) {
                for (pi, &(lo, hi)) in ranges.iter().enumerate() {
                    if (lo..hi).contains(&t.s_i) {
                        counts[pi] += 1;
                    }
                }
            }
        }
        let total: usize = counts.iter().sum();
        let freq: Vec<f64> = counts.iter().map(|&c| c as f64 / total as f64).collect();
        for (pi, expect) in [(0usize, 6.0 / 18.0), (1, 5.0 / 18.0), (2, 7.0 / 18.0)] {
            assert!(
                (freq[pi] - expect).abs() < 0.04,
                "path {pi}: {} vs {expect}",
                freq[pi]
            );
        }
    }

    #[test]
    fn block_sampling_consumes_the_same_stream_as_scalar_sampling() {
        let lean = test_lean();
        let cfg = LayoutConfig::default();
        let sampler = PairSampler::new(&lean, &cfg);
        let mut scalar_rng = Xoshiro256Plus::seed_from_u64(9);
        let mut block_rng = Xoshiro256Plus::seed_from_u64(9);
        let mut block = Vec::new();
        for iter in [0u32, 20] {
            let n = sampler.sample_block(&lean, &mut block_rng, iter, 300, &mut block);
            assert_eq!(n, block.len());
            let scalar: Vec<Term> = (0..300)
                .filter_map(|_| sampler.sample(&lean, &mut scalar_rng, iter))
                .collect();
            assert_eq!(block, scalar, "iter {iter}");
        }
    }

    #[test]
    fn determinism_per_seed() {
        let lean = test_lean();
        let cfg = LayoutConfig::default();
        let sampler = PairSampler::new(&lean, &cfg);
        let mut a = Xoshiro256Plus::seed_from_u64(6);
        let mut b = Xoshiro256Plus::seed_from_u64(6);
        for iter in 0..8 {
            assert_eq!(
                sampler.sample(&lean, &mut a, iter),
                sampler.sample(&lean, &mut b, iter)
            );
        }
    }
}
