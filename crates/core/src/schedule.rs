//! The SGD learning-rate schedule `S` of Alg. 1.
//!
//! Following Zheng et al. (from which odgi-layout adapts path-guided SGD),
//! the learning rate decays geometrically from `η_max = d_max²` (so the
//! first iteration can move the farthest-apart pair into place in one
//! step, since the term weight is `w = d⁻²` and `μ = η·w` caps at 1) down
//! to `η_min = ε` over `N_iters` iterations:
//!
//! ```text
//! η(t) = η_max · exp( ln(η_min / η_max) · t / (N_iters − 1) )
//! ```

use crate::config::LayoutConfig;

/// Precomputed per-iteration learning rates.
#[derive(Debug, Clone)]
pub struct Schedule {
    etas: Vec<f64>,
}

impl Schedule {
    /// Build the schedule for a graph whose largest reference distance is
    /// `d_max` (in practice the longest path's nucleotide length).
    pub fn new(cfg: &LayoutConfig, d_max: f64) -> Self {
        assert!(d_max >= 1.0, "d_max must be at least 1");
        assert!(cfg.iter_max >= 1, "need at least one iteration");
        let eta_max = cfg.eta_max.unwrap_or(d_max * d_max);
        let eta_min = cfg.eps;
        assert!(eta_max > 0.0 && eta_min > 0.0);
        let n = cfg.iter_max;
        let lambda = if n > 1 {
            (eta_min / eta_max).ln() / (n as f64 - 1.0)
        } else {
            0.0
        };
        let etas = (0..n)
            .map(|t| eta_max * (lambda * t as f64).exp())
            .collect();
        Self { etas }
    }

    /// η for iteration `t`.
    #[inline]
    pub fn eta(&self, t: u32) -> f64 {
        self.etas[t as usize]
    }

    /// Number of scheduled iterations.
    #[inline]
    pub fn len(&self) -> usize {
        self.etas.len()
    }

    /// True when the schedule is empty (never, by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.etas.is_empty()
    }

    /// All learning rates, first to last.
    #[inline]
    pub fn etas(&self) -> &[f64] {
        &self.etas
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(iters: u32) -> LayoutConfig {
        LayoutConfig {
            iter_max: iters,
            ..LayoutConfig::default()
        }
    }

    #[test]
    fn endpoints_match_eta_max_and_eps() {
        let c = cfg(30);
        let s = Schedule::new(&c, 1000.0);
        assert!(
            (s.eta(0) - 1e6).abs() / 1e6 < 1e-12,
            "eta(0) = {}",
            s.eta(0)
        );
        assert!((s.eta(29) - 0.01).abs() < 1e-9, "eta(last) = {}", s.eta(29));
    }

    #[test]
    fn schedule_is_strictly_decreasing() {
        let s = Schedule::new(&cfg(30), 500.0);
        for t in 1..s.len() {
            assert!(
                s.eta(t as u32) < s.eta(t as u32 - 1),
                "eta not decreasing at {t}"
            );
        }
    }

    #[test]
    fn geometric_ratio_is_constant() {
        let s = Schedule::new(&cfg(10), 100.0);
        let r0 = s.eta(1) / s.eta(0);
        for t in 2..10 {
            let r = s.eta(t) / s.eta(t - 1);
            assert!((r - r0).abs() < 1e-12);
        }
    }

    #[test]
    fn explicit_eta_max_override() {
        let mut c = cfg(5);
        c.eta_max = Some(42.0);
        let s = Schedule::new(&c, 9999.0);
        assert!((s.eta(0) - 42.0).abs() < 1e-12);
    }

    #[test]
    fn single_iteration_schedule() {
        let s = Schedule::new(&cfg(1), 100.0);
        assert_eq!(s.len(), 1);
        assert!((s.eta(0) - 1e4).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "d_max")]
    fn rejects_degenerate_dmax() {
        let _ = Schedule::new(&cfg(5), 0.0);
    }
}
