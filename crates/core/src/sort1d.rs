//! 1D path-guided SGD node sorting.
//!
//! The PG-SGD paper the layout algorithm comes from (Heumos et al.,
//! *Bioinformatics* 2024 — the SC paper's reference [20]) defines the
//! method in both one and two dimensions: the 1D variant orders the
//! graph's nodes along a line so that node rank approximates path
//! position, and odgi pipelines run it (`odgi sort -p Ygs`) **before**
//! 2D layout — the linear initialization (`init_linear`) places nodes by
//! id, so a well-sorted graph starts the 2D optimization near the
//! backbone solution.
//!
//! The implementation reuses the 2D machinery: the same [`PairSampler`]
//! term selection and learning-rate [`Schedule`], with scalar positions
//! and the 1D update `x ← x ∓ μ·(|Δ| − d)/2`.

use crate::config::LayoutConfig;
use crate::sampler::PairSampler;
use crate::schedule::Schedule;
use pangraph::lean::LeanGraph;
use pangraph::NodeId;
use pgrng::Xoshiro256Plus;

/// Run 1D path-guided SGD and return the permutation `new_id_of[old]`.
///
/// Single-threaded and bit-deterministic for a given seed (sorting is a
/// preprocessing step; its cost is a small fraction of 2D layout).
pub fn path_sgd_order(lean: &LeanGraph, cfg: &LayoutConfig) -> Vec<NodeId> {
    let n = lean.node_count();
    if n == 0 {
        return Vec::new();
    }
    // Initial 1D positions: current id order (node midpoints).
    let mut x = vec![0.0f64; n];
    let mut offset = 0.0;
    for (i, &len) in lean.node_len.iter().enumerate() {
        x[i] = offset + len as f64 / 2.0;
        offset += len as f64;
    }

    if lean.max_path_steps() >= 2 {
        let sampler = PairSampler::new(lean, cfg);
        let schedule = Schedule::new(cfg, (lean.max_path_nuc_len() as f64).max(1.0));
        let mut rng = Xoshiro256Plus::seed_from_u64(cfg.seed ^ 0x1D50);
        let steps_per_iter = cfg.steps_per_iter(lean.total_steps() as u64);
        for iter in 0..cfg.iter_max {
            let eta = schedule.eta(iter);
            for _ in 0..steps_per_iter {
                if let Some(t) = sampler.sample(lean, &mut rng, iter) {
                    let (i, j) = (t.node_i as usize, t.node_j as usize);
                    let w = 1.0 / (t.d_ref * t.d_ref);
                    let mu = (eta * w).min(1.0);
                    let delta = x[i] - x[j];
                    let mag = delta.abs().max(1e-9);
                    let r = mu * (mag - t.d_ref) / 2.0 * (delta / mag);
                    x[i] -= r;
                    x[j] += r;
                }
            }
        }
    }

    // The 1D solution is unique only up to reflection; canonicalize so
    // node positions correlate positively with path positions.
    let mean_pos = mean_path_positions(lean);
    let mut corr_terms = (Vec::new(), Vec::new());
    for (i, mp) in mean_pos.iter().enumerate() {
        if let Some(p) = mp {
            corr_terms.0.push(x[i]);
            corr_terms.1.push(*p);
        }
    }
    if pearson(&corr_terms.0, &corr_terms.1) < 0.0 {
        for v in &mut x {
            *v = -*v;
        }
    }

    // Rank nodes by final position (stable on ties by old id).
    let mut by_pos: Vec<NodeId> = (0..n as NodeId).collect();
    by_pos.sort_by(|&a, &b| x[a as usize].total_cmp(&x[b as usize]).then(a.cmp(&b)));
    let mut new_id_of = vec![0 as NodeId; n];
    for (rank, &old) in by_pos.iter().enumerate() {
        new_id_of[old as usize] = rank as NodeId;
    }
    new_id_of
}

/// Mean path position per node (`None` for nodes no path visits, e.g.
/// rare alleles no sampled haplotype carries).
fn mean_path_positions(lean: &LeanGraph) -> Vec<Option<f64>> {
    let n = lean.node_count();
    let mut pos_sum = vec![0.0f64; n];
    let mut pos_cnt = vec![0u32; n];
    for s in 0..lean.total_steps() {
        let node = lean.node_of_flat(s) as usize;
        pos_sum[node] += lean.pos_of_flat(s) as f64;
        pos_cnt[node] += 1;
    }
    (0..n)
        .map(|i| (pos_cnt[i] > 0).then(|| pos_sum[i] / pos_cnt[i] as f64))
        .collect()
}

/// Spearman-style order quality: the correlation between node id and
/// mean path position, over path-visited nodes. 1.0 = nodes numbered
/// exactly in path order. Used to verify sorting (and exposed for
/// pipeline diagnostics).
pub fn order_quality(lean: &LeanGraph) -> f64 {
    let mean_pos = mean_path_positions(lean);
    let mut ids = Vec::new();
    let mut pos = Vec::new();
    for (i, mp) in mean_pos.iter().enumerate() {
        if let Some(p) = mp {
            ids.push(i as f64);
            pos.push(*p);
        }
    }
    pearson(&ids, &pos)
}

fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len() as f64;
    if n < 2.0 {
        return 1.0;
    }
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&a, &b) in xs.iter().zip(ys) {
        sxy += (a - mx) * (b - my);
        sxx += (a - mx) * (a - mx);
        syy += (b - my) * (b - my);
    }
    if sxx == 0.0 || syy == 0.0 {
        return 0.0;
    }
    sxy / (sxx * syy).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pangraph::lean::LeanGraph;
    use pgrng::Rng64;
    use workloads::{generate, PangenomeSpec};

    fn shuffled_graph(seed: u64) -> (pangraph::VariationGraph, pangraph::VariationGraph) {
        let g = generate(&PangenomeSpec::basic("sort", 300, 5, seed));
        // Shuffle node ids with a Fisher-Yates permutation.
        let n = g.node_count() as u32;
        let mut perm: Vec<u32> = (0..n).collect();
        let mut rng = Xoshiro256Plus::seed_from_u64(seed ^ 0xFFFF);
        for i in (1..n as usize).rev() {
            let j = rng.gen_below(i as u64 + 1) as usize;
            perm.swap(i, j);
        }
        let shuffled = g.permute_nodes(&perm);
        (g, shuffled)
    }

    fn sort_cfg() -> LayoutConfig {
        LayoutConfig {
            iter_max: 20,
            ..LayoutConfig::default()
        }
    }

    #[test]
    fn sorting_recovers_path_order_from_a_shuffle() {
        let (_, shuffled) = shuffled_graph(3);
        let lean = LeanGraph::from_graph(&shuffled);
        let before = order_quality(&lean);
        let order = path_sgd_order(&lean, &sort_cfg());
        let sorted = shuffled.permute_nodes(&order);
        let after = order_quality(&LeanGraph::from_graph(&sorted));
        assert!(
            after > 0.95,
            "sorted order quality {after:.3} (was {before:.3})"
        );
        assert!(after > before.abs());
    }

    #[test]
    fn generated_graphs_are_already_near_sorted() {
        // The generator emits nodes in backbone order, so quality starts
        // high — and sorting must not destroy it.
        let g = generate(&PangenomeSpec::basic("s2", 200, 4, 9));
        let lean = LeanGraph::from_graph(&g);
        assert!(order_quality(&lean) > 0.95);
        let order = path_sgd_order(&lean, &sort_cfg());
        let sorted = g.permute_nodes(&order);
        assert!(order_quality(&LeanGraph::from_graph(&sorted)) > 0.95);
    }

    #[test]
    fn sorting_improves_2d_layout_convergence() {
        // The pipeline motivation: linear init on a sorted graph starts
        // the 2D optimization near the solution.
        use crate::cpu::CpuEngine;
        use pgmetrics::{sampled_path_stress, SamplingConfig};
        let (_, shuffled) = shuffled_graph(11);
        let lean_bad = LeanGraph::from_graph(&shuffled);
        let order = path_sgd_order(&lean_bad, &sort_cfg());
        let lean_good = LeanGraph::from_graph(&shuffled.permute_nodes(&order));

        // Few iterations: the head start must show.
        let cfg = LayoutConfig {
            iter_max: 3,
            threads: 1,
            ..LayoutConfig::default()
        };
        let q_bad = {
            let (layout, _) = CpuEngine::new(cfg.clone()).run(&lean_bad);
            sampled_path_stress(&layout, &lean_bad, SamplingConfig::default()).mean
        };
        let q_good = {
            let (layout, _) = CpuEngine::new(cfg.clone()).run(&lean_good);
            sampled_path_stress(&layout, &lean_good, SamplingConfig::default()).mean
        };
        assert!(
            q_good < q_bad,
            "sorted graph should converge faster: {q_good} vs {q_bad}"
        );
    }

    #[test]
    fn order_is_a_permutation_and_deterministic() {
        let (_, shuffled) = shuffled_graph(5);
        let lean = LeanGraph::from_graph(&shuffled);
        let a = path_sgd_order(&lean, &sort_cfg());
        let b = path_sgd_order(&lean, &sort_cfg());
        assert_eq!(a, b);
        let mut seen = vec![false; a.len()];
        for &v in &a {
            assert!(!seen[v as usize]);
            seen[v as usize] = true;
        }
    }

    #[test]
    fn empty_and_degenerate_graphs_are_safe() {
        use pangraph::model::{GraphBuilder, Handle};
        let mut b = GraphBuilder::new();
        let a = b.add_node_len(3);
        b.add_path("p", vec![Handle::forward(a)]);
        let lean = LeanGraph::from_graph(&b.build());
        let order = path_sgd_order(&lean, &sort_cfg());
        assert_eq!(order, vec![0]);
    }
}
