//! The PyTorch-style batched implementation (paper Sec. IV).
//!
//! The paper's first GPU attempt casts Alg. 1 as neural-network training:
//! a *batch* of node pairs is sampled, their coordinates are **gathered**
//! into dense tensors (`index` kernels), the stress gradient is computed
//! with elementwise tensor kernels (`pow`, `mul`, `where`, `add`), and the
//! results are **scattered** back. This engine reproduces that design in
//! CPU tensor form, with the three instruments the paper reads off it:
//!
//! * per-op kernel timers — Fig. 7's breakdown, where `index` (the random
//!   gather/scatter) dominates;
//! * a kernel-launch counter and a launch-overhead model (`8 µs`/launch,
//!   the canonical CUDA launch cost) — Table IV's API-overhead trend;
//! * batch-size–dependent quality: a batch's gradients are all computed
//!   from the batch-start snapshot, so giant batches violate the Hogwild
//!   sparsity assumption and degrade the layout — Table III's
//!   Good/Satisfying/Poor column.
//!
//! Updates within a batch are synchronous: gather → compute → scatter,
//! with last-write-wins on duplicate indices (exactly the stale-gradient
//! behaviour of the tensor implementation).

use crate::config::LayoutConfig;
use crate::control::LayoutControl;
use crate::coords::Precision;
use crate::init::init_linear;
use crate::sampler::{PairSampler, Term};
use crate::schedule::Schedule;
use crate::LayoutEngine;
use pangraph::layout2d::Layout2D;
use pangraph::lean::LeanGraph;
use pgrng::Xoshiro256Plus;
use std::time::{Duration, Instant};

/// Modeled cost of one CUDA kernel launch (paper Sec. IV-A attributes the
/// small-batch collapse to launch overhead; 8 µs is the canonical figure).
pub const LAUNCH_COST_S: f64 = 8e-6;

/// Kernel-op categories, matching the paper's Fig. 7 legend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelOp {
    /// Gather/scatter of coordinates (the random-access memory op).
    Index,
    /// Squares and square roots.
    Pow,
    /// Multiplications (weights, step sizes).
    Mul,
    /// Selects/clamps (the μ cap, zero-distance masking).
    Where,
    /// Additions (coordinate updates).
    Add,
    /// Everything else (sampling, buffer management).
    Other,
}

/// All ops in display order.
pub const ALL_OPS: [KernelOp; 6] = [
    KernelOp::Index,
    KernelOp::Pow,
    KernelOp::Mul,
    KernelOp::Where,
    KernelOp::Add,
    KernelOp::Other,
];

/// Kernel launches charged per batch per op (gather+scatter, two pow
/// kernels, three muls, two selects, four adds, one sampler transfer).
const LAUNCHES_PER_BATCH: [(KernelOp, u64); 6] = [
    (KernelOp::Index, 2),
    (KernelOp::Pow, 2),
    (KernelOp::Mul, 3),
    (KernelOp::Where, 2),
    (KernelOp::Add, 4),
    (KernelOp::Other, 1),
];

/// Statistics from one batch-engine run.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Wall-clock time of the optimization loop.
    pub wall: Duration,
    /// Accumulated time per kernel-op category (indexed like [`ALL_OPS`]).
    pub op_time: [Duration; 6],
    /// Total kernel launches.
    pub kernels_launched: u64,
    /// Batches executed.
    pub batches: u64,
    /// Terms applied (batch slots with a valid sampled term).
    pub terms_applied: u64,
    /// Iterations executed.
    pub iters: u32,
}

impl BatchReport {
    fn op_index(op: KernelOp) -> usize {
        ALL_OPS.iter().position(|&o| o == op).unwrap()
    }

    /// Time spent in one op category.
    pub fn time_in(&self, op: KernelOp) -> Duration {
        self.op_time[Self::op_index(op)]
    }

    /// Fraction of total kernel time spent in one op category.
    pub fn op_fraction(&self, op: KernelOp) -> f64 {
        let total: f64 = self.op_time.iter().map(|d| d.as_secs_f64()).sum();
        if total == 0.0 {
            0.0
        } else {
            self.time_in(op).as_secs_f64() / total
        }
    }

    /// Modeled CUDA-API launch overhead in seconds
    /// (`launches × LAUNCH_COST_S`).
    pub fn launch_overhead_s(&self) -> f64 {
        self.kernels_launched as f64 * LAUNCH_COST_S
    }

    /// Modeled percentage of time spent in the CUDA API (Table IV):
    /// launch overhead relative to launch overhead + kernel time.
    pub fn api_time_pct(&self) -> f64 {
        let kernel: f64 = self.op_time.iter().map(|d| d.as_secs_f64()).sum();
        let api = self.launch_overhead_s();
        100.0 * api / (api + kernel).max(1e-12)
    }

    /// Total modeled GPU-side time: kernel time + launch overhead.
    pub fn modeled_total_s(&self) -> f64 {
        self.op_time.iter().map(|d| d.as_secs_f64()).sum::<f64>() + self.launch_overhead_s()
    }
}

/// The batched (PyTorch-style) layout engine.
pub struct BatchEngine {
    cfg: LayoutConfig,
    batch_size: usize,
}

impl BatchEngine {
    /// Create an engine with the given batch size.
    pub fn new(cfg: LayoutConfig, batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        Self { cfg, batch_size }
    }

    /// The configured batch size.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Run the full schedule; returns the layout and instrumentation.
    pub fn run(&self, lean: &LeanGraph) -> (Layout2D, BatchReport) {
        self.run_inner(lean, None)
            .expect("uncontrolled run cannot be cancelled")
    }

    /// Run under a [`LayoutControl`]: progress is published after every
    /// batch and cancellation is honored at batch boundaries (the batch
    /// is this engine's synchronization unit, as the iteration barrier
    /// is the Hogwild CPU engine's). Returns `None` when cancelled.
    pub fn run_controlled(
        &self,
        lean: &LeanGraph,
        ctl: &LayoutControl,
    ) -> Option<(Layout2D, BatchReport)> {
        if ctl.is_cancelled() {
            return None;
        }
        let result = self.run_inner(lean, Some(ctl));
        if result.is_some() {
            ctl.finish();
        }
        result
    }

    fn run_inner(
        &self,
        lean: &LeanGraph,
        ctl: Option<&LayoutControl>,
    ) -> Option<(Layout2D, BatchReport)> {
        let cfg = &self.cfg;
        let n = lean.node_count();
        let init = init_linear(lean, cfg.init_jitter, cfg.seed);
        let mut xs: Vec<f64> = init.xs().to_vec();
        let mut ys: Vec<f64> = init.ys().to_vec();
        // The fp32 axis for this engine is *storage* precision, like the
        // paper's GPU coordinate tensors: every value written back to
        // the coordinate arrays is narrowed through f32. (The tensor
        // arithmetic itself stays f64 — this engine's job is modeling
        // kernel structure, not FPU throughput.)
        let quantize = cfg.precision == Precision::F32;
        let store = |v: f64| if quantize { v as f32 as f64 } else { v };
        if quantize {
            for v in xs.iter_mut().chain(ys.iter_mut()) {
                *v = *v as f32 as f64;
            }
        }

        let total_steps = lean.total_steps() as u64;
        let d_max = (lean.max_path_nuc_len() as f64).max(1.0);
        let mut op_time = [Duration::ZERO; 6];
        let mut kernels = 0u64;
        let mut batches = 0u64;
        let mut applied = 0u64;
        // Applied terms already flushed to the control's telemetry.
        let mut flushed = 0u64;

        if total_steps == 0 || lean.max_path_steps() < 2 {
            return Some((
                Layout2D::from_flat(xs, ys),
                BatchReport {
                    wall: Duration::ZERO,
                    op_time,
                    kernels_launched: 0,
                    batches: 0,
                    terms_applied: 0,
                    iters: 0,
                },
            ));
        }

        let schedule = Schedule::new(cfg, d_max);
        let sampler = PairSampler::new(lean, cfg);
        let mut rng = Xoshiro256Plus::seed_from_u64(cfg.seed);
        let steps_per_iter = cfg.steps_per_iter(total_steps);

        // Reusable workhorse buffers.
        let cap = (self.batch_size as u64).min(steps_per_iter) as usize;
        let mut terms: Vec<Term> = Vec::with_capacity(cap);
        let mut gx_i = vec![0.0f64; cap];
        let mut gy_i = vec![0.0f64; cap];
        let mut gx_j = vec![0.0f64; cap];
        let mut gy_j = vec![0.0f64; cap];
        let mut d_ref = vec![0.0f64; cap];
        let mut dist = vec![0.0f64; cap];
        let mut rx = vec![0.0f64; cap];
        let mut ry = vec![0.0f64; cap];

        // Progress is published in units of batches: the finest-grained
        // synchronous boundary this engine has.
        let batches_per_iter = steps_per_iter.div_ceil(self.batch_size as u64).max(1);
        let total_batches = batches_per_iter * cfg.iter_max as u64;

        let t0 = Instant::now();
        for iter in 0..cfg.iter_max {
            let eta = schedule.eta(iter);
            let mut remaining = steps_per_iter;
            while remaining > 0 {
                if let Some(ctl) = ctl {
                    ctl.set_progress(batches, total_batches);
                    // Batches are this engine's iteration unit: publish
                    // the live counters at the same boundary.
                    ctl.telemetry().add_applied(applied - flushed);
                    flushed = applied;
                    ctl.telemetry().set_iteration(iter, cfg.iter_max);
                    if ctl.is_cancelled() {
                        return None;
                    }
                }
                let b = (self.batch_size as u64).min(remaining) as usize;
                remaining -= b as u64;
                batches += 1;
                for &(_, l) in &LAUNCHES_PER_BATCH {
                    kernels += l;
                }

                // -- Other: host-side sampling ("dataloader") ------------
                let t = Instant::now();
                terms.clear();
                for _ in 0..b {
                    if let Some(term) = sampler.sample(lean, &mut rng, iter) {
                        terms.push(term);
                    }
                }
                op_time[5] += t.elapsed();
                let m = terms.len();
                applied += m as u64;
                if m == 0 {
                    continue;
                }

                // -- Index: gather -------------------------------------
                let t = Instant::now();
                for (k, term) in terms.iter().enumerate() {
                    let ii = 2 * term.node_i as usize + term.end_i as usize;
                    let jj = 2 * term.node_j as usize + term.end_j as usize;
                    gx_i[k] = xs[ii];
                    gy_i[k] = ys[ii];
                    gx_j[k] = xs[jj];
                    gy_j[k] = ys[jj];
                    d_ref[k] = term.d_ref;
                }
                op_time[0] += t.elapsed();

                // -- Pow: squared distance and sqrt --------------------
                let t = Instant::now();
                elementwise(m, &mut dist, |k, out| {
                    let dx = gx_i[k] - gx_j[k];
                    let dy = gy_i[k] - gy_j[k];
                    *out = (dx * dx + dy * dy).sqrt();
                });
                op_time[1] += t.elapsed();

                // -- Mul: weights and step magnitude --------------------
                // r = μ·(dist − d)/2 / dist with μ = η/d² (cap applied in
                // the Where phase).
                let t = Instant::now();
                elementwise(m, &mut rx, |k, out| {
                    let w = 1.0 / (d_ref[k] * d_ref[k]);
                    *out = eta * w; // carries μ pre-cap
                });
                op_time[2] += t.elapsed();

                // -- Where: μ cap and zero-distance masking --------------
                let t = Instant::now();
                elementwise(m, &mut ry, |k, out| {
                    let mu = rx[k].min(1.0);
                    let dd = if dist[k] < 1e-12 { 1e-9 } else { dist[k] };
                    *out = mu * (dd - d_ref[k]) / 2.0 / dd; // scalar r
                });
                op_time[3] += t.elapsed();

                // -- Add: displacement vectors --------------------------
                let t = Instant::now();
                // rx ← r·dx, ry stays r (reused), then deltas applied in
                // the scatter.
                for k in 0..m {
                    let r = ry[k];
                    let dx = gx_i[k] - gx_j[k];
                    let dy = gy_i[k] - gy_j[k];
                    rx[k] = r * dx;
                    ry[k] = r * dy;
                }
                op_time[4] += t.elapsed();

                // -- Index: scatter (last write wins on duplicates) ------
                let t = Instant::now();
                for (k, term) in terms.iter().enumerate() {
                    let ii = 2 * term.node_i as usize + term.end_i as usize;
                    let jj = 2 * term.node_j as usize + term.end_j as usize;
                    xs[ii] = store(gx_i[k] - rx[k]);
                    ys[ii] = store(gy_i[k] - ry[k]);
                    xs[jj] = store(gx_j[k] + rx[k]);
                    ys[jj] = store(gy_j[k] + ry[k]);
                }
                op_time[0] += t.elapsed();
            }
        }
        let wall = t0.elapsed();
        if let Some(ctl) = ctl {
            ctl.telemetry().add_applied(applied - flushed);
            ctl.telemetry().set_iteration(cfg.iter_max, cfg.iter_max);
        }

        debug_assert_eq!(xs.len(), 2 * n);
        Some((
            Layout2D::from_flat(xs, ys),
            BatchReport {
                wall,
                op_time,
                kernels_launched: kernels,
                batches,
                terms_applied: applied,
                iters: cfg.iter_max,
            },
        ))
    }
}

/// Run an elementwise "kernel" over `m` slots.
///
/// Deliberately serial: the per-op timers feed the Fig. 7 breakdown, and
/// thread-pool dispatch overhead would be billed to whichever op ran
/// first rather than reflecting the op's own cost.
#[inline]
fn elementwise<F>(m: usize, out: &mut [f64], f: F)
where
    F: Fn(usize, &mut f64),
{
    for (k, o) in out[..m].iter_mut().enumerate() {
        f(k, o);
    }
}

impl LayoutEngine for BatchEngine {
    fn name(&self) -> &str {
        "batch-pytorch-style"
    }

    fn layout(&self, lean: &LeanGraph) -> Layout2D {
        self.run(lean).0
    }

    fn layout_controlled(&self, lean: &LeanGraph, ctl: &LayoutControl) -> Option<Layout2D> {
        self.run_controlled(lean, ctl).map(|(layout, _)| layout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgmetrics::{sampled_path_stress, SamplingConfig};
    use workloads::{generate, PangenomeSpec};

    fn test_graph(sites: usize, haps: usize, seed: u64) -> LeanGraph {
        LeanGraph::from_graph(&generate(&PangenomeSpec::basic("t", sites, haps, seed)))
    }

    fn quality(layout: &Layout2D, lean: &LeanGraph) -> f64 {
        sampled_path_stress(
            layout,
            lean,
            SamplingConfig {
                samples_per_node: 30,
                seed: 21,
            },
        )
        .mean
    }

    #[test]
    fn converges_with_moderate_batches() {
        let lean = test_graph(300, 6, 1);
        let cfg = LayoutConfig {
            iter_max: 20,
            ..LayoutConfig::default()
        };
        let engine = BatchEngine::new(cfg, 256);
        let (layout, report) = engine.run(&lean);
        assert!(layout.all_finite());
        assert!(report.terms_applied > 0);
        let q = quality(&layout, &lean);
        assert!(q < 1.0, "stress {q}");
    }

    #[test]
    fn batch_count_matches_formula() {
        let lean = test_graph(100, 4, 2);
        let cfg = LayoutConfig {
            iter_max: 4,
            ..LayoutConfig::default()
        };
        let steps = cfg.steps_per_iter(lean.total_steps() as u64);
        let b = 300usize;
        let (_, report) = BatchEngine::new(cfg, b).run(&lean);
        let per_iter = steps.div_ceil(b as u64);
        assert_eq!(report.batches, per_iter * 4);
        let per_batch: u64 = LAUNCHES_PER_BATCH.iter().map(|&(_, l)| l).sum();
        assert_eq!(report.kernels_launched, report.batches * per_batch);
    }

    #[test]
    fn larger_batches_launch_fewer_kernels() {
        let lean = test_graph(200, 4, 3);
        let cfg = LayoutConfig {
            iter_max: 3,
            ..LayoutConfig::default()
        };
        let (_, small) = BatchEngine::new(cfg.clone(), 64).run(&lean);
        let (_, large) = BatchEngine::new(cfg, 4096).run(&lean);
        assert!(small.kernels_launched > 10 * large.kernels_launched);
        assert!(small.api_time_pct() > large.api_time_pct());
    }

    #[test]
    fn whole_iteration_batches_degrade_quality() {
        // Table III: batches at the scale of the whole step budget violate
        // the sparse-update assumption and converge worse.
        let lean = test_graph(400, 8, 4);
        let cfg = LayoutConfig {
            iter_max: 15,
            ..LayoutConfig::default()
        };
        let steps = cfg.steps_per_iter(lean.total_steps() as u64) as usize;
        let (small_l, _) = BatchEngine::new(cfg.clone(), steps / 64).run(&lean);
        let (huge_l, _) = BatchEngine::new(cfg, steps).run(&lean);
        let q_small = quality(&small_l, &lean);
        let q_huge = quality(&huge_l, &lean);
        assert!(
            q_huge > q_small,
            "huge-batch stress {q_huge} should exceed small-batch {q_small}"
        );
    }

    #[test]
    fn f32_storage_converges_and_stays_f32_representable() {
        let lean = test_graph(200, 5, 11);
        let cfg = LayoutConfig {
            iter_max: 12,
            precision: Precision::F32,
            ..LayoutConfig::default()
        };
        let (layout, _) = BatchEngine::new(cfg, 256).run(&lean);
        assert!(layout.all_finite());
        for node in 0..layout.node_count() as u32 {
            for end in [false, true] {
                let (x, y) = layout.get(node, end);
                assert_eq!(x, x as f32 as f64, "x of {node} not f32-representable");
                assert_eq!(y, y as f32 as f64);
            }
        }
        let q = quality(&layout, &lean);
        assert!(q < 1.0, "f32 batch stress {q}");
    }

    #[test]
    fn deterministic_per_seed() {
        let lean = test_graph(150, 4, 5);
        let cfg = LayoutConfig {
            iter_max: 5,
            ..LayoutConfig::default()
        };
        let (a, _) = BatchEngine::new(cfg.clone(), 128).run(&lean);
        let (b, _) = BatchEngine::new(cfg, 128).run(&lean);
        assert_eq!(a, b);
    }

    #[test]
    fn op_fractions_sum_to_one_and_index_is_significant() {
        let lean = test_graph(400, 8, 6);
        let cfg = LayoutConfig {
            iter_max: 8,
            ..LayoutConfig::default()
        };
        let (_, report) = BatchEngine::new(cfg, 1024).run(&lean);
        let total: f64 = ALL_OPS.iter().map(|&op| report.op_fraction(op)).sum();
        assert!((total - 1.0).abs() < 1e-9, "fractions sum to {total}");
        // Fig. 7: the index (gather/scatter) kernel is the largest memory
        // op. On CPU tensors it must at least be a visible share.
        assert!(
            report.op_fraction(KernelOp::Index) > 0.10,
            "index fraction {}",
            report.op_fraction(KernelOp::Index)
        );
    }

    #[test]
    fn report_helpers_are_consistent() {
        let lean = test_graph(100, 4, 7);
        let cfg = LayoutConfig {
            iter_max: 2,
            ..LayoutConfig::default()
        };
        let (_, report) = BatchEngine::new(cfg, 512).run(&lean);
        assert!(report.launch_overhead_s() > 0.0);
        assert!((0.0..=100.0).contains(&report.api_time_pct()));
        assert!(report.modeled_total_s() >= report.launch_overhead_s());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_batch_rejected() {
        let _ = BatchEngine::new(LayoutConfig::default(), 0);
    }

    #[test]
    fn controlled_run_completes_with_full_progress() {
        let lean = test_graph(80, 3, 8);
        let ctl = LayoutControl::new();
        let (layout, report) = BatchEngine::new(LayoutConfig::for_tests(1), 128)
            .run_controlled(&lean, &ctl)
            .expect("uncancelled run completes");
        assert!(layout.all_finite());
        assert_eq!(ctl.progress(), 1.0);
        assert!(report.batches > 0);
        // The terminal flush published every applied term.
        assert_eq!(ctl.telemetry().terms_applied(), report.terms_applied);
        let cfg = LayoutConfig::for_tests(1);
        assert_eq!(ctl.telemetry().iteration(), (cfg.iter_max, cfg.iter_max));
    }

    #[test]
    fn cancel_before_start_runs_nothing() {
        let lean = test_graph(50, 3, 9);
        let ctl = LayoutControl::new();
        ctl.cancel();
        assert!(BatchEngine::new(LayoutConfig::for_tests(1), 128)
            .run_controlled(&lean, &ctl)
            .is_none());
    }

    #[test]
    fn cancel_mid_run_stops_at_a_batch_boundary() {
        let lean = test_graph(200, 5, 10);
        // Far more iterations than we are willing to wait for: the test
        // only terminates promptly because cancellation works.
        let cfg = LayoutConfig {
            iter_max: 1_000_000,
            ..LayoutConfig::default()
        };
        let engine = BatchEngine::new(cfg, 64);
        let ctl = LayoutControl::new();
        std::thread::scope(|s| {
            s.spawn(|| {
                while ctl.progress() == 0.0 {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                ctl.cancel();
            });
            assert!(engine.run_controlled(&lean, &ctl).is_none());
        });
        assert!(ctl.progress() < 1.0, "cancelled run never reports done");
    }
}
