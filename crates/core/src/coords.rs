//! Coordinate stores in the two memory layouts of the paper's
//! *cache-friendly data layout* optimization (Sec. V-B1, Fig. 9).
//!
//! * [`DataLayout::OriginalSoa`] — the odgi-style struct-of-arrays
//!   placement: node lengths, x coordinates and y coordinates live in
//!   three separate arrays, so touching one node costs **three** widely
//!   separated memory accesses (Fig. 9a).
//! * [`DataLayout::CacheFriendlyAos`] — the paper's array-of-structs
//!   repacking: each node's record `[len, sx, sy, ex, ey]` is contiguous
//!   (40 B), so one access brings the whole working set of the update step
//!   into cache (Fig. 9b).
//!
//! Both layouts expose identical operations over relaxed-atomic `f64`
//! cells (Hogwild!), so engines are layout-agnostic and the layout choice
//! is purely a performance axis — exactly the paper's Table IX ablation.

use crate::atomicf::{zeroed_slab, AtomicF64};
use pangraph::layout2d::Layout2D;
use pangraph::lean::LeanGraph;

/// Memory placement of node records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataLayout {
    /// Separate length/x/y arrays (odgi's layout; Fig. 9a).
    OriginalSoa,
    /// Packed per-node records (the paper's layout; Fig. 9b).
    CacheFriendlyAos,
}

impl DataLayout {
    /// Label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            DataLayout::OriginalSoa => "original SoA",
            DataLayout::CacheFriendlyAos => "cache-friendly AoS",
        }
    }
}

/// AoS record stride in `f64` words: `[len, sx, sy, ex, ey]`.
const AOS_STRIDE: usize = 5;

enum Slabs {
    /// `len[n]`, `x[2n]` (start,end interleaved), `y[2n]`.
    Soa {
        len: Vec<f64>,
        xs: Vec<AtomicF64>,
        ys: Vec<AtomicF64>,
    },
    /// `rec[5n]`, node `i` at `5i`: len, sx, sy, ex, ey.
    Aos { rec: Vec<AtomicF64> },
}

/// A thread-shared coordinate store for one layout run.
pub struct CoordStore {
    layout: DataLayout,
    n_nodes: usize,
    slabs: Slabs,
}

impl CoordStore {
    /// Allocate a zeroed store for the graph's nodes, recording node
    /// lengths (the AoS layout packs them with the coordinates, which is
    /// the point of the optimization).
    pub fn new(layout: DataLayout, lean: &LeanGraph) -> Self {
        let n = lean.node_count();
        let slabs = match layout {
            DataLayout::OriginalSoa => Slabs::Soa {
                len: lean.node_len.iter().map(|&l| l as f64).collect(),
                xs: zeroed_slab(2 * n),
                ys: zeroed_slab(2 * n),
            },
            DataLayout::CacheFriendlyAos => {
                let rec = zeroed_slab(AOS_STRIDE * n);
                for (i, &l) in lean.node_len.iter().enumerate() {
                    rec[AOS_STRIDE * i].store(l as f64);
                }
                Slabs::Aos { rec }
            }
        };
        Self {
            layout,
            n_nodes: n,
            slabs,
        }
    }

    /// The store's layout.
    #[inline]
    pub fn layout(&self) -> DataLayout {
        self.layout
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.n_nodes
    }

    /// Node length as stored (used by kernels needing `pos + len`).
    #[inline]
    pub fn node_len(&self, node: u32) -> f64 {
        match &self.slabs {
            Slabs::Soa { len, .. } => len[node as usize],
            Slabs::Aos { rec } => rec[AOS_STRIDE * node as usize].load(),
        }
    }

    /// Load one endpoint's coordinates (relaxed).
    #[inline]
    pub fn load(&self, node: u32, end: bool) -> (f64, f64) {
        match &self.slabs {
            Slabs::Soa { xs, ys, .. } => {
                let i = 2 * node as usize + end as usize;
                (xs[i].load(), ys[i].load())
            }
            Slabs::Aos { rec } => {
                let base = AOS_STRIDE * node as usize + 1 + 2 * end as usize;
                (rec[base].load(), rec[base + 1].load())
            }
        }
    }

    /// Store one endpoint's coordinates (relaxed).
    #[inline]
    pub fn store(&self, node: u32, end: bool, x: f64, y: f64) {
        match &self.slabs {
            Slabs::Soa { xs, ys, .. } => {
                let i = 2 * node as usize + end as usize;
                xs[i].store(x);
                ys[i].store(y);
            }
            Slabs::Aos { rec } => {
                let base = AOS_STRIDE * node as usize + 1 + 2 * end as usize;
                rec[base].store(x);
                rec[base + 1].store(y);
            }
        }
    }

    /// Hogwild-accumulate a delta onto one endpoint.
    #[inline]
    pub fn add(&self, node: u32, end: bool, dx: f64, dy: f64) {
        match &self.slabs {
            Slabs::Soa { xs, ys, .. } => {
                let i = 2 * node as usize + end as usize;
                xs[i].hogwild_add(dx);
                ys[i].hogwild_add(dy);
            }
            Slabs::Aos { rec } => {
                let base = AOS_STRIDE * node as usize + 1 + 2 * end as usize;
                rec[base].hogwild_add(dx);
                rec[base + 1].hogwild_add(dy);
            }
        }
    }

    /// Snapshot into a plain [`Layout2D`].
    pub fn to_layout(&self) -> Layout2D {
        let mut out = Layout2D::zeros(self.n_nodes);
        for node in 0..self.n_nodes as u32 {
            for end in [false, true] {
                let (x, y) = self.load(node, end);
                out.set(node, end, x, y);
            }
        }
        out
    }

    /// Initialize every endpoint from a plain layout.
    pub fn load_from(&self, layout: &Layout2D) {
        assert_eq!(layout.node_count(), self.n_nodes, "node count mismatch");
        for node in 0..self.n_nodes as u32 {
            for end in [false, true] {
                let (x, y) = layout.get(node, end);
                self.store(node, end, x, y);
            }
        }
    }
}

// Safety: all interior mutability is via atomics.
unsafe impl Sync for CoordStore {}
unsafe impl Send for CoordStore {}

#[cfg(test)]
mod tests {
    use super::*;
    use pangraph::model::fig1_graph;

    fn both_layouts() -> Vec<CoordStore> {
        let lean = LeanGraph::from_graph(&fig1_graph());
        vec![
            CoordStore::new(DataLayout::OriginalSoa, &lean),
            CoordStore::new(DataLayout::CacheFriendlyAos, &lean),
        ]
    }

    #[test]
    fn node_lengths_are_recorded_in_both_layouts() {
        let lean = LeanGraph::from_graph(&fig1_graph());
        for store in both_layouts() {
            for (i, &l) in lean.node_len.iter().enumerate() {
                assert_eq!(store.node_len(i as u32), l as f64, "{:?}", store.layout());
            }
        }
    }

    #[test]
    fn load_store_round_trip_both_layouts() {
        for store in both_layouts() {
            store.store(3, false, 1.5, -2.5);
            store.store(3, true, 7.0, 8.0);
            assert_eq!(store.load(3, false), (1.5, -2.5));
            assert_eq!(store.load(3, true), (7.0, 8.0));
            // Neighbours untouched.
            assert_eq!(store.load(2, false), (0.0, 0.0));
            assert_eq!(store.load(4, true), (0.0, 0.0));
            // Length word untouched by coordinate stores (AoS packing).
            assert_eq!(store.node_len(3), 1.0);
        }
    }

    #[test]
    fn add_accumulates() {
        for store in both_layouts() {
            store.store(1, true, 10.0, 20.0);
            store.add(1, true, -1.0, 2.0);
            store.add(1, true, 0.5, 0.5);
            let (x, y) = store.load(1, true);
            assert!((x - 9.5).abs() < 1e-12);
            assert!((y - 22.5).abs() < 1e-12);
        }
    }

    #[test]
    fn layouts_are_functionally_identical() {
        let lean = LeanGraph::from_graph(&fig1_graph());
        let a = CoordStore::new(DataLayout::OriginalSoa, &lean);
        let b = CoordStore::new(DataLayout::CacheFriendlyAos, &lean);
        for node in 0..lean.node_count() as u32 {
            for end in [false, true] {
                let v = (node as f64 * 2.0 + end as u8 as f64, -(node as f64));
                a.store(node, end, v.0, v.1);
                b.store(node, end, v.0, v.1);
            }
        }
        assert_eq!(a.to_layout(), b.to_layout());
    }

    #[test]
    fn to_layout_and_load_from_round_trip() {
        let lean = LeanGraph::from_graph(&fig1_graph());
        for layout_kind in [DataLayout::OriginalSoa, DataLayout::CacheFriendlyAos] {
            let store = CoordStore::new(layout_kind, &lean);
            let mut l = Layout2D::zeros(lean.node_count());
            for node in 0..lean.node_count() as u32 {
                l.set(node, false, node as f64, 1.0);
                l.set(node, true, node as f64 + 0.5, -1.0);
            }
            store.load_from(&l);
            assert_eq!(store.to_layout(), l);
        }
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn load_from_rejects_wrong_size() {
        let lean = LeanGraph::from_graph(&fig1_graph());
        let store = CoordStore::new(DataLayout::CacheFriendlyAos, &lean);
        store.load_from(&Layout2D::zeros(3));
    }

    #[test]
    fn labels_are_distinct() {
        assert_ne!(
            DataLayout::OriginalSoa.label(),
            DataLayout::CacheFriendlyAos.label()
        );
    }
}
