//! Coordinate stores across the paper's two performance axes:
//!
//! * **Memory layout** ([`DataLayout`], Sec. V-B1, Fig. 9) —
//!   odgi's struct-of-arrays placement vs. the paper's cache-friendly
//!   array-of-structs repacking (`[len, sx, sy, ex, ey]` per node), the
//!   Table IX ablation.
//! * **Precision** ([`Precision`]) — odgi's `f64` coordinates vs. the
//!   paper's GPU-style `f32` coordinates (Sec. V-B), which halve the
//!   slab's memory traffic.
//!
//! All four combinations expose identical operations over relaxed-atomic
//! cells (Hogwild!), so engines are axis-agnostic and both choices are
//! purely performance knobs. The hot path is [`CoordStore::apply_block`]:
//! it resolves the layout × precision dispatch **once per term block**,
//! then runs a monomorphized straight-line loop — load, update step,
//! racy accumulate — with no per-access branching, which is what lets
//! the compiler keep the loop tight. [`CoordStore::apply_block_simd`]
//! is the same loop restructured as gather → lane-wide delta kernel →
//! scatter (see [`crate::simd`]); [`CoordStore::apply_block_sharded`]
//! routes the scatter through per-owner spill buffers for the
//! sharded-write Hogwild mode.
//!
//! **Bounds-check policy:** the hot loops index slabs with ordinary
//! checked indexing, never `get_unchecked` — measured on this kernel,
//! unchecked indexing was 10–18% *slower* (it defeats LLVM's alias and
//! vectorization reasoning), while the checked form's bounds tests are
//! hoisted. Invariants that indexing cannot express (lane widths,
//! shard-owner ranges) are `debug_assert!`s.

use crate::sampler::Term;
use crate::scalar::LayoutScalar;
use crate::simd::{Lanes, F32_LANES, F64_LANES};
use crate::step::{term_deltas_lanes, term_deltas_t};
use pangraph::layout2d::Layout2D;
use pangraph::lean::LeanGraph;

/// Memory placement of node records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataLayout {
    /// Separate length/x/y arrays (odgi's layout; Fig. 9a).
    OriginalSoa,
    /// Packed per-node records (the paper's layout; Fig. 9b).
    CacheFriendlyAos,
}

impl DataLayout {
    /// Label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            DataLayout::OriginalSoa => "original SoA",
            DataLayout::CacheFriendlyAos => "cache-friendly AoS",
        }
    }
}

/// Coordinate precision of a layout run (the paper's fp32-vs-fp64 axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Precision {
    /// Double precision — odgi's CPU coordinates. The default.
    #[default]
    F64,
    /// Single precision — the paper's GPU coordinates; half the memory
    /// traffic per update.
    F32,
}

impl Precision {
    /// Lower-case wire/report name (`f64` / `f32`).
    pub fn label(self) -> &'static str {
        match self {
            Precision::F64 => "f64",
            Precision::F32 => "f32",
        }
    }

    /// Parse a wire name (`None` for anything unrecognized).
    pub fn parse_name(s: &str) -> Option<Self> {
        match s {
            "f64" => Some(Precision::F64),
            "f32" => Some(Precision::F32),
            _ => None,
        }
    }
}

/// AoS record stride in scalar words: `[len, sx, sy, ex, ey]`.
const AOS_STRIDE: usize = 5;

/// The accessor surface a term block is applied through. Implementations
/// are `#[inline]` leaf functions so [`apply_block_on`] monomorphizes
/// into one branch-free loop per layout × precision combination.
trait SlabOps<T: LayoutScalar> {
    fn load(&self, node: u32, end: bool) -> (T, T);
    fn store(&self, node: u32, end: bool, x: T, y: T);
    fn node_len(&self, node: u32) -> T;
}

/// Cache-line size the coordinate slabs align their first element to.
const SLAB_ALIGN: usize = 64;

/// A slab whose logical element 0 sits on a cache-line boundary.
///
/// `Vec` only guarantees the allocation is aligned to the element type,
/// so a slab's first cache line may be shared with the allocator's
/// neighbouring data — false sharing the sharded-write mode exists to
/// avoid. Rather than reach for `unsafe` raw allocation (this crate has
/// none and keeps it that way), we over-allocate by one cache line of
/// elements and compute, once, the element offset that lands index 0 on
/// a 64-byte boundary. Accessors add the constant offset; LLVM folds it
/// into the addressing mode, so the aligned slab costs nothing per
/// access.
struct AlignedSlab<C> {
    buf: Vec<C>,
    off: usize,
}

impl<C> AlignedSlab<C> {
    fn new(n: usize, fill: impl FnMut() -> C) -> Self {
        let size = std::mem::size_of::<C>().max(1);
        // One extra cache line of elements gives room to slide forward.
        let pad = SLAB_ALIGN.div_ceil(size);
        let buf: Vec<C> = std::iter::repeat_with(fill).take(n + pad).collect();
        let addr = buf.as_ptr() as usize;
        let off_bytes = addr.next_multiple_of(SLAB_ALIGN) - addr;
        debug_assert_eq!(off_bytes % size, 0, "cell size must divide the alignment");
        Self {
            buf,
            off: off_bytes / size,
        }
    }

    /// Borrow the logical element `i` (bounds-checked; see module docs).
    #[inline(always)]
    fn cell(&self, i: usize) -> &C {
        &self.buf[self.off + i]
    }

    /// Address of logical element 0 (for alignment assertions in tests).
    #[cfg(test)]
    fn base_addr(&self) -> usize {
        self.buf[self.off..].as_ptr() as usize
    }
}

/// odgi-style struct-of-arrays: lengths, x and y in separate slabs.
struct SoaSlab<T: LayoutScalar> {
    len: Vec<T>,
    xs: AlignedSlab<T::Cell>,
    ys: AlignedSlab<T::Cell>,
}

impl<T: LayoutScalar> SoaSlab<T> {
    fn new(lean: &LeanGraph) -> Self {
        let n = lean.node_count();
        Self {
            len: lean
                .node_len
                .iter()
                .map(|&l| T::from_f64(l as f64))
                .collect(),
            xs: zeroed_cells::<T>(2 * n),
            ys: zeroed_cells::<T>(2 * n),
        }
    }
}

impl<T: LayoutScalar> SlabOps<T> for SoaSlab<T> {
    #[inline]
    fn load(&self, node: u32, end: bool) -> (T, T) {
        let i = 2 * node as usize + end as usize;
        (T::cell_load(self.xs.cell(i)), T::cell_load(self.ys.cell(i)))
    }

    #[inline]
    fn store(&self, node: u32, end: bool, x: T, y: T) {
        let i = 2 * node as usize + end as usize;
        T::cell_store(self.xs.cell(i), x);
        T::cell_store(self.ys.cell(i), y);
    }

    #[inline]
    fn node_len(&self, node: u32) -> T {
        self.len[node as usize]
    }
}

/// The paper's array-of-structs record: node `i` at `5i`.
struct AosSlab<T: LayoutScalar> {
    rec: AlignedSlab<T::Cell>,
}

impl<T: LayoutScalar> AosSlab<T> {
    fn new(lean: &LeanGraph) -> Self {
        let rec = zeroed_cells::<T>(AOS_STRIDE * lean.node_count());
        for (i, &l) in lean.node_len.iter().enumerate() {
            T::cell_store(rec.cell(AOS_STRIDE * i), T::from_f64(l as f64));
        }
        Self { rec }
    }
}

impl<T: LayoutScalar> SlabOps<T> for AosSlab<T> {
    #[inline]
    fn load(&self, node: u32, end: bool) -> (T, T) {
        let base = AOS_STRIDE * node as usize + 1 + 2 * end as usize;
        (
            T::cell_load(self.rec.cell(base)),
            T::cell_load(self.rec.cell(base + 1)),
        )
    }

    #[inline]
    fn store(&self, node: u32, end: bool, x: T, y: T) {
        let base = AOS_STRIDE * node as usize + 1 + 2 * end as usize;
        T::cell_store(self.rec.cell(base), x);
        T::cell_store(self.rec.cell(base + 1), y);
    }

    #[inline]
    fn node_len(&self, node: u32) -> T {
        T::cell_load(self.rec.cell(AOS_STRIDE * node as usize))
    }
}

fn zeroed_cells<T: LayoutScalar>(n: usize) -> AlignedSlab<T::Cell> {
    AlignedSlab::new(n, || T::cell_new(T::ZERO))
}

/// Hogwild-accumulate one endpoint: racy relaxed load → add → store.
#[inline]
fn hogwild_add_on<T: LayoutScalar, S: SlabOps<T>>(slab: &S, node: u32, end: bool, dx: T, dy: T) {
    let (x, y) = slab.load(node, end);
    slab.store(node, end, x + dx, y + dy);
}

/// One half of an out-of-shard term, addressed to the owner of `node`.
///
/// The spill carries the *term*, not a precomputed delta: the owner
/// recomputes the update from fresh coordinates when it drains
/// ([`CoordStore::apply_spills`]). Spilling deltas instead diverges —
/// under Zipf sampling a thread draws the same popular pair many times
/// per block, and m identical halfway-corrections computed from one
/// stale read then land as an m/2-fold overshoot. Recomputing at drain
/// time keeps the update a contraction, at the cost of re-running the
/// delta kernel for cross-shard terms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpillEntry {
    /// Target node (owned by the destination shard).
    pub node: u32,
    /// Target endpoint (start/end).
    pub end: bool,
    /// The term's other node.
    pub other: u32,
    /// The other node's endpoint.
    pub other_end: bool,
    /// The term's reference distance.
    pub d_ref: f64,
}

/// Per-destination spill buffers for one worker thread in sharded-write
/// mode: `bufs[owner]` collects the deltas this thread computed for
/// nodes owned by `owner`. Drained at block boundaries by the engine.
#[derive(Debug, Default)]
pub struct ShardSpills {
    /// One buffer per destination shard (including our own, unused).
    pub bufs: Vec<Vec<SpillEntry>>,
}

impl ShardSpills {
    /// Empty buffers for `threads` destination shards.
    pub fn new(threads: usize) -> Self {
        Self {
            bufs: (0..threads).map(|_| Vec::new()).collect(),
        }
    }
}

/// The scalar hot loop: apply a sampled term block with fully inlined,
/// branch-free accessors, routing each endpoint delta through `scatter`
/// (direct Hogwild add, or shard routing). `scatter` receives the term
/// and which side the delta belongs to (`first` = the `i` side), so a
/// routing scatter can reconstruct the term half it spills. Called once
/// per block, so the layout × precision dispatch cost is amortized over
/// the block.
#[inline]
fn apply_block_scalar<T, S>(
    slab: &S,
    terms: &[Term],
    eta: T,
    scatter: &mut impl FnMut(&S, &Term, bool, T, T),
) where
    T: LayoutScalar,
    S: SlabOps<T>,
{
    for t in terms {
        let vi = slab.load(t.node_i, t.end_i);
        let vj = slab.load(t.node_j, t.end_j);
        let (di, dj) = term_deltas_t(vi, vj, T::from_f64(t.d_ref), eta);
        scatter(slab, t, true, di.0, di.1);
        scatter(slab, t, false, dj.0, dj.1);
    }
}

/// The plain scatter: Hogwild-add the delta to its endpoint.
#[inline]
fn direct_scatter<T: LayoutScalar, S: SlabOps<T>>(slab: &S, t: &Term, first: bool, dx: T, dy: T) {
    let (node, end) = if first {
        (t.node_i, t.end_i)
    } else {
        (t.node_j, t.end_j)
    };
    hogwild_add_on(slab, node, end, dx, dy);
}

/// The vector hot loop: gather `W` terms' endpoints into lane arrays,
/// run the lane-wide delta kernel, then scatter the Hogwild adds.
///
/// Per-lane arithmetic is IEEE-identical to the scalar loop; only the
/// memory interleaving differs (all `W` gathers happen before any of
/// the group's scatters), so a group that touches one node twice sees
/// the pre-group value in both lanes instead of accumulating — the same
/// benign race Hogwild already tolerates between threads. The remainder
/// tail runs through the scalar loop.
#[inline]
fn apply_block_vec<T, S, const W: usize>(
    slab: &S,
    terms: &[Term],
    eta: T,
    scatter: &mut impl FnMut(&S, &Term, bool, T, T),
) where
    T: LayoutScalar,
    S: SlabOps<T>,
{
    let etav = Lanes::splat(eta);
    let mut groups = terms.chunks_exact(W);
    for g in groups.by_ref() {
        let mut xi = [T::ZERO; W];
        let mut yi = [T::ZERO; W];
        let mut xj = [T::ZERO; W];
        let mut yj = [T::ZERO; W];
        let mut dr = [T::ZERO; W];
        for (l, t) in g.iter().enumerate() {
            let (x, y) = slab.load(t.node_i, t.end_i);
            xi[l] = x;
            yi[l] = y;
            let (x, y) = slab.load(t.node_j, t.end_j);
            xj[l] = x;
            yj[l] = y;
            dr[l] = T::from_f64(t.d_ref);
        }
        let (rx, ry) =
            term_deltas_lanes(Lanes(xi), Lanes(yi), Lanes(xj), Lanes(yj), Lanes(dr), etav);
        for (l, t) in g.iter().enumerate() {
            scatter(slab, t, true, -rx.0[l], -ry.0[l]);
            scatter(slab, t, false, rx.0[l], ry.0[l]);
        }
    }
    apply_block_scalar(slab, groups.remainder(), eta, scatter);
}

/// Pick the kernel shape: scalar loop, or the vector loop at the
/// precision's natural lane width ([`F32_LANES`]/[`F64_LANES`]).
#[inline]
fn apply_block_dispatch<T, S>(
    slab: &S,
    terms: &[Term],
    eta: T,
    simd: bool,
    scatter: &mut impl FnMut(&S, &Term, bool, T, T),
) where
    T: LayoutScalar,
    S: SlabOps<T>,
{
    if !simd {
        apply_block_scalar(slab, terms, eta, scatter);
    } else if std::mem::size_of::<T>() == 4 {
        apply_block_vec::<T, S, F32_LANES>(slab, terms, eta, scatter);
    } else {
        apply_block_vec::<T, S, F64_LANES>(slab, terms, eta, scatter);
    }
}

/// The four slab instantiations (layout × precision).
enum Slabs {
    SoaF64(SoaSlab<f64>),
    AosF64(AosSlab<f64>),
    SoaF32(SoaSlab<f32>),
    AosF32(AosSlab<f32>),
}

/// Hoist the slab dispatch once, then run `$body` with `$slab` bound to
/// the concrete monomorphized slab.
macro_rules! with_slab {
    ($self:expr, $slab:ident, $body:expr) => {
        match &$self.slabs {
            Slabs::SoaF64($slab) => $body,
            Slabs::AosF64($slab) => $body,
            Slabs::SoaF32($slab) => $body,
            Slabs::AosF32($slab) => $body,
        }
    };
}

/// A thread-shared coordinate store for one layout run.
pub struct CoordStore {
    layout: DataLayout,
    precision: Precision,
    n_nodes: usize,
    slabs: Slabs,
}

impl CoordStore {
    /// Allocate a zeroed double-precision store (the historical default;
    /// see [`CoordStore::with_precision`] for the full axis).
    pub fn new(layout: DataLayout, lean: &LeanGraph) -> Self {
        Self::with_precision(layout, Precision::F64, lean)
    }

    /// Allocate a zeroed store for the graph's nodes, recording node
    /// lengths (the AoS layout packs them with the coordinates, which is
    /// the point of that optimization).
    pub fn with_precision(layout: DataLayout, precision: Precision, lean: &LeanGraph) -> Self {
        let slabs = match (layout, precision) {
            (DataLayout::OriginalSoa, Precision::F64) => Slabs::SoaF64(SoaSlab::new(lean)),
            (DataLayout::CacheFriendlyAos, Precision::F64) => Slabs::AosF64(AosSlab::new(lean)),
            (DataLayout::OriginalSoa, Precision::F32) => Slabs::SoaF32(SoaSlab::new(lean)),
            (DataLayout::CacheFriendlyAos, Precision::F32) => Slabs::AosF32(AosSlab::new(lean)),
        };
        Self {
            layout,
            precision,
            n_nodes: lean.node_count(),
            slabs,
        }
    }

    /// The store's layout.
    #[inline]
    pub fn layout(&self) -> DataLayout {
        self.layout
    }

    /// The store's coordinate precision.
    #[inline]
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.n_nodes
    }

    /// Node length as stored (used by kernels needing `pos + len`).
    #[inline]
    pub fn node_len(&self, node: u32) -> f64 {
        with_slab!(self, s, s.node_len(node).to_f64())
    }

    /// Load one endpoint's coordinates (relaxed).
    #[inline]
    pub fn load(&self, node: u32, end: bool) -> (f64, f64) {
        with_slab!(self, s, {
            let (x, y) = s.load(node, end);
            (x.to_f64(), y.to_f64())
        })
    }

    /// Store one endpoint's coordinates (relaxed).
    #[inline]
    pub fn store(&self, node: u32, end: bool, x: f64, y: f64) {
        with_slab!(self, s, s.store(node, end, from64(s, x), from64(s, y)))
    }

    /// Hogwild-accumulate a delta onto one endpoint.
    #[inline]
    pub fn add(&self, node: u32, end: bool, dx: f64, dy: f64) {
        with_slab!(
            self,
            s,
            hogwild_add_on(s, node, end, from64(s, dx), from64(s, dy))
        )
    }

    /// Apply a block of sampled terms — the engines' hot path. The slab
    /// dispatch happens once here; the per-term loop is monomorphized
    /// straight-line code in the store's native precision. This scalar
    /// path is bit-compatible with prior releases.
    #[inline]
    pub fn apply_block(&self, terms: &[Term], eta: f64) {
        with_slab!(self, s, {
            let eta = from64(s, eta);
            apply_block_scalar(s, terms, eta, &mut direct_scatter)
        })
    }

    /// Apply a term block through the gather → lane kernel → scatter
    /// vector path. Per-lane arithmetic matches the scalar path exactly;
    /// within a lane group all gathers precede all scatters (see
    /// [`crate::simd`] for the equivalence argument), so use
    /// [`CoordStore::apply_block`] where bit-stability against earlier
    /// releases matters.
    #[inline]
    pub fn apply_block_simd(&self, terms: &[Term], eta: f64) {
        with_slab!(self, s, {
            let eta = from64(s, eta);
            apply_block_dispatch(s, terms, eta, true, &mut direct_scatter)
        })
    }

    /// Shard owner of `node` when coordinates are split across `threads`
    /// contiguous write-ranges: `floor(node · threads / n_nodes)`.
    #[inline]
    pub fn shard_owner(&self, node: u32, threads: usize) -> usize {
        debug_assert!(threads >= 1);
        ((node as u64 * threads as u64) / (self.n_nodes as u64).max(1)) as usize
    }

    /// Sharded-write block application: deltas for nodes owned by `tid`
    /// are Hogwild-added directly; term halves targeting foreign nodes
    /// are pushed into `spills.bufs[owner]` for that owner to recompute
    /// and apply at the next block boundary (see [`SpillEntry`] for why
    /// terms, not deltas, travel). With `threads == 1` every node is
    /// self-owned and this is bit-identical to the unsharded path.
    /// `simd` selects the vector kernel as in
    /// [`CoordStore::apply_block_simd`].
    pub fn apply_block_sharded(
        &self,
        terms: &[Term],
        eta: f64,
        simd: bool,
        tid: usize,
        threads: usize,
        spills: &mut ShardSpills,
    ) {
        debug_assert_eq!(spills.bufs.len(), threads);
        let n = (self.n_nodes as u64).max(1);
        let t64 = threads as u64;
        with_slab!(self, s, {
            let eta = from64(s, eta);
            apply_block_dispatch(
                s,
                terms,
                eta,
                simd,
                &mut |s: &_, t: &Term, first: bool, dx, dy| {
                    let (node, end, other, other_end) = if first {
                        (t.node_i, t.end_i, t.node_j, t.end_j)
                    } else {
                        (t.node_j, t.end_j, t.node_i, t.end_i)
                    };
                    let owner = ((node as u64 * t64) / n) as usize;
                    if owner == tid {
                        hogwild_add_on(s, node, end, dx, dy);
                    } else {
                        spills.bufs[owner].push(SpillEntry {
                            node,
                            end,
                            other,
                            other_end,
                            d_ref: t.d_ref,
                        });
                    }
                },
            )
        })
    }

    /// Recompute and apply a drained spill batch — the owner side of
    /// sharded writes. Each entry's delta is recomputed from the
    /// *current* coordinates of both endpoints (the kernel is symmetric
    /// under endpoint swap, so the target-first argument order yields
    /// the target's delta), then Hogwild-added to the target only; the
    /// other half of the term is the sender's (or a third shard's)
    /// responsibility.
    pub fn apply_spills(&self, entries: &[SpillEntry], eta: f64) {
        with_slab!(self, s, {
            let eta = from64(s, eta);
            for e in entries {
                let vt = s.load(e.node, e.end);
                let vo = s.load(e.other, e.other_end);
                let (dt, _) = term_deltas_t(vt, vo, from64(s, e.d_ref), eta);
                hogwild_add_on(s, e.node, e.end, dt.0, dt.1);
            }
        })
    }

    /// Snapshot into a plain [`Layout2D`].
    pub fn to_layout(&self) -> Layout2D {
        let mut out = Layout2D::zeros(self.n_nodes);
        for node in 0..self.n_nodes as u32 {
            for end in [false, true] {
                let (x, y) = self.load(node, end);
                out.set(node, end, x, y);
            }
        }
        out
    }

    /// Initialize every endpoint from a plain layout.
    pub fn load_from(&self, layout: &Layout2D) {
        assert_eq!(layout.node_count(), self.n_nodes, "node count mismatch");
        for node in 0..self.n_nodes as u32 {
            for end in [false, true] {
                let (x, y) = layout.get(node, end);
                self.store(node, end, x, y);
            }
        }
    }
}

/// Narrow an `f64` to a slab's native scalar (type inference helper).
#[inline]
fn from64<T: LayoutScalar, S: SlabOps<T>>(_slab: &S, v: f64) -> T {
    T::from_f64(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pangraph::model::fig1_graph;

    fn all_stores() -> Vec<CoordStore> {
        let lean = LeanGraph::from_graph(&fig1_graph());
        let mut out = Vec::new();
        for layout in [DataLayout::OriginalSoa, DataLayout::CacheFriendlyAos] {
            for precision in [Precision::F64, Precision::F32] {
                out.push(CoordStore::with_precision(layout, precision, &lean));
            }
        }
        out
    }

    #[test]
    fn default_constructor_is_f64() {
        let lean = LeanGraph::from_graph(&fig1_graph());
        let store = CoordStore::new(DataLayout::CacheFriendlyAos, &lean);
        assert_eq!(store.precision(), Precision::F64);
    }

    #[test]
    fn node_lengths_are_recorded_in_all_variants() {
        let lean = LeanGraph::from_graph(&fig1_graph());
        for store in all_stores() {
            for (i, &l) in lean.node_len.iter().enumerate() {
                assert_eq!(
                    store.node_len(i as u32),
                    l as f64,
                    "{:?}/{:?}",
                    store.layout(),
                    store.precision()
                );
            }
        }
    }

    #[test]
    fn load_store_round_trip_all_variants() {
        for store in all_stores() {
            store.store(3, false, 1.5, -2.5);
            store.store(3, true, 7.0, 8.0);
            assert_eq!(store.load(3, false), (1.5, -2.5));
            assert_eq!(store.load(3, true), (7.0, 8.0));
            // Neighbours untouched.
            assert_eq!(store.load(2, false), (0.0, 0.0));
            assert_eq!(store.load(4, true), (0.0, 0.0));
            // Length word untouched by coordinate stores (AoS packing).
            assert_eq!(store.node_len(3), 1.0);
        }
    }

    #[test]
    fn add_accumulates() {
        for store in all_stores() {
            store.store(1, true, 10.0, 20.0);
            store.add(1, true, -1.0, 2.0);
            store.add(1, true, 0.5, 0.5);
            let (x, y) = store.load(1, true);
            assert!((x - 9.5).abs() < 1e-6, "{:?}", store.precision());
            assert!((y - 22.5).abs() < 1e-6);
        }
    }

    #[test]
    fn layouts_are_functionally_identical() {
        let lean = LeanGraph::from_graph(&fig1_graph());
        let a = CoordStore::new(DataLayout::OriginalSoa, &lean);
        let b = CoordStore::new(DataLayout::CacheFriendlyAos, &lean);
        for node in 0..lean.node_count() as u32 {
            for end in [false, true] {
                let v = (node as f64 * 2.0 + end as u8 as f64, -(node as f64));
                a.store(node, end, v.0, v.1);
                b.store(node, end, v.0, v.1);
            }
        }
        assert_eq!(a.to_layout(), b.to_layout());
    }

    #[test]
    fn apply_block_matches_scalar_updates_exactly_in_f64() {
        use crate::step::term_deltas;
        let lean = LeanGraph::from_graph(&fig1_graph());
        let terms: Vec<Term> = vec![
            Term {
                s_i: 0,
                s_j: 3,
                node_i: 0,
                node_j: 3,
                end_i: false,
                end_j: true,
                d_ref: 4.0,
            },
            Term {
                s_i: 1,
                s_j: 2,
                node_i: 1,
                node_j: 2,
                end_i: true,
                end_j: false,
                d_ref: 2.0,
            },
            // Touches node 0 again: block application must accumulate.
            Term {
                s_i: 0,
                s_j: 4,
                node_i: 0,
                node_j: 4,
                end_i: false,
                end_j: false,
                d_ref: 1.5,
            },
        ];
        for layout in [DataLayout::OriginalSoa, DataLayout::CacheFriendlyAos] {
            let block = CoordStore::with_precision(layout, Precision::F64, &lean);
            let scalar = CoordStore::with_precision(layout, Precision::F64, &lean);
            for node in 0..lean.node_count() as u32 {
                for end in [false, true] {
                    let v = (node as f64 * 3.0, end as u8 as f64 - 0.5);
                    block.store(node, end, v.0, v.1);
                    scalar.store(node, end, v.0, v.1);
                }
            }
            let eta = 7.5;
            block.apply_block(&terms, eta);
            for t in &terms {
                let vi = scalar.load(t.node_i, t.end_i);
                let vj = scalar.load(t.node_j, t.end_j);
                let (di, dj) = term_deltas(vi, vj, t.d_ref, eta);
                scalar.add(t.node_i, t.end_i, di.0, di.1);
                scalar.add(t.node_j, t.end_j, dj.0, dj.1);
            }
            assert_eq!(block.to_layout(), scalar.to_layout(), "{layout:?}");
        }
    }

    #[test]
    fn f32_apply_block_tracks_f64_within_single_precision() {
        let lean = LeanGraph::from_graph(&fig1_graph());
        let terms = vec![Term {
            s_i: 0,
            s_j: 3,
            node_i: 0,
            node_j: 3,
            end_i: false,
            end_j: true,
            d_ref: 4.0,
        }];
        let wide = CoordStore::with_precision(DataLayout::CacheFriendlyAos, Precision::F64, &lean);
        let narrow =
            CoordStore::with_precision(DataLayout::CacheFriendlyAos, Precision::F32, &lean);
        for s in [&wide, &narrow] {
            s.store(0, false, 0.0, 0.0);
            s.store(3, true, 10.0, 0.0);
        }
        wide.apply_block(&terms, 1e3);
        narrow.apply_block(&terms, 1e3);
        for node in [0u32, 3] {
            for end in [false, true] {
                let (xw, yw) = wide.load(node, end);
                let (xn, yn) = narrow.load(node, end);
                assert!((xw - xn).abs() < 1e-4, "node {node}: {xw} vs {xn}");
                assert!((yw - yn).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn to_layout_and_load_from_round_trip() {
        let lean = LeanGraph::from_graph(&fig1_graph());
        for layout_kind in [DataLayout::OriginalSoa, DataLayout::CacheFriendlyAos] {
            let store = CoordStore::with_precision(layout_kind, Precision::F64, &lean);
            let mut l = Layout2D::zeros(lean.node_count());
            for node in 0..lean.node_count() as u32 {
                l.set(node, false, node as f64, 1.0);
                l.set(node, true, node as f64 + 0.5, -1.0);
            }
            store.load_from(&l);
            assert_eq!(store.to_layout(), l);
        }
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn load_from_rejects_wrong_size() {
        let lean = LeanGraph::from_graph(&fig1_graph());
        let store = CoordStore::new(DataLayout::CacheFriendlyAos, &lean);
        store.load_from(&Layout2D::zeros(3));
    }

    #[test]
    fn slabs_are_cache_line_aligned() {
        let a = AlignedSlab::new(37, || 0u64);
        assert_eq!(a.base_addr() % SLAB_ALIGN, 0);
        let b = AlignedSlab::new(3, || 0u32);
        assert_eq!(b.base_addr() % SLAB_ALIGN, 0);
        // Logical indexing still sees the fill values in order.
        let c = {
            let mut i = 0u32;
            AlignedSlab::new(8, move || {
                i += 1;
                i
            })
        };
        // Elements are shifted by a constant, so consecutive cells stay
        // consecutive.
        assert_eq!(*c.cell(1), *c.cell(0) + 1);
    }

    /// Terms over pairwise-distinct endpoints: in a collision-free lane
    /// group the vector path's gather/scatter reordering is invisible,
    /// so it must be bit-identical to the scalar path.
    fn distinct_terms() -> Vec<Term> {
        (0..11u32)
            .map(|k| Term {
                s_i: 2 * k as usize,
                s_j: 2 * k as usize + 1,
                node_i: 2 * k,
                node_j: 2 * k + 1,
                end_i: k % 2 == 0,
                end_j: k % 3 == 0,
                d_ref: 1.0 + k as f64 * 0.75,
            })
            .collect()
    }

    fn big_lean() -> LeanGraph {
        use workloads::{generate, PangenomeSpec};
        LeanGraph::from_graph(&generate(&PangenomeSpec::basic("coords-simd", 24, 3, 7)))
    }

    fn seed_store(store: &CoordStore) {
        for node in 0..store.node_count() as u32 {
            for end in [false, true] {
                store.store(node, end, node as f64 * 1.25 - 3.0, end as u8 as f64 + 0.5);
            }
        }
    }

    #[test]
    fn simd_path_is_bit_identical_to_scalar_on_collision_free_terms() {
        let lean = big_lean();
        let terms = distinct_terms();
        for layout in [DataLayout::OriginalSoa, DataLayout::CacheFriendlyAos] {
            for precision in [Precision::F64, Precision::F32] {
                let vec = CoordStore::with_precision(layout, precision, &lean);
                let sca = CoordStore::with_precision(layout, precision, &lean);
                seed_store(&vec);
                seed_store(&sca);
                vec.apply_block_simd(&terms, 0.9);
                sca.apply_block(&terms, 0.9);
                assert_eq!(vec.to_layout(), sca.to_layout(), "{layout:?}/{precision:?}");
            }
        }
    }

    #[test]
    fn shard_owner_ranges_are_contiguous_and_cover_all_nodes() {
        let lean = big_lean();
        let store = CoordStore::new(DataLayout::CacheFriendlyAos, &lean);
        for threads in [1usize, 2, 3, 4, 7] {
            let mut prev = 0usize;
            let mut seen = vec![0usize; threads];
            for node in 0..store.node_count() as u32 {
                let o = store.shard_owner(node, threads);
                assert!(o < threads);
                assert!(o >= prev, "owners must be monotone in node id");
                prev = o;
                seen[o] += 1;
            }
            assert!(seen.iter().all(|&c| c > 0), "every shard owns nodes");
        }
    }

    #[test]
    fn sharded_apply_plus_spill_drain_tracks_direct_apply() {
        let lean = big_lean();
        let terms = distinct_terms();
        let threads = 3;
        for precision in [Precision::F64, Precision::F32] {
            let direct = CoordStore::with_precision(DataLayout::CacheFriendlyAos, precision, &lean);
            let sharded =
                CoordStore::with_precision(DataLayout::CacheFriendlyAos, precision, &lean);
            seed_store(&direct);
            seed_store(&sharded);
            let eta = 0.2;
            direct.apply_block(&terms, eta);
            // One "thread" applies everything: its own nodes directly,
            // the rest via spill buffers it then drains itself. Drained
            // halves are *recomputed* against coordinates the direct
            // adds already moved, so the result tracks the direct block
            // to within the update magnitude, not bitwise.
            let tid = 1;
            let mut spills = ShardSpills::new(threads);
            sharded.apply_block_sharded(&terms, eta, false, tid, threads, &mut spills);
            let mut spilled = 0;
            for buf in &spills.bufs {
                spilled += buf.len();
                sharded.apply_spills(buf, eta);
            }
            assert!(spilled > 0, "the term set must cross shard boundaries");
            for node in 0..sharded.node_count() as u32 {
                for end in [false, true] {
                    let (xd, yd) = direct.load(node, end);
                    let (xs, ys) = sharded.load(node, end);
                    assert!(
                        (xd - xs).abs() < 0.05 && (yd - ys).abs() < 0.05,
                        "{precision:?} node {node}: direct ({xd},{yd}) vs sharded ({xs},{ys})"
                    );
                }
            }
        }
    }

    #[test]
    fn sharded_single_thread_is_bit_identical_to_unsharded() {
        let lean = big_lean();
        let terms = distinct_terms();
        let plain = CoordStore::new(DataLayout::CacheFriendlyAos, &lean);
        let sharded = CoordStore::new(DataLayout::CacheFriendlyAos, &lean);
        seed_store(&plain);
        seed_store(&sharded);
        plain.apply_block(&terms, 0.7);
        let mut spills = ShardSpills::new(1);
        sharded.apply_block_sharded(&terms, 0.7, false, 0, 1, &mut spills);
        assert!(spills.bufs[0].is_empty(), "self-owned deltas never spill");
        assert_eq!(plain.to_layout(), sharded.to_layout());
    }

    #[test]
    fn labels_are_distinct() {
        assert_ne!(
            DataLayout::OriginalSoa.label(),
            DataLayout::CacheFriendlyAos.label()
        );
        assert_ne!(Precision::F64.label(), Precision::F32.label());
        assert_eq!(Precision::parse_name("f32"), Some(Precision::F32));
        assert_eq!(Precision::parse_name("f64"), Some(Precision::F64));
        assert_eq!(Precision::parse_name("f128"), None);
        assert_eq!(Precision::default(), Precision::F64);
    }
}
