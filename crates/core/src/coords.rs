//! Coordinate stores across the paper's two performance axes:
//!
//! * **Memory layout** ([`DataLayout`], Sec. V-B1, Fig. 9) —
//!   odgi's struct-of-arrays placement vs. the paper's cache-friendly
//!   array-of-structs repacking (`[len, sx, sy, ex, ey]` per node), the
//!   Table IX ablation.
//! * **Precision** ([`Precision`]) — odgi's `f64` coordinates vs. the
//!   paper's GPU-style `f32` coordinates (Sec. V-B), which halve the
//!   slab's memory traffic.
//!
//! All four combinations expose identical operations over relaxed-atomic
//! cells (Hogwild!), so engines are axis-agnostic and both choices are
//! purely performance knobs. The hot path is [`CoordStore::apply_block`]:
//! it resolves the layout × precision dispatch **once per term block**,
//! then runs a monomorphized straight-line loop — load, update step,
//! racy accumulate — with no per-access branching, which is what lets
//! the compiler keep the loop tight.

use crate::sampler::Term;
use crate::scalar::LayoutScalar;
use crate::step::term_deltas_t;
use pangraph::layout2d::Layout2D;
use pangraph::lean::LeanGraph;

/// Memory placement of node records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataLayout {
    /// Separate length/x/y arrays (odgi's layout; Fig. 9a).
    OriginalSoa,
    /// Packed per-node records (the paper's layout; Fig. 9b).
    CacheFriendlyAos,
}

impl DataLayout {
    /// Label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            DataLayout::OriginalSoa => "original SoA",
            DataLayout::CacheFriendlyAos => "cache-friendly AoS",
        }
    }
}

/// Coordinate precision of a layout run (the paper's fp32-vs-fp64 axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Precision {
    /// Double precision — odgi's CPU coordinates. The default.
    #[default]
    F64,
    /// Single precision — the paper's GPU coordinates; half the memory
    /// traffic per update.
    F32,
}

impl Precision {
    /// Lower-case wire/report name (`f64` / `f32`).
    pub fn label(self) -> &'static str {
        match self {
            Precision::F64 => "f64",
            Precision::F32 => "f32",
        }
    }

    /// Parse a wire name (`None` for anything unrecognized).
    pub fn parse_name(s: &str) -> Option<Self> {
        match s {
            "f64" => Some(Precision::F64),
            "f32" => Some(Precision::F32),
            _ => None,
        }
    }
}

/// AoS record stride in scalar words: `[len, sx, sy, ex, ey]`.
const AOS_STRIDE: usize = 5;

/// The accessor surface a term block is applied through. Implementations
/// are `#[inline]` leaf functions so [`apply_block_on`] monomorphizes
/// into one branch-free loop per layout × precision combination.
trait SlabOps<T: LayoutScalar> {
    fn load(&self, node: u32, end: bool) -> (T, T);
    fn store(&self, node: u32, end: bool, x: T, y: T);
    fn node_len(&self, node: u32) -> T;
}

/// odgi-style struct-of-arrays: lengths, x and y in separate slabs.
struct SoaSlab<T: LayoutScalar> {
    len: Vec<T>,
    xs: Vec<T::Cell>,
    ys: Vec<T::Cell>,
}

impl<T: LayoutScalar> SoaSlab<T> {
    fn new(lean: &LeanGraph) -> Self {
        let n = lean.node_count();
        Self {
            len: lean
                .node_len
                .iter()
                .map(|&l| T::from_f64(l as f64))
                .collect(),
            xs: zeroed_cells::<T>(2 * n),
            ys: zeroed_cells::<T>(2 * n),
        }
    }
}

impl<T: LayoutScalar> SlabOps<T> for SoaSlab<T> {
    #[inline]
    fn load(&self, node: u32, end: bool) -> (T, T) {
        let i = 2 * node as usize + end as usize;
        (T::cell_load(&self.xs[i]), T::cell_load(&self.ys[i]))
    }

    #[inline]
    fn store(&self, node: u32, end: bool, x: T, y: T) {
        let i = 2 * node as usize + end as usize;
        T::cell_store(&self.xs[i], x);
        T::cell_store(&self.ys[i], y);
    }

    #[inline]
    fn node_len(&self, node: u32) -> T {
        self.len[node as usize]
    }
}

/// The paper's array-of-structs record: node `i` at `5i`.
struct AosSlab<T: LayoutScalar> {
    rec: Vec<T::Cell>,
}

impl<T: LayoutScalar> AosSlab<T> {
    fn new(lean: &LeanGraph) -> Self {
        let rec = zeroed_cells::<T>(AOS_STRIDE * lean.node_count());
        for (i, &l) in lean.node_len.iter().enumerate() {
            T::cell_store(&rec[AOS_STRIDE * i], T::from_f64(l as f64));
        }
        Self { rec }
    }
}

impl<T: LayoutScalar> SlabOps<T> for AosSlab<T> {
    #[inline]
    fn load(&self, node: u32, end: bool) -> (T, T) {
        let base = AOS_STRIDE * node as usize + 1 + 2 * end as usize;
        (
            T::cell_load(&self.rec[base]),
            T::cell_load(&self.rec[base + 1]),
        )
    }

    #[inline]
    fn store(&self, node: u32, end: bool, x: T, y: T) {
        let base = AOS_STRIDE * node as usize + 1 + 2 * end as usize;
        T::cell_store(&self.rec[base], x);
        T::cell_store(&self.rec[base + 1], y);
    }

    #[inline]
    fn node_len(&self, node: u32) -> T {
        T::cell_load(&self.rec[AOS_STRIDE * node as usize])
    }
}

fn zeroed_cells<T: LayoutScalar>(n: usize) -> Vec<T::Cell> {
    std::iter::repeat_with(|| T::cell_new(T::ZERO))
        .take(n)
        .collect()
}

/// Hogwild-accumulate one endpoint: racy relaxed load → add → store.
#[inline]
fn hogwild_add_on<T: LayoutScalar, S: SlabOps<T>>(slab: &S, node: u32, end: bool, dx: T, dy: T) {
    let (x, y) = slab.load(node, end);
    slab.store(node, end, x + dx, y + dy);
}

/// The hot loop: apply a sampled term block with fully inlined,
/// branch-free accessors. Called once per block, so the layout ×
/// precision dispatch cost is amortized over the whole block.
#[inline]
fn apply_block_on<T: LayoutScalar, S: SlabOps<T>>(slab: &S, terms: &[Term], eta: f64) {
    let eta = T::from_f64(eta);
    for t in terms {
        let vi = slab.load(t.node_i, t.end_i);
        let vj = slab.load(t.node_j, t.end_j);
        let (di, dj) = term_deltas_t(vi, vj, T::from_f64(t.d_ref), eta);
        hogwild_add_on(slab, t.node_i, t.end_i, di.0, di.1);
        hogwild_add_on(slab, t.node_j, t.end_j, dj.0, dj.1);
    }
}

/// The four slab instantiations (layout × precision).
enum Slabs {
    SoaF64(SoaSlab<f64>),
    AosF64(AosSlab<f64>),
    SoaF32(SoaSlab<f32>),
    AosF32(AosSlab<f32>),
}

/// Hoist the slab dispatch once, then run `$body` with `$slab` bound to
/// the concrete monomorphized slab.
macro_rules! with_slab {
    ($self:expr, $slab:ident, $body:expr) => {
        match &$self.slabs {
            Slabs::SoaF64($slab) => $body,
            Slabs::AosF64($slab) => $body,
            Slabs::SoaF32($slab) => $body,
            Slabs::AosF32($slab) => $body,
        }
    };
}

/// A thread-shared coordinate store for one layout run.
pub struct CoordStore {
    layout: DataLayout,
    precision: Precision,
    n_nodes: usize,
    slabs: Slabs,
}

impl CoordStore {
    /// Allocate a zeroed double-precision store (the historical default;
    /// see [`CoordStore::with_precision`] for the full axis).
    pub fn new(layout: DataLayout, lean: &LeanGraph) -> Self {
        Self::with_precision(layout, Precision::F64, lean)
    }

    /// Allocate a zeroed store for the graph's nodes, recording node
    /// lengths (the AoS layout packs them with the coordinates, which is
    /// the point of that optimization).
    pub fn with_precision(layout: DataLayout, precision: Precision, lean: &LeanGraph) -> Self {
        let slabs = match (layout, precision) {
            (DataLayout::OriginalSoa, Precision::F64) => Slabs::SoaF64(SoaSlab::new(lean)),
            (DataLayout::CacheFriendlyAos, Precision::F64) => Slabs::AosF64(AosSlab::new(lean)),
            (DataLayout::OriginalSoa, Precision::F32) => Slabs::SoaF32(SoaSlab::new(lean)),
            (DataLayout::CacheFriendlyAos, Precision::F32) => Slabs::AosF32(AosSlab::new(lean)),
        };
        Self {
            layout,
            precision,
            n_nodes: lean.node_count(),
            slabs,
        }
    }

    /// The store's layout.
    #[inline]
    pub fn layout(&self) -> DataLayout {
        self.layout
    }

    /// The store's coordinate precision.
    #[inline]
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.n_nodes
    }

    /// Node length as stored (used by kernels needing `pos + len`).
    #[inline]
    pub fn node_len(&self, node: u32) -> f64 {
        with_slab!(self, s, s.node_len(node).to_f64())
    }

    /// Load one endpoint's coordinates (relaxed).
    #[inline]
    pub fn load(&self, node: u32, end: bool) -> (f64, f64) {
        with_slab!(self, s, {
            let (x, y) = s.load(node, end);
            (x.to_f64(), y.to_f64())
        })
    }

    /// Store one endpoint's coordinates (relaxed).
    #[inline]
    pub fn store(&self, node: u32, end: bool, x: f64, y: f64) {
        with_slab!(self, s, s.store(node, end, from64(s, x), from64(s, y)))
    }

    /// Hogwild-accumulate a delta onto one endpoint.
    #[inline]
    pub fn add(&self, node: u32, end: bool, dx: f64, dy: f64) {
        with_slab!(
            self,
            s,
            hogwild_add_on(s, node, end, from64(s, dx), from64(s, dy))
        )
    }

    /// Apply a block of sampled terms — the engines' hot path. The slab
    /// dispatch happens once here; the per-term loop is monomorphized
    /// straight-line code in the store's native precision.
    #[inline]
    pub fn apply_block(&self, terms: &[Term], eta: f64) {
        with_slab!(self, s, apply_block_on(s, terms, eta))
    }

    /// Snapshot into a plain [`Layout2D`].
    pub fn to_layout(&self) -> Layout2D {
        let mut out = Layout2D::zeros(self.n_nodes);
        for node in 0..self.n_nodes as u32 {
            for end in [false, true] {
                let (x, y) = self.load(node, end);
                out.set(node, end, x, y);
            }
        }
        out
    }

    /// Initialize every endpoint from a plain layout.
    pub fn load_from(&self, layout: &Layout2D) {
        assert_eq!(layout.node_count(), self.n_nodes, "node count mismatch");
        for node in 0..self.n_nodes as u32 {
            for end in [false, true] {
                let (x, y) = layout.get(node, end);
                self.store(node, end, x, y);
            }
        }
    }
}

/// Narrow an `f64` to a slab's native scalar (type inference helper).
#[inline]
fn from64<T: LayoutScalar, S: SlabOps<T>>(_slab: &S, v: f64) -> T {
    T::from_f64(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pangraph::model::fig1_graph;

    fn all_stores() -> Vec<CoordStore> {
        let lean = LeanGraph::from_graph(&fig1_graph());
        let mut out = Vec::new();
        for layout in [DataLayout::OriginalSoa, DataLayout::CacheFriendlyAos] {
            for precision in [Precision::F64, Precision::F32] {
                out.push(CoordStore::with_precision(layout, precision, &lean));
            }
        }
        out
    }

    #[test]
    fn default_constructor_is_f64() {
        let lean = LeanGraph::from_graph(&fig1_graph());
        let store = CoordStore::new(DataLayout::CacheFriendlyAos, &lean);
        assert_eq!(store.precision(), Precision::F64);
    }

    #[test]
    fn node_lengths_are_recorded_in_all_variants() {
        let lean = LeanGraph::from_graph(&fig1_graph());
        for store in all_stores() {
            for (i, &l) in lean.node_len.iter().enumerate() {
                assert_eq!(
                    store.node_len(i as u32),
                    l as f64,
                    "{:?}/{:?}",
                    store.layout(),
                    store.precision()
                );
            }
        }
    }

    #[test]
    fn load_store_round_trip_all_variants() {
        for store in all_stores() {
            store.store(3, false, 1.5, -2.5);
            store.store(3, true, 7.0, 8.0);
            assert_eq!(store.load(3, false), (1.5, -2.5));
            assert_eq!(store.load(3, true), (7.0, 8.0));
            // Neighbours untouched.
            assert_eq!(store.load(2, false), (0.0, 0.0));
            assert_eq!(store.load(4, true), (0.0, 0.0));
            // Length word untouched by coordinate stores (AoS packing).
            assert_eq!(store.node_len(3), 1.0);
        }
    }

    #[test]
    fn add_accumulates() {
        for store in all_stores() {
            store.store(1, true, 10.0, 20.0);
            store.add(1, true, -1.0, 2.0);
            store.add(1, true, 0.5, 0.5);
            let (x, y) = store.load(1, true);
            assert!((x - 9.5).abs() < 1e-6, "{:?}", store.precision());
            assert!((y - 22.5).abs() < 1e-6);
        }
    }

    #[test]
    fn layouts_are_functionally_identical() {
        let lean = LeanGraph::from_graph(&fig1_graph());
        let a = CoordStore::new(DataLayout::OriginalSoa, &lean);
        let b = CoordStore::new(DataLayout::CacheFriendlyAos, &lean);
        for node in 0..lean.node_count() as u32 {
            for end in [false, true] {
                let v = (node as f64 * 2.0 + end as u8 as f64, -(node as f64));
                a.store(node, end, v.0, v.1);
                b.store(node, end, v.0, v.1);
            }
        }
        assert_eq!(a.to_layout(), b.to_layout());
    }

    #[test]
    fn apply_block_matches_scalar_updates_exactly_in_f64() {
        use crate::step::term_deltas;
        let lean = LeanGraph::from_graph(&fig1_graph());
        let terms: Vec<Term> = vec![
            Term {
                s_i: 0,
                s_j: 3,
                node_i: 0,
                node_j: 3,
                end_i: false,
                end_j: true,
                d_ref: 4.0,
            },
            Term {
                s_i: 1,
                s_j: 2,
                node_i: 1,
                node_j: 2,
                end_i: true,
                end_j: false,
                d_ref: 2.0,
            },
            // Touches node 0 again: block application must accumulate.
            Term {
                s_i: 0,
                s_j: 4,
                node_i: 0,
                node_j: 4,
                end_i: false,
                end_j: false,
                d_ref: 1.5,
            },
        ];
        for layout in [DataLayout::OriginalSoa, DataLayout::CacheFriendlyAos] {
            let block = CoordStore::with_precision(layout, Precision::F64, &lean);
            let scalar = CoordStore::with_precision(layout, Precision::F64, &lean);
            for node in 0..lean.node_count() as u32 {
                for end in [false, true] {
                    let v = (node as f64 * 3.0, end as u8 as f64 - 0.5);
                    block.store(node, end, v.0, v.1);
                    scalar.store(node, end, v.0, v.1);
                }
            }
            let eta = 7.5;
            block.apply_block(&terms, eta);
            for t in &terms {
                let vi = scalar.load(t.node_i, t.end_i);
                let vj = scalar.load(t.node_j, t.end_j);
                let (di, dj) = term_deltas(vi, vj, t.d_ref, eta);
                scalar.add(t.node_i, t.end_i, di.0, di.1);
                scalar.add(t.node_j, t.end_j, dj.0, dj.1);
            }
            assert_eq!(block.to_layout(), scalar.to_layout(), "{layout:?}");
        }
    }

    #[test]
    fn f32_apply_block_tracks_f64_within_single_precision() {
        let lean = LeanGraph::from_graph(&fig1_graph());
        let terms = vec![Term {
            s_i: 0,
            s_j: 3,
            node_i: 0,
            node_j: 3,
            end_i: false,
            end_j: true,
            d_ref: 4.0,
        }];
        let wide = CoordStore::with_precision(DataLayout::CacheFriendlyAos, Precision::F64, &lean);
        let narrow =
            CoordStore::with_precision(DataLayout::CacheFriendlyAos, Precision::F32, &lean);
        for s in [&wide, &narrow] {
            s.store(0, false, 0.0, 0.0);
            s.store(3, true, 10.0, 0.0);
        }
        wide.apply_block(&terms, 1e3);
        narrow.apply_block(&terms, 1e3);
        for node in [0u32, 3] {
            for end in [false, true] {
                let (xw, yw) = wide.load(node, end);
                let (xn, yn) = narrow.load(node, end);
                assert!((xw - xn).abs() < 1e-4, "node {node}: {xw} vs {xn}");
                assert!((yw - yn).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn to_layout_and_load_from_round_trip() {
        let lean = LeanGraph::from_graph(&fig1_graph());
        for layout_kind in [DataLayout::OriginalSoa, DataLayout::CacheFriendlyAos] {
            let store = CoordStore::with_precision(layout_kind, Precision::F64, &lean);
            let mut l = Layout2D::zeros(lean.node_count());
            for node in 0..lean.node_count() as u32 {
                l.set(node, false, node as f64, 1.0);
                l.set(node, true, node as f64 + 0.5, -1.0);
            }
            store.load_from(&l);
            assert_eq!(store.to_layout(), l);
        }
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn load_from_rejects_wrong_size() {
        let lean = LeanGraph::from_graph(&fig1_graph());
        let store = CoordStore::new(DataLayout::CacheFriendlyAos, &lean);
        store.load_from(&Layout2D::zeros(3));
    }

    #[test]
    fn labels_are_distinct() {
        assert_ne!(
            DataLayout::OriginalSoa.label(),
            DataLayout::CacheFriendlyAos.label()
        );
        assert_ne!(Precision::F64.label(), Precision::F32.label());
        assert_eq!(Precision::parse_name("f32"), Some(Precision::F32));
        assert_eq!(Precision::parse_name("f64"), Some(Precision::F64));
        assert_eq!(Precision::parse_name("f128"), None);
        assert_eq!(Precision::default(), Precision::F64);
    }
}
