//! Relaxed atomic `f64` cells — the Hogwild! substrate.
//!
//! `odgi-layout` stores layout coordinates in atomic doubles and lets all
//! threads update them without locks or compare-and-swap loops (Recht et
//! al.'s Hogwild! scheme, paper Sec. III-A): races occasionally lose an
//! update, but pangenome graphs are sparse enough that quality is
//! unaffected. On x86-64 a relaxed atomic load/store compiles to a plain
//! `mov`, so this faithfully reproduces both the semantics *and* the cost
//! model of the original.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// An `f64` stored in an `AtomicU64` with relaxed ordering.
#[derive(Debug)]
#[repr(transparent)]
pub struct AtomicF64(AtomicU64);

impl AtomicF64 {
    /// New cell holding `v`.
    #[inline]
    pub fn new(v: f64) -> Self {
        Self(AtomicU64::new(v.to_bits()))
    }

    /// Relaxed load.
    #[inline]
    pub fn load(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    /// Relaxed store.
    #[inline]
    pub fn store(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Hogwild add: load, add, store — deliberately *not* a CAS loop, so
    /// concurrent updates may race exactly as in odgi-layout.
    #[inline]
    pub fn hogwild_add(&self, delta: f64) {
        self.store(self.load() + delta);
    }
}

impl Default for AtomicF64 {
    fn default() -> Self {
        Self::new(0.0)
    }
}

/// An `f32` stored in an `AtomicU32` with relaxed ordering — the paper's
/// GPU coordinate precision (fp32, Sec. V-B) on the CPU side. Halves the
/// coordinate slab's memory traffic relative to [`AtomicF64`].
#[derive(Debug)]
#[repr(transparent)]
pub struct AtomicF32(AtomicU32);

impl AtomicF32 {
    /// New cell holding `v`.
    #[inline]
    pub fn new(v: f32) -> Self {
        Self(AtomicU32::new(v.to_bits()))
    }

    /// Relaxed load.
    #[inline]
    pub fn load(&self) -> f32 {
        f32::from_bits(self.0.load(Ordering::Relaxed))
    }

    /// Relaxed store.
    #[inline]
    pub fn store(&self, v: f32) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Hogwild add: load, add, store — racy by design, like
    /// [`AtomicF64::hogwild_add`].
    #[inline]
    pub fn hogwild_add(&self, delta: f32) {
        self.store(self.load() + delta);
    }
}

impl Default for AtomicF32 {
    fn default() -> Self {
        Self::new(0.0)
    }
}

/// Allocate a zeroed atomic coordinate slab.
pub fn zeroed_slab(n: usize) -> Vec<AtomicF64> {
    std::iter::repeat_with(AtomicF64::default).take(n).collect()
}

/// Allocate a zeroed single-precision atomic coordinate slab.
pub fn zeroed_slab32(n: usize) -> Vec<AtomicF32> {
    std::iter::repeat_with(AtomicF32::default).take(n).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_store_round_trip() {
        let a = AtomicF64::new(1.5);
        assert_eq!(a.load(), 1.5);
        a.store(-2.25);
        assert_eq!(a.load(), -2.25);
        a.store(f64::MAX);
        assert_eq!(a.load(), f64::MAX);
    }

    #[test]
    fn hogwild_add_single_thread_is_exact() {
        let a = AtomicF64::new(10.0);
        a.hogwild_add(2.5);
        a.hogwild_add(-0.5);
        assert_eq!(a.load(), 12.0);
    }

    #[test]
    fn special_values_round_trip_bits() {
        for v in [0.0, -0.0, f64::INFINITY, f64::NEG_INFINITY] {
            let a = AtomicF64::new(v);
            assert_eq!(a.load().to_bits(), v.to_bits());
        }
        let a = AtomicF64::new(f64::NAN);
        assert!(a.load().is_nan());
    }

    #[test]
    fn zeroed_slab_is_zero() {
        let slab = zeroed_slab(100);
        assert_eq!(slab.len(), 100);
        assert!(slab.iter().all(|a| a.load() == 0.0));
    }

    #[test]
    fn f32_cells_round_trip_and_accumulate() {
        let a = AtomicF32::new(1.5);
        assert_eq!(a.load(), 1.5);
        a.store(-2.25);
        assert_eq!(a.load(), -2.25);
        a.hogwild_add(0.75);
        assert_eq!(a.load(), -1.5);
        for v in [0.0f32, -0.0, f32::INFINITY, f32::NEG_INFINITY] {
            let c = AtomicF32::new(v);
            assert_eq!(c.load().to_bits(), v.to_bits());
        }
        let slab = zeroed_slab32(10);
        assert!(slab.iter().all(|c| c.load() == 0.0));
    }

    #[test]
    fn concurrent_hogwild_adds_mostly_land() {
        // Hogwild loses some updates under contention by design; with many
        // threads hammering ONE cell the loss is at its worst, but the
        // total must stay positive and bounded by the ideal sum.
        use std::sync::Arc;
        let cell = Arc::new(AtomicF64::new(0.0));
        let threads = 8;
        let per_thread = 10_000;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let c = Arc::clone(&cell);
                std::thread::spawn(move || {
                    for _ in 0..per_thread {
                        c.hogwild_add(1.0);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let v = cell.load();
        let ideal = (threads * per_thread) as f64;
        assert!(v > 0.0 && v <= ideal, "v = {v}, ideal = {ideal}");
        // At least one thread's worth of updates must survive.
        assert!(v >= per_thread as f64, "v = {v}");
    }
}
