//! Scheduler-facing integration tests: priority bands beat FIFO order,
//! per-client fair share holds under a dogpile, queue TTLs expire stale
//! work, and the `/v1` job API's terminal-state reporting is audited
//! end to end (a cancelled-while-queued job is `cancelled`, never
//! `failed`).

use rapid_pangenome_layout::prelude::*;
use rapid_pangenome_layout::service::{EngineRegistry, HttpServer, LayoutService, ServiceConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn small_gfa(seed: u64) -> String {
    write_gfa(&generate(&PangenomeSpec::basic("sched", 40, 3, seed)))
}

fn service(workers: usize) -> LayoutService {
    LayoutService::start(
        EngineRegistry::with_default_engines(),
        ServiceConfig {
            workers,
            cache_entries: 256,
            ..ServiceConfig::default()
        },
    )
}

/// A spec for `gfa` with per-job distinct `seed` so the layout cache
/// never collapses two jobs into one.
fn spec_for(engine: &str, gfa: &str, seed: u64, iters: u32) -> JobSpec {
    let mut spec = JobSpec::new(engine, gfa);
    spec.config.iter_max = iters;
    spec.config.threads = 1;
    spec.config.seed = seed;
    spec.batch_size = 256;
    spec
}

/// Acceptance: a bulk client floods 50 jobs; an interactive client then
/// submits one. The interactive job completes while at least 45 of the
/// bulk jobs are still waiting — the priority band preempts the flood.
#[test]
fn interactive_job_overtakes_a_bulk_flood_of_fifty() {
    let svc = service(1);
    let gfa = small_gfa(1);
    let bulk_ids: Vec<u64> = (0..50)
        .map(|i| {
            let mut spec = spec_for("cpu", &gfa, 1000 + i, 4).priority(Priority::Bulk);
            spec.client = Some("bulk-bot".into());
            svc.submit_spec(spec).unwrap().id
        })
        .collect();
    let mut interactive = spec_for("cpu", &gfa, 9999, 4).priority(Priority::Interactive);
    interactive.client = Some("human".into());
    let ticket = svc.submit_spec(interactive).unwrap();
    assert!(!ticket.cached);

    let status = svc
        .wait(ticket.id, Duration::from_secs(300))
        .expect("interactive job finishes");
    assert_eq!(status.state, JobState::Done);
    assert_eq!(status.client, "human");

    let still_waiting = bulk_ids
        .iter()
        .filter(|&&id| !svc.status(id).unwrap().state.is_terminal())
        .count();
    assert!(
        still_waiting >= 45,
        "interactive completed before only {} of 50 bulk jobs",
        50 - still_waiting
    );
    // The backlog still drains to completion afterwards.
    for id in bulk_ids {
        assert_eq!(
            svc.wait(id, Duration::from_secs(300)).unwrap().state,
            JobState::Done
        );
    }
    let stats = svc.stats();
    assert_eq!(stats.done, 51);
    assert_eq!(stats.failed + stats.cancelled, 0);
}

/// Within one band, three clients submitting in adversarial order
/// (all of A, then all of B, then all of C) complete interleaved: in
/// every prefix of the completion order no client leads another by more
/// than the deficit round-robin allows (tolerance 2 for poll batching).
#[test]
fn clients_share_one_band_fairly_under_a_dogpile() {
    let svc = service(1);
    let gfa = small_gfa(2);
    // Hold the worker so all 18 jobs are queued before any is popped.
    let blocker = svc.submit_spec(spec_for("cpu", &gfa, 7, 1200)).unwrap();
    let clients = ["alice", "bob", "carol"];
    let mut jobs: Vec<(usize, u64)> = Vec::new(); // (client idx, job id)
    for (ci, client) in clients.iter().enumerate() {
        for j in 0..6 {
            let mut spec = spec_for("cpu", &gfa, 100 * (ci as u64 + 1) + j, 60);
            spec.client = Some(client.to_string());
            jobs.push((ci, svc.submit_spec(spec).unwrap().id));
        }
    }
    // alice, bob, carol queued (+ the anonymous blocker if not yet popped)
    assert!(svc.stats().active_clients >= 3);
    svc.wait(blocker.id, Duration::from_secs(300)).unwrap();

    // Record completion order by polling; jobs are slow enough (60
    // iterations) that 1 ms polling rarely batches more than one
    // completion, and the prefix assertion tolerates batching anyway.
    let mut order: Vec<usize> = Vec::new();
    let mut seen = vec![false; jobs.len()];
    let deadline = Instant::now() + Duration::from_secs(300);
    while order.len() < jobs.len() {
        for (slot, &(ci, id)) in jobs.iter().enumerate() {
            if !seen[slot] && svc.status(id).unwrap().state.is_terminal() {
                seen[slot] = true;
                order.push(ci);
            }
        }
        assert!(Instant::now() < deadline, "dogpile never drained");
        std::thread::sleep(Duration::from_millis(1));
    }
    let mut counts = [0i64; 3];
    for (pos, &ci) in order.iter().enumerate() {
        counts[ci] += 1;
        let max = counts.iter().max().unwrap();
        let min = counts.iter().min().unwrap();
        assert!(
            max - min <= 2,
            "fair share violated at completion {pos}: counts {counts:?} (order {order:?})"
        );
    }
    for (_, id) in jobs {
        assert_eq!(svc.status(id).unwrap().state, JobState::Done);
    }
}

/// With more workers than any single client's fair share, no client
/// holds more in-flight (running) jobs than its share plus one.
#[test]
fn no_client_exceeds_its_fair_share_of_workers_by_more_than_one() {
    let workers = 3;
    let clients = ["a", "b", "c"];
    let fair_share = workers / clients.len(); // 1
    let svc = service(workers);
    let gfa = small_gfa(3);
    let mut jobs: Vec<(usize, u64)> = Vec::new();
    for (ci, client) in clients.iter().enumerate() {
        for j in 0..6 {
            let mut spec = spec_for("cpu", &gfa, 500 * (ci as u64 + 1) + j, 300);
            spec.client = Some(client.to_string());
            jobs.push((ci, svc.submit_spec(spec).unwrap().id));
        }
    }
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        let mut running = [0usize; 3];
        let mut queued = [0usize; 3];
        let mut all_terminal = true;
        for &(ci, id) in &jobs {
            match svc.status(id).unwrap().state {
                JobState::Running => {
                    running[ci] += 1;
                    all_terminal = false;
                }
                JobState::Queued => {
                    queued[ci] += 1;
                    all_terminal = false;
                }
                s if !s.is_terminal() => all_terminal = false,
                _ => {}
            }
        }
        // The fair-share bound is a *contention* property: once some
        // client's backlog has drained, the surplus workers are
        // supposed to go to whoever still has work, so only check the
        // bound while every client still has jobs waiting.
        if queued.iter().all(|&q| q > 0) {
            for (ci, &n) in running.iter().enumerate() {
                assert!(
                    n <= fair_share + 1,
                    "client {} holds {n} workers (fair share {fair_share} + 1)",
                    clients[ci]
                );
            }
        }
        if all_terminal {
            break;
        }
        assert!(Instant::now() < deadline, "jobs never drained");
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// One blocking HTTP/1.1 exchange; returns (status, head, body).
fn http(addr: SocketAddr, method: &str, path: &str, body: &[u8]) -> (u16, String, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body).unwrap();
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read response");
    let header_end = response
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("complete header");
    let head = String::from_utf8_lossy(&response[..header_end]).into_owned();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    (status, head, response[header_end + 4..].to_vec())
}

fn http_with_header(
    addr: SocketAddr,
    method: &str,
    path: &str,
    extra_header: &str,
) -> (u16, String, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: 0\r\n{extra_header}\r\nConnection: close\r\n\r\n",
    );
    stream.write_all(head.as_bytes()).unwrap();
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read response");
    let header_end = response
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("complete header");
    let head = String::from_utf8_lossy(&response[..header_end]).into_owned();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    (status, head, response[header_end + 4..].to_vec())
}

fn text(body: &[u8]) -> String {
    String::from_utf8_lossy(body).into_owned()
}

fn json_u64(json: &str, field: &str) -> Option<u64> {
    let needle = format!("\"{field}\":");
    let at = json.find(&needle)? + needle.len();
    let digits: String = json[at..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

fn spawn_http(
    workers: usize,
) -> (
    Arc<LayoutService>,
    rapid_pangenome_layout::service::ServerHandle,
) {
    let svc = Arc::new(service(workers));
    let handle = HttpServer::bind("127.0.0.1:0", Arc::clone(&svc))
        .expect("bind")
        .spawn();
    (svc, handle)
}

/// Terminal-state JSON audit over the wire: cancelled-while-queued is
/// `cancelled` with no error field; TTL expiry is `failed` with an
/// `expired in queue` error; done carries progress 1.000 and no error.
/// Checked on both the legacy and the `/v1` alias of `GET /jobs/<id>`.
#[test]
fn terminal_states_report_truthfully_over_http() {
    let (_svc, handle) = spawn_http(1);
    let addr = handle.addr();
    let gfa = small_gfa(11);

    // Occupy the worker with a slow job.
    let (status, _, body) = http(
        addr,
        "POST",
        "/v1/jobs?engine=cpu&iters=100000&threads=1&client=blocker",
        gfa.as_bytes(),
    );
    assert_eq!(status, 202, "{}", text(&body));
    let blocker = json_u64(&text(&body), "job").unwrap();

    // Job A queues, then is cancelled while still queued.
    let (status, _, body) = http(
        addr,
        "POST",
        "/v1/jobs?engine=cpu&iters=4&threads=1&seed=2",
        gfa.as_bytes(),
    );
    assert_eq!(status, 202);
    let cancelled_job = json_u64(&text(&body), "job").unwrap();
    // Job B queues with a tiny TTL: it must expire, not run.
    let (status, _, body) = http(
        addr,
        "POST",
        "/v1/jobs?engine=cpu&iters=4&threads=1&seed=3&ttl_ms=40",
        gfa.as_bytes(),
    );
    assert_eq!(status, 202);
    let expired_job = json_u64(&text(&body), "job").unwrap();

    let (status, _, _) = http(
        addr,
        "POST",
        &format!("/v1/jobs/{cancelled_job}/cancel"),
        b"",
    );
    assert_eq!(status, 200);
    for path in [
        format!("/jobs/{cancelled_job}"),
        format!("/v1/jobs/{cancelled_job}"),
    ] {
        let (status, _, body) = http(addr, "GET", &path, b"");
        assert_eq!(status, 200);
        let json = text(&body);
        assert!(
            json.contains("\"state\":\"cancelled\""),
            "cancelled-while-queued must report cancelled ({path}): {json}"
        );
        assert!(
            !json.contains("\"error\""),
            "a cancel is not an error ({path}): {json}"
        );
        assert!(json.contains("\"progress\":0.000"), "{json}");
    }

    // Let the TTL lapse, then free the worker; the expired job fails
    // without running.
    std::thread::sleep(Duration::from_millis(80));
    let (status, _, _) = http(addr, "POST", &format!("/v1/jobs/{blocker}/cancel"), b"");
    assert_eq!(status, 200);
    let deadline = Instant::now() + Duration::from_secs(60);
    let expired_json = loop {
        let (_, _, body) = http(addr, "GET", &format!("/v1/jobs/{expired_job}"), b"");
        let json = text(&body);
        if json.contains("\"state\":\"failed\"") {
            break json;
        }
        assert!(
            !json.contains("\"state\":\"done\""),
            "expired job must not run: {json}"
        );
        assert!(Instant::now() < deadline, "expiry never landed: {json}");
        std::thread::sleep(Duration::from_millis(5));
    };
    assert!(
        expired_json.contains("expired in queue"),
        "expiry names its cause: {expired_json}"
    );

    // A successful job: done, progress 1.000, no error, priority echoed.
    let (status, _, body) = http(
        addr,
        "POST",
        "/v1/jobs?engine=cpu&iters=4&threads=1&seed=9&priority=interactive",
        gfa.as_bytes(),
    );
    assert_eq!(status, 202);
    let json = text(&body);
    assert!(json.contains("\"priority\":\"interactive\""), "{json}");
    let done_job = json_u64(&json, "job").unwrap();
    let deadline = Instant::now() + Duration::from_secs(120);
    let done_json = loop {
        let (_, _, body) = http(addr, "GET", &format!("/v1/jobs/{done_job}"), b"");
        let json = text(&body);
        if json.contains("\"state\":\"done\"") {
            break json;
        }
        assert!(Instant::now() < deadline, "job never finished: {json}");
        std::thread::sleep(Duration::from_millis(5));
    };
    assert!(done_json.contains("\"progress\":1.000"), "{done_json}");
    assert!(!done_json.contains("\"error\""), "{done_json}");
    assert!(
        done_json.contains("\"priority\":\"interactive\""),
        "{done_json}"
    );

    // Stats surface the scheduling counters.
    let (_, _, body) = http(addr, "GET", "/v1/stats", b"");
    let stats = text(&body);
    assert_eq!(json_u64(&stats, "expired"), Some(1), "{stats}");
    assert_eq!(json_u64(&stats, "cancelled"), Some(2), "{stats}");

    handle.stop();
}

/// `/v1` is strict about unknown parameters; the legacy aliases keep
/// ignoring them. Both surfaces serve the same jobs.
#[test]
fn v1_is_strict_and_legacy_aliases_stay_lenient() {
    let (_svc, handle) = spawn_http(1);
    let addr = handle.addr();
    let gfa = small_gfa(21);

    // Typo under /v1: rejected with the parameter named.
    let (status, _, body) = http(
        addr,
        "POST",
        "/v1/jobs?engine=cpu&iters=2&threads=1&prioritiy=bulk",
        gfa.as_bytes(),
    );
    assert_eq!(status, 400, "{}", text(&body));
    assert!(text(&body).contains("prioritiy"), "{}", text(&body));

    // The same typo on the legacy route is silently ignored.
    let (status, _, body) = http(
        addr,
        "POST",
        "/layout?engine=cpu&iters=2&threads=1&prioritiy=bulk",
        gfa.as_bytes(),
    );
    assert_eq!(status, 202, "{}", text(&body));

    // Bad priority value is a typed 400 on both surfaces.
    let (status, _, body) = http(addr, "POST", "/v1/jobs?priority=urgent", gfa.as_bytes());
    assert_eq!(status, 400);
    assert!(text(&body).contains("priority"), "{}", text(&body));

    // The /v1 read-side aliases answer like their legacy twins.
    for path in ["/v1/healthz", "/v1/stats", "/v1/engines", "/v1/metrics"] {
        let (status, _, _) = http(addr, "GET", path, b"");
        assert_eq!(status, 200, "{path}");
    }
    // /v1 prefix alone is not a route.
    let (status, _, _) = http(addr, "GET", "/v1", b"");
    assert_eq!(status, 404);

    // Strictness covers every /v1 route, not just submission: typo'd
    // params on events/result/read routes are 400s there but silently
    // ignored on the legacy aliases.
    let (status, _, body) = http(addr, "GET", "/v1/jobs/1/events?frm=5", b"");
    assert_eq!(status, 400, "{}", text(&body));
    assert!(text(&body).contains("frm"), "{}", text(&body));
    let (status, _, body) = http(addr, "GET", "/v1/result/1?fromat=lay", b"");
    assert_eq!(status, 400, "{}", text(&body));
    let (status, _, _) = http(addr, "GET", "/v1/stats?pretty=1", b"");
    assert_eq!(status, 400);
    let (status, _, _) = http(addr, "GET", "/stats?pretty=1", b"");
    assert_eq!(status, 200, "legacy alias stays lenient");

    handle.stop();
}

/// `GET /graphs` (and `/v1/graphs`) emit an `ETag` and honor
/// `If-None-Match` with `304 Not Modified`; mutations change the tag.
#[test]
fn graph_listing_revalidates_with_etags() {
    let (_svc, handle) = spawn_http(1);
    let addr = handle.addr();

    let (status, head, body) = http(addr, "GET", "/v1/graphs", b"");
    assert_eq!(status, 200);
    assert!(text(&body).contains("\"count\":0"));
    let etag = head
        .lines()
        .find_map(|l| l.strip_prefix("ETag: "))
        .expect("listing carries an ETag")
        .trim()
        .to_string();

    // Revalidation with the current tag: 304, empty body, tag echoed.
    let (status, head, body) =
        http_with_header(addr, "GET", "/v1/graphs", &format!("If-None-Match: {etag}"));
    assert_eq!(status, 304, "{}", text(&body));
    assert!(body.is_empty(), "304 carries no body");
    assert!(head.contains(&etag));

    // A stale (different) tag still gets the full listing.
    let (status, _, body) =
        http_with_header(addr, "GET", "/v1/graphs", "If-None-Match: \"feedfeed\"");
    assert_eq!(status, 200);
    assert!(!body.is_empty());

    // Uploading a graph changes the listing and therefore the tag.
    let gfa = small_gfa(31);
    let (status, _, _) = http(addr, "POST", "/v1/graphs", gfa.as_bytes());
    assert_eq!(status, 201);
    let (status, head2, _) =
        http_with_header(addr, "GET", "/graphs", &format!("If-None-Match: {etag}"));
    assert_eq!(status, 200, "stale tag after mutation re-serves");
    let etag2 = head2
        .lines()
        .find_map(|l| l.strip_prefix("ETag: "))
        .unwrap()
        .trim()
        .to_string();
    assert_ne!(etag, etag2, "mutation rotated the ETag");
    // The legacy alias shares tags with /v1 (same resource).
    let (status, _, _) = http_with_header(
        addr,
        "GET",
        "/v1/graphs",
        &format!("If-None-Match: {etag2}"),
    );
    assert_eq!(status, 304);

    handle.stop();
}

/// The fair-share client key defaults to the peer identity, and
/// `?client=` overrides it — visible in the status JSON.
#[test]
fn client_identity_defaults_to_peer_and_is_overridable() {
    let (_svc, handle) = spawn_http(1);
    let addr = handle.addr();
    let gfa = small_gfa(41);

    let (status, _, body) = http(
        addr,
        "POST",
        "/v1/jobs?engine=cpu&iters=2&threads=1",
        gfa.as_bytes(),
    );
    assert_eq!(status, 202);
    let anon = json_u64(&text(&body), "job").unwrap();
    let (_, _, body) = http(addr, "GET", &format!("/v1/jobs/{anon}"), b"");
    assert!(
        text(&body).contains("\"client\":\"127.0.0.1\""),
        "peer IP is the default fair-share key: {}",
        text(&body)
    );

    let (status, _, body) = http(
        addr,
        "POST",
        "/v1/jobs?engine=cpu&iters=2&threads=1&seed=5&client=alice",
        gfa.as_bytes(),
    );
    assert_eq!(status, 202);
    let named = json_u64(&text(&body), "job").unwrap();
    let (_, _, body) = http(addr, "GET", &format!("/v1/jobs/{named}"), b"");
    assert!(
        text(&body).contains("\"client\":\"alice\""),
        "{}",
        text(&body)
    );

    handle.stop();
}
