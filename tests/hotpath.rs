//! Hot-path acceptance tests for the zero-CAS / f32 / term-block SGD
//! kernel: bitwise determinism of single-threaded runs across the
//! batched kernel, and quality parity of the fast paths (f32 storage,
//! multi-threaded Hogwild) against the faithful f64 single-thread
//! baseline on a bundled workload preset.

use layout_core::{CpuEngine, LayoutConfig, Precision, Toggle};
use pangraph::layout2d::Layout2D;
use pangraph::lean::LeanGraph;
use pgmetrics::{sampled_path_stress, SamplingConfig};
use workloads::generate;

fn preset_graph() -> LeanGraph {
    // The MHC preset at small scale: a real workload shape (variant
    // sites, SVs, loops, ~7 haplotype paths) that still converges in
    // seconds under the debug profile.
    LeanGraph::from_graph(&generate(&workloads::mhc_like(0.005)))
}

fn parity_graph() -> LeanGraph {
    // Table I's HLA-DRB1 preset at full scale: dense variant sites over
    // 12 haplotype paths. Its full 30-iteration schedule converges
    // tightly (run-to-run sampled stress varies ~2%), which is what a
    // 5% parity bar needs — the sparser MHC preset's stress estimator
    // is heavy-tailed and seed-dominated at test scale.
    LeanGraph::from_graph(&generate(&workloads::hla_drb1()))
}

fn cfg(threads: usize, precision: Precision) -> LayoutConfig {
    LayoutConfig {
        threads,
        precision,
        iter_max: 20,
        ..LayoutConfig::default()
    }
}

fn stress(layout: &Layout2D, lean: &LeanGraph) -> f64 {
    sampled_path_stress(
        layout,
        lean,
        SamplingConfig {
            samples_per_node: 50,
            seed: 0xACCE,
        },
    )
    .mean
}

#[test]
fn single_thread_runs_are_bitwise_deterministic_across_the_batched_kernel() {
    let lean = preset_graph();
    for precision in [Precision::F64, Precision::F32] {
        let a = CpuEngine::new(cfg(1, precision)).run(&lean).0;
        let b = CpuEngine::new(cfg(1, precision)).run(&lean).0;
        assert_eq!(
            a, b,
            "{precision:?}: single-thread runs must be bit-identical"
        );
        assert!(a.all_finite());
    }
}

#[test]
fn term_block_size_is_invisible_to_single_thread_results() {
    // Sampling never reads coordinates, so the block boundary cannot
    // change which terms are drawn or the order they are applied in.
    let lean = preset_graph();
    let mut small = cfg(1, Precision::F64);
    small.term_block = 3;
    small.iter_max = 5;
    let mut big = small.clone();
    big.term_block = 4096;
    let a = CpuEngine::new(small).run(&lean).0;
    let b = CpuEngine::new(big).run(&lean).0;
    assert_eq!(a, b, "term block is purely a performance knob");
}

#[test]
fn write_shard_toggle_is_invisible_to_single_thread_results() {
    // At one thread every node is owned by the single shard, so the
    // sharded write path must reduce to the direct path bit-for-bit —
    // same sampling, same application order, no spills.
    let lean = preset_graph();
    for precision in [Precision::F64, Precision::F32] {
        let mut off = cfg(1, precision);
        off.write_shard = Toggle::Off;
        off.iter_max = 5;
        let mut on = off.clone();
        on.write_shard = Toggle::On;
        let a = CpuEngine::new(off).run(&lean).0;
        let b = CpuEngine::new(on).run(&lean).0;
        assert_eq!(
            a, b,
            "{precision:?}: write_shard must be a no-op at one thread"
        );
    }
}

#[test]
fn fast_paths_reach_stress_parity_with_the_f64_single_thread_baseline() {
    // The acceptance bar of the hot-path overhaul: racing threads and
    // fp32 coordinates are performance axes, not quality axes. Each
    // fast configuration must land within 5% of the faithful baseline's
    // sampled path stress on a workload preset (HLA-DRB1, full
    // schedule).
    let lean = parity_graph();
    let full = |threads, precision| LayoutConfig {
        threads,
        precision,
        ..LayoutConfig::default()
    };
    let baseline = {
        let layout = CpuEngine::new(full(1, Precision::F64)).run(&lean).0;
        stress(&layout, &lean)
    };
    assert!(baseline.is_finite() && baseline > 0.0);
    let simd_1t_f64 = LayoutConfig {
        simd: Toggle::On,
        ..full(1, Precision::F64)
    };
    let sharded_4t = LayoutConfig {
        write_shard: Toggle::On,
        ..full(4, Precision::F64)
    };
    let pure_hogwild_4t = LayoutConfig {
        write_shard: Toggle::Off,
        ..full(4, Precision::F64)
    };
    for (label, config) in [
        ("f32 single-thread", full(1, Precision::F32)),
        (
            "f64 four-thread (auto: simd + sharded)",
            full(4, Precision::F64),
        ),
        (
            "f32 four-thread (auto: simd + sharded)",
            full(4, Precision::F32),
        ),
        ("f64 single-thread simd kernel", simd_1t_f64),
        ("f64 four-thread sharded writes", sharded_4t),
        ("f64 four-thread pure hogwild", pure_hogwild_4t),
    ] {
        let layout = CpuEngine::new(config).run(&lean).0;
        let s = stress(&layout, &lean);
        assert!(
            s <= baseline * 1.05,
            "{label}: stress {s:.6} exceeds 105% of baseline {baseline:.6}"
        );
    }
}
