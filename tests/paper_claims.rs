//! Mechanized versions of the paper's headline claims, at test scale.
//!
//! Each test is one sentence from the paper turned into an assertion the
//! CI can evaluate in seconds. These complement the `repro` harness's
//! full-table shape checks.

use rapid_pangenome_layout::core::init::init_random;
use rapid_pangenome_layout::gpu::cpusim::{characterize_cpu, cpu_model, modeled_cpu_time_s};
use rapid_pangenome_layout::metrics::{path_stress, pearson};
use rapid_pangenome_layout::prelude::*;
use rapid_pangenome_layout::workloads::hprc_catalog;

const SCALE: f64 = 2e-4;

fn chr1_lean() -> LeanGraph {
    let spec = hprc_catalog()[0].spec(SCALE);
    LeanGraph::from_graph(&generate(&spec))
}

fn fast_cfg() -> LayoutConfig {
    LayoutConfig {
        iter_max: 12,
        seed: 99,
        ..LayoutConfig::default()
    }
}

/// "Our GPU-based solution achieves a 57.3x speedup over the
/// state-of-the-art multithreaded CPU baseline" — modeled-to-modeled, the
/// simulated A100 must beat the modeled odgi baseline by an order of
/// magnitude.
#[test]
fn claim_gpu_beats_cpu_by_an_order_of_magnitude() {
    let lean = chr1_lean();
    let lcfg = fast_cfg();
    let trace = characterize_cpu(&lean, &lcfg, DataLayout::OriginalSoa, SCALE, 60_000);
    let cpu_s = modeled_cpu_time_s(&lean, &lcfg, &trace, cpu_model::THREADS);
    let (_, report) =
        GpuEngine::new(GpuSpec::a100(), lcfg, KernelConfig::optimized(SCALE)).run(&lean);
    let speedup = cpu_s / report.modeled_s();
    assert!(
        speedup > 10.0,
        "modeled A100 speedup {speedup:.1}x below an order of magnitude"
    );
}

/// "…without layout quality loss" — Table VIII's SPS ratio stays near 1.
#[test]
fn claim_no_quality_loss_on_gpu() {
    let lean = chr1_lean();
    let lcfg = LayoutConfig {
        iter_max: 20,
        seed: 3,
        ..LayoutConfig::default()
    };
    let (cpu_layout, _) = CpuEngine::new(lcfg.clone()).run(&lean);
    let (gpu_layout, _) =
        GpuEngine::new(GpuSpec::a6000(), lcfg, KernelConfig::optimized(SCALE)).run(&lean);
    let cfg = SamplingConfig::default();
    let qc = sampled_path_stress(&cpu_layout, &lean, cfg).mean;
    let qg = sampled_path_stress(&gpu_layout, &lean, cfg).mean;
    assert!(qc < 0.05, "CPU layout must converge (sps {qc})");
    assert!(qg < 0.05, "GPU layout must converge (sps {qg})");
}

/// "This workload … is memory-bound" (Fig. 5 / Table II).
#[test]
fn claim_workload_is_memory_bound() {
    let lean = chr1_lean();
    let r = characterize_cpu(&lean, &fast_cfg(), DataLayout::OriginalSoa, SCALE, 60_000);
    assert!(
        r.memory_bound_pct() > 40.0,
        "memory-bound share {:.1}% too low",
        r.memory_bound_pct()
    );
    assert!(
        r.llc_miss_rate() > 0.5,
        "LLC miss rate {:.2}",
        r.llc_miss_rate()
    );
}

/// "Randomness is critical to the layout quality" (Fig. 6).
#[test]
fn claim_randomness_is_critical() {
    let spec = workloads::PangenomeSpec::basic("rand", 400, 6, 5);
    let lean = LeanGraph::from_graph(&generate(&spec));
    let total: f64 = lean.node_len.iter().map(|&l| l as f64).sum();
    let random = init_random(&lean, total, 1);
    let mk = |sel| LayoutConfig {
        pair_selection: sel,
        iter_max: 15,
        ..LayoutConfig::default()
    };
    let (good, _) = CpuEngine::new(mk(PairSelection::PgSgd)).run_from(&lean, &random);
    let (bad, _) = CpuEngine::new(mk(PairSelection::FixedHop(10))).run_from(&lean, &random);
    let qg = path_stress(&good, &lean).stress;
    let qb = path_stress(&bad, &lean).stress;
    assert!(
        qb > 3.0 * qg,
        "de-randomized selection must fail: {qb} vs {qg}"
    );
}

/// "Each of the three optimizations improves the kernel" (Fig. 16's
/// incremental chain, directionally).
#[test]
fn claim_each_optimization_helps() {
    let lean = chr1_lean();
    let lcfg = fast_cfg();
    let run = |kcfg: KernelConfig| {
        GpuEngine::new(GpuSpec::a6000(), lcfg.clone(), kcfg)
            .run(&lean)
            .1
    };
    let base = run(KernelConfig::base(SCALE));
    let cdl = run(KernelConfig::base(SCALE).with_cdl());
    let crs = run(KernelConfig::base(SCALE).with_crs());
    let wm = run(KernelConfig::base(SCALE).with_wm());
    let opt = run(KernelConfig::optimized(SCALE));
    assert!(cdl.modeled_s() < base.modeled_s(), "CDL");
    assert!(crs.modeled_s() < base.modeled_s(), "CRS");
    assert!(
        wm.warp.warp_instructions < base.warp.warp_instructions,
        "WM instructions"
    );
    assert!(
        opt.modeled_s() < cdl.modeled_s().min(crs.modeled_s()),
        "combined optimizations beat each alone"
    );
}

/// "Sampled path stress closely approximates path stress" (Fig. 13).
#[test]
fn claim_sampled_stress_tracks_exact() {
    let specs = workloads::small_graph_family(10, 21);
    let mut exact = Vec::new();
    let mut sampled = Vec::new();
    for (i, spec) in specs.iter().enumerate() {
        let lean = LeanGraph::from_graph(&generate(spec));
        let total: f64 = lean.node_len.iter().map(|&l| l as f64).sum();
        let random = init_random(&lean, total, i as u64);
        for iters in [0u32, 3, 12] {
            let layout = if iters == 0 {
                random.clone()
            } else {
                CpuEngine::new(LayoutConfig {
                    iter_max: iters,
                    ..LayoutConfig::default()
                })
                .run_from(&lean, &random)
                .0
            };
            let e = path_stress(&layout, &lean).stress;
            let s = sampled_path_stress(&layout, &lean, SamplingConfig::default()).mean;
            if e > 0.0 && s > 0.0 {
                exact.push(e.log10());
                sampled.push(s.log10());
            }
        }
    }
    let r = pearson(&exact, &sampled);
    assert!(r > 0.95, "log-log correlation {r:.3} (paper: 0.995)");
}

/// "Run time is linear in total path length" (Fig. 15), which is what
/// justifies scaled reproduction.
#[test]
fn claim_cost_linear_in_path_length() {
    let lcfg = LayoutConfig {
        iter_max: 5,
        ..LayoutConfig::default()
    };
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for mult in [1.0, 2.0, 4.0] {
        let spec = hprc_catalog()[3].spec(SCALE * mult); // chr4
        let lean = LeanGraph::from_graph(&generate(&spec));
        let (_, r) = GpuEngine::new(
            GpuSpec::a6000(),
            lcfg.clone(),
            KernelConfig::optimized(SCALE * mult),
        )
        .run(&lean);
        xs.push(lean.total_path_nuc_len() as f64);
        ys.push(r.modeled_s());
    }
    let r = pearson(&xs, &ys);
    assert!(r > 0.97, "modeled time vs path length r = {r:.3}");
}
