//! End-to-end tests of the upload-once graph store workflow over HTTP:
//! `POST /graphs` parses a GFA exactly once, `POST /layout?graph=<id>`
//! lays it out by reference (sub-kilobyte requests, any engine),
//! `DELETE /graphs/<id>` drops it without sinking in-flight jobs, and
//! the `.lean` disk tier serves references across server restarts
//! without a single re-parse.

use rapid_pangenome_layout::prelude::*;
use rapid_pangenome_layout::service::{
    EngineRegistry, HttpConfig, HttpServer, LayoutService, ServiceConfig,
};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One blocking HTTP/1.1 exchange; returns (status, body) and the total
/// bytes that went over the wire for the request.
fn http_sized(addr: SocketAddr, method: &str, path: &str, body: &[u8]) -> (u16, Vec<u8>, usize) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body).unwrap();
    let request_bytes = head.len() + body.len();
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read response");
    let header_end = response
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("complete header");
    let head = String::from_utf8_lossy(&response[..header_end]).into_owned();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    (status, response[header_end + 4..].to_vec(), request_bytes)
}

fn http(addr: SocketAddr, method: &str, path: &str, body: &[u8]) -> (u16, Vec<u8>) {
    let (status, body, _) = http_sized(addr, method, path, body);
    (status, body)
}

fn body_text(body: &[u8]) -> String {
    String::from_utf8_lossy(body).into_owned()
}

/// Pull `"field":<digits>` out of a flat JSON body.
fn json_u64(json: &str, field: &str) -> Option<u64> {
    let needle = format!("\"{field}\":");
    let at = json.find(&needle)? + needle.len();
    let digits: String = json[at..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

/// Pull `"field":"value"` out of a flat JSON body.
fn json_str_field(json: &str, field: &str) -> Option<String> {
    let needle = format!("\"{field}\":\"");
    let at = json.find(&needle)? + needle.len();
    let end = json[at..].find('"')?;
    Some(json[at..at + end].to_string())
}

fn poll_done(addr: SocketAddr, job: u64) {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (status, body) = http(addr, "GET", &format!("/jobs/{job}"), b"");
        assert_eq!(status, 200);
        let text = body_text(&body);
        if text.contains("\"state\":\"done\"") {
            return;
        }
        assert!(
            !text.contains("\"state\":\"failed\"") && !text.contains("\"state\":\"cancelled\""),
            "job should succeed: {text}"
        );
        assert!(Instant::now() < deadline, "timed out polling job: {text}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn spawn(service: &Arc<LayoutService>) -> rapid_pangenome_layout::service::ServerHandle {
    HttpServer::bind("127.0.0.1:0", Arc::clone(service))
        .expect("bind ephemeral")
        .with_config(HttpConfig::default())
        .spawn()
}

/// The acceptance-criterion test: a GFA uploaded once via `POST /graphs`
/// is parsed exactly once (the `parses` counter in `/stats`) while
/// serving four subsequent by-reference layout requests across three
/// engines — and every by-reference request is under 1 KB on the wire
/// regardless of graph size.
#[test]
fn upload_once_serves_many_layouts_across_engines_with_one_parse() {
    let service = Arc::new(LayoutService::start(
        EngineRegistry::with_default_engines(),
        ServiceConfig {
            workers: 2,
            cache_entries: 16,
            ..ServiceConfig::default()
        },
    ));
    let handle = spawn(&service);
    let addr = handle.addr();

    let gfa = write_gfa(&generate(&PangenomeSpec::basic("store", 60, 3, 11)));
    assert!(gfa.len() > 1024, "graph text is itself larger than 1 KB");

    // Upload once: 201 Created with the parsed metadata.
    let (status, body) = http(addr, "POST", "/graphs", gfa.as_bytes());
    let text = body_text(&body);
    assert_eq!(status, 201, "{text}");
    let id = json_str_field(&text, "graph_id").expect("graph id");
    assert_eq!(id.len(), 32);
    assert!(json_u64(&text, "nodes").unwrap() > 0);
    assert!(json_u64(&text, "steps").unwrap() > 0);
    assert!(text.contains("\"dedup\":false"));

    // Re-upload dedupes without a parse.
    let (status, body) = http(addr, "POST", "/graphs", gfa.as_bytes());
    assert_eq!(status, 200);
    assert!(body_text(&body).contains("\"dedup\":true"));

    // The store lists it.
    let (status, body) = http(addr, "GET", "/graphs", b"");
    assert_eq!(status, 200);
    let listing = body_text(&body);
    assert!(listing.contains(&id), "{listing}");
    assert_eq!(json_u64(&listing, "count"), Some(1));

    // Four by-reference layout requests across three engines. Every
    // request (line + headers + empty body) stays under 1 KB.
    let mut tsvs = Vec::new();
    for (engine, iters) in [("cpu", 4), ("cpu", 5), ("batch", 4), ("gpu", 3)] {
        let path = format!("/layout?graph={id}&engine={engine}&iters={iters}&threads=1");
        let (status, body, request_bytes) = http_sized(addr, "POST", &path, b"");
        let text = body_text(&body);
        assert_eq!(status, 202, "{text}");
        assert!(
            request_bytes < 1024,
            "by-reference request must be < 1 KB, was {request_bytes}"
        );
        assert!(text.contains(&format!("\"graph\":\"{id}\"")), "{text}");
        let job = json_u64(&text, "job").expect("job id");
        poll_done(addr, job);
        let (status, tsv) = http(addr, "GET", &format!("/result/{job}"), b"");
        assert_eq!(status, 200);
        tsvs.push(tsv);
    }
    assert_ne!(
        tsvs[0], tsvs[1],
        "different iters produce different layouts"
    );

    // The whole exchange parsed the GFA exactly once.
    let (status, body) = http(addr, "GET", "/stats", b"");
    assert_eq!(status, 200);
    let stats = body_text(&body);
    assert_eq!(json_u64(&stats, "parses"), Some(1), "{stats}");
    assert!(
        json_u64(&stats, "resident").unwrap() >= 1,
        "graph resident: {stats}"
    );
    handle.stop();
}

#[test]
fn identical_by_reference_requests_hit_the_layout_cache() {
    let service = Arc::new(LayoutService::start(
        EngineRegistry::with_default_engines(),
        ServiceConfig {
            workers: 1,
            cache_entries: 8,
            ..ServiceConfig::default()
        },
    ));
    let handle = spawn(&service);
    let addr = handle.addr();
    let gfa = write_gfa(&generate(&PangenomeSpec::basic("cache", 40, 2, 13)));
    let (_, body) = http(addr, "POST", "/graphs", gfa.as_bytes());
    let id = json_str_field(&body_text(&body), "graph_id").unwrap();

    let path = format!("/layout?graph={id}&engine=cpu&iters=4&threads=1");
    let (_, body) = http(addr, "POST", &path, b"");
    let job = json_u64(&body_text(&body), "job").unwrap();
    poll_done(addr, job);
    // The identical reference request is born done from the cache.
    let (status, body) = http(addr, "POST", &path, b"");
    let text = body_text(&body);
    assert_eq!(status, 202);
    assert!(
        text.contains("\"cached\":true") && text.contains("\"state\":\"done\""),
        "{text}"
    );
    handle.stop();
}

#[test]
fn delete_of_an_in_use_graph_does_not_sink_the_running_job() {
    let service = Arc::new(LayoutService::start(
        EngineRegistry::with_default_engines(),
        ServiceConfig {
            workers: 1,
            cache_entries: 4,
            ..ServiceConfig::default()
        },
    ));
    let handle = spawn(&service);
    let addr = handle.addr();
    let gfa = write_gfa(&generate(&PangenomeSpec::basic("del", 120, 4, 17)));
    let (_, body) = http(addr, "POST", "/graphs", gfa.as_bytes());
    let id = json_str_field(&body_text(&body), "graph_id").unwrap();

    // A long-running by-reference job…
    let (status, body) = http(
        addr,
        "POST",
        &format!("/layout?graph={id}&engine=cpu&iters=100000&threads=1"),
        b"",
    );
    assert_eq!(status, 202);
    let job = json_u64(&body_text(&body), "job").unwrap();
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (_, body) = http(addr, "GET", &format!("/jobs/{job}"), b"");
        if body_text(&body).contains("\"state\":\"running\"") {
            break;
        }
        assert!(Instant::now() < deadline, "job never started running");
        std::thread::sleep(Duration::from_millis(5));
    }

    // …survives deletion of its graph (shared Arc keeps the data),
    let (status, body) = http(addr, "DELETE", &format!("/graphs/{id}"), b"");
    assert_eq!(status, 200, "{}", body_text(&body));
    let (_, body) = http(addr, "GET", &format!("/jobs/{job}"), b"");
    let text = body_text(&body);
    assert!(
        text.contains("\"state\":\"running\""),
        "job unaffected by delete: {text}"
    );

    // …while new references 404 and double deletes 404.
    let (status, _) = http(
        addr,
        "POST",
        &format!("/layout?graph={id}&engine=cpu&iters=2"),
        b"",
    );
    assert_eq!(status, 404);
    let (status, _) = http(addr, "DELETE", &format!("/graphs/{id}"), b"");
    assert_eq!(status, 404);
    // Bad ids are 400, unknown well-formed ids are 404.
    let (status, _) = http(addr, "DELETE", "/graphs/nothex", b"");
    assert_eq!(status, 400);
    let (status, _) = http(addr, "POST", "/layout?graph=zzz&engine=cpu", b"");
    assert_eq!(status, 400);

    let (status, _) = http(addr, "POST", &format!("/jobs/{job}/cancel"), b"");
    assert_eq!(status, 200);
    handle.stop();
}

#[test]
fn graph_disk_tier_serves_references_across_restart_without_reparsing() {
    let dir = std::env::temp_dir().join(format!("pgl_graphstore_disk_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = || ServiceConfig {
        workers: 1,
        cache_entries: 8,
        graph_entries: 4,
        cache_dir: Some(dir.clone()),
        ..ServiceConfig::default()
    };
    let gfa = write_gfa(&generate(&PangenomeSpec::basic("disk", 50, 3, 19)));

    // First server: upload only (no layout at all).
    let id = {
        let service = Arc::new(LayoutService::start(
            EngineRegistry::with_default_engines(),
            cfg(),
        ));
        let handle = spawn(&service);
        let (status, body) = http(handle.addr(), "POST", "/graphs", gfa.as_bytes());
        assert_eq!(status, 201);
        let id = json_str_field(&body_text(&body), "graph_id").unwrap();
        handle.stop();
        id
    };

    // Second server: the graph comes back from the `.lean` disk tier;
    // the GFA text never crosses the wire again and is never re-parsed.
    let service = Arc::new(LayoutService::start(
        EngineRegistry::with_default_engines(),
        cfg(),
    ));
    let handle = spawn(&service);
    let addr = handle.addr();
    let (status, body) = http(addr, "GET", "/graphs", b"");
    assert_eq!(status, 200);
    assert_eq!(
        json_u64(&body_text(&body), "count"),
        Some(0),
        "fresh store catalog is empty until referenced"
    );
    let (status, body) = http(
        addr,
        "POST",
        &format!("/layout?graph={id}&engine=cpu&iters=4&threads=1"),
        b"",
    );
    let text = body_text(&body);
    assert_eq!(status, 202, "{text}");
    let job = json_u64(&text, "job").unwrap();
    poll_done(addr, job);
    let (_, body) = http(addr, "GET", "/stats", b"");
    let stats = body_text(&body);
    assert_eq!(json_u64(&stats, "parses"), Some(0), "no re-parse: {stats}");
    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn zero_segment_inline_bodies_are_rejected_before_enqueueing() {
    let service = Arc::new(LayoutService::start(
        EngineRegistry::with_default_engines(),
        ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        },
    ));
    let handle = spawn(&service);
    let addr = handle.addr();

    // Text that "parses" into an empty graph is refused with 400 at
    // submit — it never occupies a queue slot or reaches a worker.
    let (status, body) = http(
        addr,
        "POST",
        "/layout?engine=cpu",
        b"H\tVN:Z:1.0\nnot a record\n",
    );
    assert_eq!(status, 400);
    assert!(
        body_text(&body).contains("no segments"),
        "{}",
        body_text(&body)
    );
    // Same for POST /graphs.
    let (status, _) = http(addr, "POST", "/graphs", b"only garbage\n");
    assert_eq!(status, 400);

    let (_, body) = http(addr, "GET", "/stats", b"");
    let stats = body_text(&body);
    assert_eq!(
        json_u64(&stats, "submitted"),
        Some(0),
        "no job was ever created: {stats}"
    );
    handle.stop();
}
