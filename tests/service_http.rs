//! End-to-end test of the layout service's HTTP API: start the server on
//! an ephemeral port, POST a GFA, poll the job, fetch the TSV result, and
//! verify the second identical request is answered from the layout cache.

use rapid_pangenome_layout::prelude::*;
use rapid_pangenome_layout::service::{EngineRegistry, HttpServer, LayoutService, ServiceConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One blocking HTTP/1.1 exchange; returns (status, body).
fn http(addr: SocketAddr, method: &str, path: &str, body: &[u8]) -> (u16, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body).unwrap();
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read response");
    let header_end = response
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("complete header");
    let head = String::from_utf8_lossy(&response[..header_end]).into_owned();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    (status, response[header_end + 4..].to_vec())
}

fn body_text(body: &[u8]) -> String {
    String::from_utf8_lossy(body).into_owned()
}

/// Pull `"field":<digits>` out of a flat JSON body.
fn json_u64(json: &str, field: &str) -> Option<u64> {
    let needle = format!("\"{field}\":");
    let at = json.find(&needle)? + needle.len();
    let digits: String = json[at..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

#[test]
fn layout_jobs_round_trip_over_http_and_hit_the_cache() {
    let service = Arc::new(LayoutService::start(
        EngineRegistry::with_default_engines(),
        ServiceConfig {
            workers: 1,
            cache_entries: 8,
            ..ServiceConfig::default()
        },
    ));
    let server = HttpServer::bind("127.0.0.1:0", Arc::clone(&service)).expect("bind ephemeral");
    let handle = server.spawn();
    let addr = handle.addr();

    let gfa = write_gfa(&generate(&PangenomeSpec::basic("http", 50, 3, 7)));
    let post_path = "/layout?engine=cpu&iters=4&threads=1&seed=42";

    // Health and stats respond before any work.
    let (status, body) = http(addr, "GET", "/healthz", b"");
    assert_eq!(status, 200, "{}", body_text(&body));
    let (status, _) = http(addr, "GET", "/stats", b"");
    assert_eq!(status, 200);

    // Submit the first job.
    let (status, body) = http(addr, "POST", post_path, gfa.as_bytes());
    let text = body_text(&body);
    assert_eq!(status, 202, "{text}");
    assert!(
        text.contains("\"cached\":false"),
        "first request computes: {text}"
    );
    let job = json_u64(&text, "job").expect("job id");

    // Poll to completion.
    let deadline = Instant::now() + Duration::from_secs(120);
    let final_status = loop {
        let (status, body) = http(addr, "GET", &format!("/jobs/{job}"), b"");
        assert_eq!(status, 200);
        let text = body_text(&body);
        if text.contains("\"state\":\"done\"") {
            break text;
        }
        assert!(
            !text.contains("\"state\":\"failed\"") && !text.contains("\"state\":\"cancelled\""),
            "job should succeed: {text}"
        );
        assert!(Instant::now() < deadline, "timed out polling job: {text}");
        std::thread::sleep(Duration::from_millis(10));
    };
    assert!(
        final_status.contains("\"progress\":1.000"),
        "{final_status}"
    );

    // Fetch the TSV result.
    let (status, tsv_bytes) = http(addr, "GET", &format!("/result/{job}"), b"");
    assert_eq!(status, 200);
    let tsv = body_text(&tsv_bytes);
    assert!(
        tsv.starts_with("#idx"),
        "TSV header expected, got: {}",
        &tsv[..tsv.len().min(60)]
    );
    assert!(tsv.lines().count() > 1, "TSV has coordinate rows");

    // The identical request is served from the cache, already done.
    let (status, body) = http(addr, "POST", post_path, gfa.as_bytes());
    let text = body_text(&body);
    assert_eq!(status, 202);
    assert!(
        text.contains("\"cached\":true"),
        "second request hits the cache: {text}"
    );
    assert!(text.contains("\"state\":\"done\""), "{text}");
    let job2 = json_u64(&text, "job").expect("job id");
    assert_ne!(job, job2);
    let (status, body2) = http(addr, "GET", &format!("/result/{job2}"), b"");
    assert_eq!(status, 200);
    assert_eq!(tsv_bytes, body2, "cached layout is byte-identical");

    // A *different* config misses the cache.
    let (status, body) = http(
        addr,
        "POST",
        "/layout?engine=cpu&iters=5&threads=1&seed=42",
        gfa.as_bytes(),
    );
    assert_eq!(status, 202);
    assert!(body_text(&body).contains("\"cached\":false"));

    // Stats agree: one hit so far.
    let (status, body) = http(addr, "GET", "/stats", b"");
    assert_eq!(status, 200);
    let stats = body_text(&body);
    assert_eq!(json_u64(&stats, "hits"), Some(1), "{stats}");
    assert!(json_u64(&stats, "submitted").unwrap() >= 3, "{stats}");

    // Error paths: unknown job, result of unknown job, bad engine, 404s.
    let (status, _) = http(addr, "GET", "/jobs/99999", b"");
    assert_eq!(status, 404);
    let (status, _) = http(addr, "GET", "/result/99999", b"");
    assert_eq!(status, 404);
    let (status, body) = http(addr, "POST", "/layout?engine=quantum", gfa.as_bytes());
    assert_eq!(status, 400);
    assert!(body_text(&body).contains("quantum"));
    let (status, _) = http(addr, "GET", "/no/such/route", b"");
    assert_eq!(status, 404);

    handle.stop();
}

#[test]
fn http_cancellation_stops_a_running_job() {
    let service = Arc::new(LayoutService::start(
        EngineRegistry::with_default_engines(),
        ServiceConfig {
            workers: 1,
            cache_entries: 4,
            ..ServiceConfig::default()
        },
    ));
    let server = HttpServer::bind("127.0.0.1:0", Arc::clone(&service)).expect("bind");
    let handle = server.spawn();
    let addr = handle.addr();

    let gfa = write_gfa(&generate(&PangenomeSpec::basic("cancel", 120, 4, 3)));
    // Enough iterations that only cancellation ends the job promptly.
    let (status, body) = http(
        addr,
        "POST",
        "/layout?engine=cpu&iters=100000&threads=1",
        gfa.as_bytes(),
    );
    assert_eq!(status, 202);
    let job = json_u64(&body_text(&body), "job").unwrap();

    // Wait until it is running, cancel, then confirm the terminal state.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (_, body) = http(addr, "GET", &format!("/jobs/{job}"), b"");
        if body_text(&body).contains("\"state\":\"running\"") {
            break;
        }
        assert!(Instant::now() < deadline, "job never started running");
        std::thread::sleep(Duration::from_millis(5));
    }
    let (status, _) = http(addr, "POST", &format!("/jobs/{job}/cancel"), b"");
    assert_eq!(status, 200);
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (_, body) = http(addr, "GET", &format!("/jobs/{job}"), b"");
        let text = body_text(&body);
        if text.contains("\"state\":\"cancelled\"") {
            break;
        }
        assert!(Instant::now() < deadline, "cancel never landed: {text}");
        std::thread::sleep(Duration::from_millis(5));
    }
    // No result for a cancelled job.
    let (status, _) = http(addr, "GET", &format!("/result/{job}"), b"");
    assert_eq!(status, 409);

    handle.stop();
}
