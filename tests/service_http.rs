//! End-to-end tests of the layout service's HTTP API: job round trips
//! and cache hits, plus the traffic-hardening behaviors — overload
//! shedding (503 + Retry-After from the bounded connection queue),
//! HTTP/1.1 keep-alive reuse, request metrics, duplicate-Content-Length
//! rejection, and disk-tier cache hits across a server restart.

use rapid_pangenome_layout::prelude::*;
use rapid_pangenome_layout::service::{
    EngineRegistry, HttpConfig, HttpServer, LayoutService, ServiceConfig,
};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One blocking HTTP/1.1 exchange; returns (status, body).
fn http(addr: SocketAddr, method: &str, path: &str, body: &[u8]) -> (u16, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body).unwrap();
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read response");
    let header_end = response
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("complete header");
    let head = String::from_utf8_lossy(&response[..header_end]).into_owned();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    (status, response[header_end + 4..].to_vec())
}

fn body_text(body: &[u8]) -> String {
    String::from_utf8_lossy(body).into_owned()
}

/// Pull `"field":<digits>` out of a flat JSON body.
fn json_u64(json: &str, field: &str) -> Option<u64> {
    let needle = format!("\"{field}\":");
    let at = json.find(&needle)? + needle.len();
    let digits: String = json[at..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

#[test]
fn layout_jobs_round_trip_over_http_and_hit_the_cache() {
    let service = Arc::new(LayoutService::start(
        EngineRegistry::with_default_engines(),
        ServiceConfig {
            workers: 1,
            cache_entries: 8,
            ..ServiceConfig::default()
        },
    ));
    let server = HttpServer::bind("127.0.0.1:0", Arc::clone(&service)).expect("bind ephemeral");
    let handle = server.spawn();
    let addr = handle.addr();

    let gfa = write_gfa(&generate(&PangenomeSpec::basic("http", 50, 3, 7)));
    let post_path = "/layout?engine=cpu&iters=4&threads=1&seed=42";

    // Health and stats respond before any work.
    let (status, body) = http(addr, "GET", "/healthz", b"");
    assert_eq!(status, 200, "{}", body_text(&body));
    let (status, _) = http(addr, "GET", "/stats", b"");
    assert_eq!(status, 200);

    // Submit the first job.
    let (status, body) = http(addr, "POST", post_path, gfa.as_bytes());
    let text = body_text(&body);
    assert_eq!(status, 202, "{text}");
    assert!(
        text.contains("\"cached\":false"),
        "first request computes: {text}"
    );
    let job = json_u64(&text, "job").expect("job id");

    // Poll to completion.
    let deadline = Instant::now() + Duration::from_secs(120);
    let final_status = loop {
        let (status, body) = http(addr, "GET", &format!("/jobs/{job}"), b"");
        assert_eq!(status, 200);
        let text = body_text(&body);
        if text.contains("\"state\":\"done\"") {
            break text;
        }
        assert!(
            !text.contains("\"state\":\"failed\"") && !text.contains("\"state\":\"cancelled\""),
            "job should succeed: {text}"
        );
        assert!(Instant::now() < deadline, "timed out polling job: {text}");
        std::thread::sleep(Duration::from_millis(10));
    };
    assert!(
        final_status.contains("\"progress\":1.000"),
        "{final_status}"
    );

    // Fetch the TSV result.
    let (status, tsv_bytes) = http(addr, "GET", &format!("/result/{job}"), b"");
    assert_eq!(status, 200);
    let tsv = body_text(&tsv_bytes);
    assert!(
        tsv.starts_with("#idx"),
        "TSV header expected, got: {}",
        &tsv[..tsv.len().min(60)]
    );
    assert!(tsv.lines().count() > 1, "TSV has coordinate rows");

    // The identical request is served from the cache, already done.
    let (status, body) = http(addr, "POST", post_path, gfa.as_bytes());
    let text = body_text(&body);
    assert_eq!(status, 202);
    assert!(
        text.contains("\"cached\":true"),
        "second request hits the cache: {text}"
    );
    assert!(text.contains("\"state\":\"done\""), "{text}");
    let job2 = json_u64(&text, "job").expect("job id");
    assert_ne!(job, job2);
    let (status, body2) = http(addr, "GET", &format!("/result/{job2}"), b"");
    assert_eq!(status, 200);
    assert_eq!(tsv_bytes, body2, "cached layout is byte-identical");

    // A *different* config misses the cache.
    let (status, body) = http(
        addr,
        "POST",
        "/layout?engine=cpu&iters=5&threads=1&seed=42",
        gfa.as_bytes(),
    );
    assert_eq!(status, 202);
    assert!(body_text(&body).contains("\"cached\":false"));

    // Stats agree: one hit so far.
    let (status, body) = http(addr, "GET", "/stats", b"");
    assert_eq!(status, 200);
    let stats = body_text(&body);
    assert_eq!(json_u64(&stats, "hits"), Some(1), "{stats}");
    assert!(json_u64(&stats, "submitted").unwrap() >= 3, "{stats}");

    // Error paths: unknown job, result of unknown job, bad engine, 404s.
    let (status, _) = http(addr, "GET", "/jobs/99999", b"");
    assert_eq!(status, 404);
    let (status, _) = http(addr, "GET", "/result/99999", b"");
    assert_eq!(status, 404);
    let (status, body) = http(addr, "POST", "/layout?engine=quantum", gfa.as_bytes());
    assert_eq!(status, 400);
    assert!(body_text(&body).contains("quantum"));
    let (status, _) = http(addr, "GET", "/no/such/route", b"");
    assert_eq!(status, 404);

    handle.stop();
}

#[test]
fn http_cancellation_stops_a_running_job() {
    let service = Arc::new(LayoutService::start(
        EngineRegistry::with_default_engines(),
        ServiceConfig {
            workers: 1,
            cache_entries: 4,
            ..ServiceConfig::default()
        },
    ));
    let server = HttpServer::bind("127.0.0.1:0", Arc::clone(&service)).expect("bind");
    let handle = server.spawn();
    let addr = handle.addr();

    let gfa = write_gfa(&generate(&PangenomeSpec::basic("cancel", 120, 4, 3)));
    // Enough iterations that only cancellation ends the job promptly.
    let (status, body) = http(
        addr,
        "POST",
        "/layout?engine=cpu&iters=100000&threads=1",
        gfa.as_bytes(),
    );
    assert_eq!(status, 202);
    let job = json_u64(&body_text(&body), "job").unwrap();

    // Wait until it is running, cancel, then confirm the terminal state.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (_, body) = http(addr, "GET", &format!("/jobs/{job}"), b"");
        if body_text(&body).contains("\"state\":\"running\"") {
            break;
        }
        assert!(Instant::now() < deadline, "job never started running");
        std::thread::sleep(Duration::from_millis(5));
    }
    let (status, _) = http(addr, "POST", &format!("/jobs/{job}/cancel"), b"");
    assert_eq!(status, 200);
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (_, body) = http(addr, "GET", &format!("/jobs/{job}"), b"");
        let text = body_text(&body);
        if text.contains("\"state\":\"cancelled\"") {
            break;
        }
        assert!(Instant::now() < deadline, "cancel never landed: {text}");
        std::thread::sleep(Duration::from_millis(5));
    }
    // No result for a cancelled job.
    let (status, _) = http(addr, "GET", &format!("/result/{job}"), b"");
    assert_eq!(status, 409);

    handle.stop();
}

/// Read exactly one HTTP response (status line + headers + a
/// Content-Length body) without consuming bytes of the next one, so a
/// connection can be reused. Returns (status, raw head, body).
fn read_response(stream: &mut TcpStream) -> (u16, String, Vec<u8>) {
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        stream.read_exact(&mut byte).expect("read header byte");
        head.push(byte[0]);
        assert!(head.len() < 64 * 1024, "runaway response head");
    }
    let head = String::from_utf8_lossy(&head).into_owned();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status code in {head:?}"));
    let content_length: usize = head
        .lines()
        .find_map(|l| {
            let (k, v) = l.split_once(':')?;
            if k.eq_ignore_ascii_case("content-length") {
                v.trim().parse().ok()
            } else {
                None
            }
        })
        .unwrap_or(0);
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body).expect("read body");
    (status, head, body)
}

/// Write one request on an existing connection (keep-alive by default).
fn send_request(stream: &mut TcpStream, method: &str, path: &str, extra: &str, body: &[u8]) {
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n{extra}\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body).unwrap();
    stream.flush().unwrap();
}

fn spawn_server(
    service: &Arc<LayoutService>,
    http_cfg: HttpConfig,
) -> rapid_pangenome_layout::service::ServerHandle {
    HttpServer::bind("127.0.0.1:0", Arc::clone(service))
        .expect("bind ephemeral")
        .with_config(http_cfg)
        .spawn()
}

fn small_service(workers: usize) -> Arc<LayoutService> {
    Arc::new(LayoutService::start(
        EngineRegistry::with_default_engines(),
        ServiceConfig {
            workers,
            cache_entries: 8,
            ..ServiceConfig::default()
        },
    ))
}

#[test]
fn keep_alive_serves_sequential_requests_on_one_connection() {
    let service = small_service(1);
    let handle = spawn_server(
        &service,
        HttpConfig {
            max_conns: 4,
            keep_alive: Duration::from_secs(5),
            ..HttpConfig::default()
        },
    );
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();

    // Three requests ride the same TCP connection.
    for _ in 0..3 {
        send_request(&mut stream, "GET", "/healthz", "", b"");
        let (status, head, body) = read_response(&mut stream);
        assert_eq!(status, 200, "{}", body_text(&body));
        assert!(
            head.to_lowercase().contains("connection: keep-alive"),
            "server advertises reuse: {head}"
        );
        assert!(head.to_lowercase().contains("keep-alive: timeout="));
    }

    // The metrics endpoint (request 4 on the same socket) has seen the
    // reuses and the per-route histogram.
    send_request(&mut stream, "GET", "/metrics", "", b"");
    let (status, _, body) = read_response(&mut stream);
    assert_eq!(status, 200);
    let text = body_text(&body);
    assert!(text.contains("pgl_http_keepalive_reuses_total 3"), "{text}");
    assert!(
        text.contains("pgl_http_requests_total{route=\"/healthz\",class=\"2xx\"} 3"),
        "{text}"
    );
    assert!(
        text.contains("pgl_http_request_duration_us_bucket{route=\"/healthz\",le=\"+Inf\"} 3"),
        "{text}"
    );
    assert!(
        text.contains("quantile=\"0.99\""),
        "quantiles derivable: {text}"
    );

    // `Connection: close` is honored: the server answers and hangs up.
    send_request(&mut stream, "GET", "/healthz", "Connection: close\r\n", b"");
    let (status, head, _) = read_response(&mut stream);
    assert_eq!(status, 200);
    assert!(head.to_lowercase().contains("connection: close"), "{head}");
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).expect("EOF after close");
    assert!(rest.is_empty(), "nothing follows a closed response");

    drop(stream);
    handle.stop();
}

#[test]
fn overloaded_server_sheds_load_with_503_and_retry_after() {
    let service = small_service(1);
    // One handler thread and a one-slot queue: the third concurrent
    // connection must be shed.
    let handle = spawn_server(
        &service,
        HttpConfig {
            max_conns: 1,
            keep_alive: Duration::from_secs(1),
            ..HttpConfig::default()
        },
    );
    let addr = handle.addr();
    let gfa = write_gfa(&generate(&PangenomeSpec::basic("load", 40, 2, 5)));
    let (first_half, second_half) = gfa.as_bytes().split_at(gfa.len() / 2);

    // Connection A occupies the only handler: full headers, half a body.
    let mut a = TcpStream::connect(addr).expect("connect A");
    a.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    a.write_all(
        format!(
            "POST /layout?engine=cpu&iters=2&threads=1 HTTP/1.1\r\nHost: x\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n",
            gfa.len()
        )
        .as_bytes(),
    )
    .unwrap();
    a.write_all(first_half).unwrap();
    a.flush().unwrap();
    std::thread::sleep(Duration::from_millis(300)); // handler takes A

    // Connection B fills the single queue slot.
    let b = TcpStream::connect(addr).expect("connect B");
    std::thread::sleep(Duration::from_millis(150));

    // Connection C: queue full → immediate 503 from the acceptor, with
    // Retry-After, instead of hanging.
    let mut c = TcpStream::connect(addr).expect("connect C");
    c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let (status, head, body) = read_response(&mut c);
    assert_eq!(status, 503, "{}", body_text(&body));
    assert!(head.contains("Retry-After:"), "{head}");
    assert!(body_text(&body).contains("overloaded"));

    // A finishes its upload and is served normally.
    a.write_all(second_half).unwrap();
    a.flush().unwrap();
    let (status, _, body) = read_response(&mut a);
    assert_eq!(status, 202, "{}", body_text(&body));
    assert!(body_text(&body).contains("\"job\""));

    drop(a);
    drop(b);
    drop(c);
    // The shed connection shows up in the stats.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (status, body) = http(addr, "GET", "/stats", b"");
        assert_eq!(status, 200);
        if json_u64(&body_text(&body), "rejected_503") == Some(1) {
            break;
        }
        assert!(Instant::now() < deadline, "503 never counted");
        std::thread::sleep(Duration::from_millis(20));
    }
    handle.stop();
}

#[test]
fn disk_cache_hit_survives_a_server_restart() {
    let dir = std::env::temp_dir().join(format!("pgl_http_disk_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = || ServiceConfig {
        workers: 1,
        cache_entries: 8,
        cache_dir: Some(dir.clone()),
        ..ServiceConfig::default()
    };
    let gfa = write_gfa(&generate(&PangenomeSpec::basic("disk", 50, 3, 9)));
    let post_path = "/layout?engine=cpu&iters=4&threads=1&seed=7";

    // First server computes the layout and spills it to the disk tier.
    let first_tsv = {
        let service = Arc::new(LayoutService::start(
            EngineRegistry::with_default_engines(),
            cfg(),
        ));
        let handle = spawn_server(&service, HttpConfig::default());
        let addr = handle.addr();
        let (status, body) = http(addr, "POST", post_path, gfa.as_bytes());
        assert_eq!(status, 202);
        let text = body_text(&body);
        assert!(text.contains("\"cached\":false"), "{text}");
        let job = json_u64(&text, "job").unwrap();
        let deadline = Instant::now() + Duration::from_secs(120);
        loop {
            let (_, body) = http(addr, "GET", &format!("/jobs/{job}"), b"");
            let text = body_text(&body);
            if text.contains("\"state\":\"done\"") {
                break;
            }
            assert!(Instant::now() < deadline, "job never finished: {text}");
            std::thread::sleep(Duration::from_millis(10));
        }
        let (status, tsv) = http(addr, "GET", &format!("/result/{job}"), b"");
        assert_eq!(status, 200);
        handle.stop();
        tsv
    }; // the whole first service (and its in-memory cache) is dropped here

    // A freshly started server answers the same request from the disk
    // tier without recomputation: the ticket is born cached.
    let service = Arc::new(LayoutService::start(
        EngineRegistry::with_default_engines(),
        cfg(),
    ));
    let handle = spawn_server(&service, HttpConfig::default());
    let addr = handle.addr();
    let (status, body) = http(addr, "POST", post_path, gfa.as_bytes());
    assert_eq!(status, 202);
    let text = body_text(&body);
    assert!(
        text.contains("\"cached\":true") && text.contains("\"state\":\"done\""),
        "restarted server hits the disk tier: {text}"
    );
    let job = json_u64(&text, "job").unwrap();
    let (status, tsv) = http(addr, "GET", &format!("/result/{job}"), b"");
    assert_eq!(status, 200);
    assert_eq!(tsv, first_tsv, "disk tier serves the identical layout");
    let (_, stats) = http(addr, "GET", "/stats", b"");
    assert_eq!(json_u64(&body_text(&stats), "disk_hits"), Some(1));

    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stop_is_prompt_even_with_idle_keep_alive_connections() {
    let service = small_service(1);
    // A long idle timeout: stop() must not wait it out.
    let handle = spawn_server(
        &service,
        HttpConfig {
            max_conns: 2,
            keep_alive: Duration::from_secs(30),
            ..HttpConfig::default()
        },
    );
    let idle = TcpStream::connect(handle.addr()).expect("connect");
    std::thread::sleep(Duration::from_millis(200)); // handler picks it up
    let t0 = Instant::now();
    handle.stop();
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "stop() blocked for {:?} behind an idle connection",
        t0.elapsed()
    );
    drop(idle);
}

#[test]
fn conflicting_content_length_headers_are_rejected() {
    let service = small_service(1);
    let handle = spawn_server(&service, HttpConfig::default());
    let addr = handle.addr();

    // Conflicting values: a request-smuggling probe → 400, no body read.
    let mut probe = TcpStream::connect(addr).expect("connect");
    probe
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    probe
        .write_all(
            b"POST /layout HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\
              Content-Length: 6\r\nConnection: close\r\n\r\nabcd",
        )
        .unwrap();
    let (status, _, body) = read_response(&mut probe);
    assert_eq!(status, 400, "{}", body_text(&body));
    assert!(
        body_text(&body).contains("Content-Length"),
        "{}",
        body_text(&body)
    );

    // Identical duplicates are harmless and accepted (RFC 9112 §6.3).
    let gfa = "S\t1\tAC\nS\t2\tGT\nL\t1\t+\t2\t+\t0M\nP\tp\t1+,2+\t*\n";
    let mut dup = TcpStream::connect(addr).expect("connect");
    dup.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    dup.write_all(
        format!(
            "POST /layout?iters=2&threads=1 HTTP/1.1\r\nHost: x\r\nContent-Length: {len}\r\n\
             Content-Length: {len}\r\nConnection: close\r\n\r\n{gfa}",
            len = gfa.len()
        )
        .as_bytes(),
    )
    .unwrap();
    let (status, _, _) = read_response(&mut dup);
    assert_eq!(status, 202, "identical duplicates behave as one header");

    // Transfer-Encoding (the other smuggling vector) is refused too.
    let mut te = TcpStream::connect(addr).expect("connect");
    te.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    te.write_all(
        b"POST /layout HTTP/1.1\r\nHost: x\r\nTransfer-Encoding: chunked\r\n\
          Connection: close\r\n\r\n0\r\n\r\n",
    )
    .unwrap();
    let (status, _, _) = read_response(&mut te);
    assert_eq!(status, 400);

    handle.stop();
}
