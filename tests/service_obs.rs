//! End-to-end observability tests: the per-job trace endpoint (ordered
//! phase timeline whose durations account for the job's wall time),
//! live engine-telemetry events in the job stream, the merged
//! Prometheus exposition (HTTP + service families, checked with the
//! offline validator), and the enriched `/healthz` / `/stats` identity
//! fields.

use rapid_pangenome_layout::prelude::*;
use rapid_pangenome_layout::service::{
    validate_exposition, EngineRegistry, EventKind, HttpServer, LayoutService, ServiceConfig,
};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One blocking HTTP/1.1 exchange; returns (status, body).
fn http(addr: SocketAddr, method: &str, path: &str, body: &[u8]) -> (u16, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body).unwrap();
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read response");
    let header_end = response
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("complete header");
    let head = String::from_utf8_lossy(&response[..header_end]).into_owned();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    (status, response[header_end + 4..].to_vec())
}

fn body_text(body: &[u8]) -> String {
    String::from_utf8_lossy(body).into_owned()
}

/// Pull `"field":<digits>` out of a flat JSON body.
fn json_u64(json: &str, field: &str) -> Option<u64> {
    let needle = format!("\"{field}\":");
    let at = json.find(&needle)? + needle.len();
    let digits: String = json[at..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

fn start_server() -> (
    Arc<LayoutService>,
    rapid_pangenome_layout::service::ServerHandle,
) {
    let service = Arc::new(LayoutService::start(
        EngineRegistry::with_default_engines(),
        ServiceConfig {
            workers: 1,
            cache_entries: 8,
            ..ServiceConfig::default()
        },
    ));
    let server = HttpServer::bind("127.0.0.1:0", Arc::clone(&service)).expect("bind ephemeral");
    let handle = server.spawn();
    (service, handle)
}

fn poll_done(addr: SocketAddr, job: u64) -> String {
    let deadline = Instant::now() + Duration::from_secs(180);
    loop {
        let (status, body) = http(addr, "GET", &format!("/v1/jobs/{job}"), b"");
        assert_eq!(status, 200);
        let text = body_text(&body);
        if text.contains("\"state\":\"done\"") {
            return text;
        }
        assert!(
            !text.contains("\"state\":\"failed\"") && !text.contains("\"state\":\"cancelled\""),
            "job should succeed: {text}"
        );
        assert!(Instant::now() < deadline, "timed out polling job: {text}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn trace_endpoint_returns_an_ordered_timeline_that_accounts_for_wall_time() {
    let (_service, handle) = start_server();
    let addr = handle.addr();
    let gfa = write_gfa(&generate(&PangenomeSpec::basic("obs-trace", 400, 4, 7)));

    let (status, body) = http(
        addr,
        "POST",
        "/v1/jobs?engine=cpu&iters=20&threads=1&seed=42",
        gfa.as_bytes(),
    );
    let text = body_text(&body);
    assert_eq!(status, 202, "{text}");
    let job = json_u64(&text, "job").expect("job id");
    let final_status = poll_done(addr, job);

    // The status JSON carries a per-phase summary of closed spans.
    assert!(final_status.contains("\"phases_us\":{"), "{final_status}");
    assert!(final_status.contains("\"layout\":"), "{final_status}");

    let (status, body) = http(addr, "GET", &format!("/v1/jobs/{job}/trace"), b"");
    assert_eq!(status, 200);
    let trace = body_text(&body);

    // Lifecycle phases appear in submission order.
    let pos = |phase: &str| {
        trace
            .find(&format!("\"phase\":\"{phase}\""))
            .unwrap_or_else(|| panic!("missing {phase} span in {trace}"))
    };
    assert!(pos("cache_probe") < pos("queue_wait"), "{trace}");
    assert!(pos("queue_wait") < pos("layout"), "{trace}");
    assert!(pos("layout") < pos("spill"), "{trace}");
    assert!(
        trace.contains("\"phase\":\"graph_parse\""),
        "fresh GFA body is parsed: {trace}"
    );
    assert!(
        !trace.contains("\"dur_us\":null"),
        "all spans closed on a done job: {trace}"
    );

    // The closed spans account for the job's wall clock: they cannot
    // exceed it (modulo rounding), and on a job of any substance they
    // cover most of it.
    let wall_ms = json_u64(&trace, "wall_ms").expect("wall_ms");
    let total_us = json_u64(&trace, "total_us").expect("total_us");
    assert!(total_us > 0, "{trace}");
    assert!(
        total_us <= (wall_ms + 150) * 1000,
        "span durations exceed wall time: {trace}"
    );
    if wall_ms >= 100 {
        assert!(
            total_us >= wall_ms * 1000 / 2,
            "span durations cover too little of the wall time: {trace}"
        );
    }

    // A missing job 404s, a malformed id 400s.
    let (status, _) = http(addr, "GET", "/v1/jobs/999999/trace", b"");
    assert_eq!(status, 404);
    let (status, _) = http(addr, "GET", "/v1/jobs/banana/trace", b"");
    assert_eq!(status, 400);

    // A cached resubmission is born done: probe span only, no layout.
    let (status, body) = http(
        addr,
        "POST",
        "/v1/jobs?engine=cpu&iters=20&threads=1&seed=42",
        gfa.as_bytes(),
    );
    let text = body_text(&body);
    assert_eq!(status, 202, "{text}");
    assert!(text.contains("\"cached\":true"), "{text}");
    let cached_job = json_u64(&text, "job").expect("job id");
    let (status, body) = http(addr, "GET", &format!("/v1/jobs/{cached_job}/trace"), b"");
    assert_eq!(status, 200);
    let trace = body_text(&body);
    assert!(trace.contains("\"phase\":\"cache_probe\""), "{trace}");
    assert!(!trace.contains("\"phase\":\"layout\""), "{trace}");

    handle.stop();
}

#[test]
fn metrics_exposition_merges_http_and_service_families_and_validates() {
    let (_service, handle) = start_server();
    let addr = handle.addr();
    let gfa = write_gfa(&generate(&PangenomeSpec::basic("obs-metrics", 300, 4, 9)));

    let (status, body) = http(
        addr,
        "POST",
        "/v1/jobs?engine=cpu&iters=10&threads=1",
        gfa.as_bytes(),
    );
    assert_eq!(status, 202);
    let job = json_u64(&body_text(&body), "job").expect("job id");
    poll_done(addr, job);

    for path in ["/metrics", "/v1/metrics"] {
        let (status, body) = http(addr, "GET", path, b"");
        assert_eq!(status, 200);
        let text = body_text(&body);
        validate_exposition(&text).unwrap_or_else(|e| panic!("{path}: {e}\n{text}"));
        // HTTP families.
        assert!(text.contains("pgl_http_requests_total"), "{path}");
        assert!(
            text.contains("pgl_http_request_duration_us_bucket"),
            "{path}"
        );
        // Service families: phase + queue-wait histograms, engine
        // gauges, scheduler and cache-tier gauges.
        assert!(text.contains("pgl_job_phase_us_bucket"), "{path}");
        assert!(text.contains("pgl_job_queue_wait_us_bucket"), "{path}");
        assert!(text.contains("pgl_engine_terms_applied_total"), "{path}");
        assert!(text.contains("pgl_engine_updates_per_sec"), "{path}");
        assert!(text.contains("pgl_engine_running_jobs"), "{path}");
        assert!(
            text.contains("pgl_queue_depth{band=\"interactive\"}"),
            "{path}"
        );
        assert!(text.contains("pgl_jobs_total{outcome=\"done\"}"), "{path}");
        assert!(
            text.contains("pgl_cache_hit_ratio{tier=\"layout\"}"),
            "{path}"
        );
        assert!(text.contains("pgl_cache_entries{tier=\"graph\"}"), "{path}");
    }

    // The finished job's work is visible in the counters: a layout
    // phase observation and a nonzero terms-applied total.
    let (_, body) = http(addr, "GET", "/v1/metrics", b"");
    let text = body_text(&body);
    let phase_count = text
        .lines()
        .find(|l| l.starts_with("pgl_job_phase_us_count{phase=\"layout\"}"))
        .and_then(|l| l.split_whitespace().last()?.parse::<u64>().ok())
        .expect("layout phase count");
    assert!(phase_count >= 1, "{text}");
    let terms = text
        .lines()
        .find(|l| l.starts_with("pgl_engine_terms_applied_total"))
        .and_then(|l| l.split_whitespace().last()?.parse::<u64>().ok())
        .expect("terms applied total");
    assert!(terms > 0, "{text}");

    handle.stop();
}

#[test]
fn long_jobs_stream_periodic_metrics_events() {
    let service = Arc::new(LayoutService::start(
        EngineRegistry::with_default_engines(),
        ServiceConfig {
            workers: 1,
            cache_entries: 4,
            ..ServiceConfig::default()
        },
    ));
    // Chunky enough to run well past the 200 ms sampling period even on
    // a fast machine.
    let gfa = write_gfa(&generate(&PangenomeSpec::basic("obs-long", 1500, 6, 11)));
    let mut request = JobRequest::new("cpu", &gfa);
    request.config.iter_max = 120;
    request.config.threads = 1;
    let ticket = service.submit(request).unwrap();
    let status = service
        .wait(ticket.id, Duration::from_secs(300))
        .expect("job finishes");
    assert_eq!(status.state, JobState::Done);

    let (events, terminal) = service
        .wait_events(ticket.id, 0, Duration::from_secs(5))
        .expect("event log");
    assert!(terminal);
    let metrics: Vec<_> = events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::Metrics {
                terms_applied,
                updates_per_sec,
                iteration,
                iteration_max,
            } => Some((*terms_applied, *updates_per_sec, *iteration, *iteration_max)),
            _ => None,
        })
        .collect();
    assert!(
        !metrics.is_empty(),
        "a multi-second job emits live telemetry events; wall_ms={} events={}",
        status.wall_ms,
        events.len()
    );
    for (terms, ups, iteration, iteration_max) in &metrics {
        assert!(*terms > 0);
        assert!(*ups >= 0.0);
        assert!(iteration <= iteration_max);
        assert_eq!(*iteration_max, 120);
    }
    // Live counters are monotone across successive samples.
    for pair in metrics.windows(2) {
        assert!(
            pair[1].0 >= pair[0].0,
            "terms_applied regressed: {metrics:?}"
        );
    }
    // The final telemetry matches what the trace recorded as finished
    // work: the job's terms land in the service total.
    let trace_status = service.status(ticket.id).expect("status");
    assert!(trace_status.trace.phase_us("layout").unwrap() > 0);
}

#[test]
fn healthz_and_stats_expose_version_uptime_and_features() {
    let (_service, handle) = start_server();
    let addr = handle.addr();

    for path in ["/healthz", "/v1/healthz"] {
        let (status, body) = http(addr, "GET", path, b"");
        assert_eq!(status, 200);
        let text = body_text(&body);
        assert!(text.contains("\"ok\":true"), "{text}");
        assert!(text.contains("\"version\":\""), "{text}");
        assert!(text.contains("\"uptime_s\":"), "{text}");
        assert!(text.contains("\"engines\":["), "{text}");
        assert!(text.contains("\"cpu\""), "{text}");
        assert!(text.contains("\"precisions\":[\"f32\",\"f64\"]"), "{text}");
    }

    let (status, body) = http(addr, "GET", "/v1/stats", b"");
    assert_eq!(status, 200);
    let text = body_text(&body);
    assert!(text.contains("\"version\":\""), "{text}");
    assert!(text.contains("\"uptime_s\":"), "{text}");
    assert!(text.contains("\"features\":{"), "{text}");
    assert!(
        text.contains("\"jobs\":{"),
        "stats keeps its job block: {text}"
    );

    handle.stop();
}
