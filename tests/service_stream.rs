//! Streaming-progress integration tests: `GET /v1/jobs/<id>/events`
//! delivers the job's event log as a chunked NDJSON stream — ordered
//! sequence numbers, monotonic progress, terminal state last, stream
//! closed on terminal — without the client ever polling.

use rapid_pangenome_layout::prelude::*;
use rapid_pangenome_layout::service::{EngineRegistry, HttpServer, LayoutService, ServiceConfig};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn small_gfa(seed: u64) -> String {
    write_gfa(&generate(&PangenomeSpec::basic("stream", 50, 3, seed)))
}

fn spawn_http(
    workers: usize,
) -> (
    Arc<LayoutService>,
    rapid_pangenome_layout::service::ServerHandle,
) {
    let svc = Arc::new(LayoutService::start(
        EngineRegistry::with_default_engines(),
        ServiceConfig {
            workers,
            cache_entries: 16,
            ..ServiceConfig::default()
        },
    ));
    let handle = HttpServer::bind("127.0.0.1:0", Arc::clone(&svc))
        .expect("bind")
        .spawn();
    (svc, handle)
}

/// One plain HTTP exchange (Connection: close); returns (status, body).
fn http(addr: SocketAddr, method: &str, path: &str, body: &[u8]) -> (u16, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body).unwrap();
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read response");
    let header_end = response
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("complete header");
    let head = String::from_utf8_lossy(&response[..header_end]).into_owned();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    (status, response[header_end + 4..].to_vec())
}

fn text(body: &[u8]) -> String {
    String::from_utf8_lossy(body).into_owned()
}

fn json_u64(json: &str, field: &str) -> Option<u64> {
    let needle = format!("\"{field}\":");
    let at = json.find(&needle)? + needle.len();
    let digits: String = json[at..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

fn json_f64(json: &str, field: &str) -> Option<f64> {
    let needle = format!("\"{field}\":");
    let at = json.find(&needle)? + needle.len();
    let num: String = json[at..]
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.')
        .collect();
    num.parse().ok()
}

/// Open the event stream for `job` and read it to completion: returns
/// `(status, head, ndjson lines)` after the server ends the chunked
/// stream. One request, no polling.
fn read_event_stream(addr: SocketAddr, path: &str) -> (u16, String, Vec<String>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n")
                .as_bytes(),
        )
        .unwrap();
    let mut reader = BufReader::new(stream);
    let mut head = String::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read header line");
        if line.trim_end().is_empty() {
            break;
        }
        head.push_str(&line);
    }
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    if status != 200 {
        let mut rest = Vec::new();
        let _ = reader.read_to_end(&mut rest);
        return (status, head, vec![text(&rest)]);
    }
    assert!(
        head.to_lowercase().contains("transfer-encoding: chunked"),
        "stream is chunked: {head}"
    );
    // Decode chunks until the 0-chunk; collect complete NDJSON lines.
    let mut payload = String::new();
    loop {
        let mut size_line = String::new();
        reader.read_line(&mut size_line).expect("chunk size");
        let size_line = size_line.trim();
        if size_line.is_empty() {
            continue;
        }
        let size = usize::from_str_radix(size_line, 16)
            .unwrap_or_else(|_| panic!("bad chunk size {size_line:?}"));
        if size == 0 {
            break;
        }
        let mut chunk = vec![0u8; size];
        reader.read_exact(&mut chunk).expect("chunk body");
        payload.push_str(&String::from_utf8_lossy(&chunk));
    }
    // After the 0-chunk the server closes: nothing but the trailing
    // CRLF may follow.
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).expect("EOF after 0-chunk");
    assert!(
        rest.iter().all(|b| *b == b'\r' || *b == b'\n'),
        "no data after the terminating chunk"
    );
    let lines = payload
        .lines()
        .map(str::to_string)
        .filter(|l| !l.is_empty() && !l.contains("\"event\":\"heartbeat\""))
        .collect();
    (status, head, lines)
}

/// Acceptance: a multi-iteration CPU job streams ≥ 3 ordered progress
/// events plus its state transitions over one chunked response, and the
/// stream closes on the terminal state. The client never polls.
#[test]
fn events_stream_ordered_progress_and_close_on_done() {
    let (_svc, handle) = spawn_http(1);
    let addr = handle.addr();
    let gfa = small_gfa(1);
    let (status, body) = http(
        addr,
        "POST",
        "/v1/jobs?engine=cpu&iters=800&threads=1",
        gfa.as_bytes(),
    );
    assert_eq!(status, 202, "{}", text(&body));
    let job = json_u64(&text(&body), "job").unwrap();

    let (status, _, lines) = read_event_stream(addr, &format!("/v1/jobs/{job}/events"));
    assert_eq!(status, 200);
    assert!(lines.len() >= 5, "events: {lines:?}");

    // Sequence numbers are present, unique, and strictly increasing.
    let seqs: Vec<u64> = lines
        .iter()
        .map(|l| json_u64(l, "seq").unwrap_or_else(|| panic!("no seq in {l}")))
        .collect();
    assert!(
        seqs.windows(2).all(|w| w[0] < w[1]),
        "ordered seqs: {seqs:?}"
    );
    assert_eq!(seqs[0], 0, "stream starts at the birth event");

    // The log begins with queued, runs, and ends with done.
    assert!(lines[0].contains("\"state\":\"queued\""), "{}", lines[0]);
    assert!(
        lines.iter().any(|l| l.contains("\"state\":\"running\"")),
        "{lines:?}"
    );
    assert!(
        lines.last().unwrap().contains("\"state\":\"done\""),
        "terminal state closes the stream: {lines:?}"
    );

    // At least 3 progress events, monotonically increasing, ending at 1.
    let progress: Vec<f64> = lines
        .iter()
        .filter(|l| l.contains("\"event\":\"progress\""))
        .map(|l| json_f64(l, "progress").unwrap())
        .collect();
    assert!(progress.len() >= 3, "progress events: {progress:?}");
    assert!(
        progress.windows(2).all(|w| w[0] < w[1]),
        "monotonic progress: {progress:?}"
    );
    assert_eq!(*progress.last().unwrap(), 1.0);

    // Every event names the job.
    assert!(lines.iter().all(|l| json_u64(l, "job") == Some(job)));

    handle.stop();
}

/// `?from=<seq>` resumes mid-log: a reconnecting client sees exactly
/// the tail it missed.
#[test]
fn from_cursor_resumes_where_a_dropped_client_left_off() {
    let (_svc, handle) = spawn_http(1);
    let addr = handle.addr();
    let gfa = small_gfa(2);
    let (status, body) = http(
        addr,
        "POST",
        "/v1/jobs?engine=cpu&iters=300&threads=1",
        gfa.as_bytes(),
    );
    assert_eq!(status, 202);
    let job = json_u64(&text(&body), "job").unwrap();

    let (_, _, all) = read_event_stream(addr, &format!("/v1/jobs/{job}/events"));
    assert!(all.len() >= 3);
    let resume_at = all.len() as u64 - 2;
    let (status, _, tail) =
        read_event_stream(addr, &format!("/v1/jobs/{job}/events?from={resume_at}"));
    assert_eq!(status, 200);
    assert_eq!(tail.len(), 2, "only the tail replays: {tail:?}");
    assert_eq!(json_u64(&tail[0], "seq"), Some(resume_at));
    assert_eq!(tail.last(), all.last());

    handle.stop();
}

/// Cancelling a streaming job ends its stream with the cancelled state
/// event — the watcher learns the outcome without polling.
#[test]
fn cancellation_closes_the_stream_with_a_cancelled_event() {
    let (_svc, handle) = spawn_http(1);
    let addr = handle.addr();
    let gfa = small_gfa(3);
    let (status, body) = http(
        addr,
        "POST",
        "/v1/jobs?engine=cpu&iters=100000&threads=1",
        gfa.as_bytes(),
    );
    assert_eq!(status, 202);
    let job = json_u64(&text(&body), "job").unwrap();

    // Cancel from a second connection once the job is running.
    let canceller = std::thread::spawn(move || {
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            let (_, body) = http(addr, "GET", &format!("/v1/jobs/{job}"), b"");
            if text(&body).contains("\"state\":\"running\"") {
                break;
            }
            assert!(Instant::now() < deadline, "job never ran");
            std::thread::sleep(Duration::from_millis(5));
        }
        let (status, _) = http(addr, "POST", &format!("/v1/jobs/{job}/cancel"), b"");
        assert_eq!(status, 200);
    });
    let (status, _, lines) = read_event_stream(addr, &format!("/v1/jobs/{job}/events"));
    canceller.join().unwrap();
    assert_eq!(status, 200);
    assert!(
        lines.last().unwrap().contains("\"state\":\"cancelled\""),
        "stream ends with the cancellation: {lines:?}"
    );
    assert!(
        !lines.iter().any(|l| l.contains("\"state\":\"done\"")),
        "{lines:?}"
    );

    handle.stop();
}

/// A cache-hit job is born done: its stream replays the single `done`
/// event and closes immediately. Unknown jobs are a plain 404. Failed
/// jobs stream their error message.
#[test]
fn streams_for_cached_unknown_and_failed_jobs() {
    let (svc, handle) = spawn_http(1);
    let addr = handle.addr();
    let gfa = small_gfa(4);

    let (status, body) = http(
        addr,
        "POST",
        "/v1/jobs?engine=cpu&iters=4&threads=1",
        gfa.as_bytes(),
    );
    assert_eq!(status, 202);
    let first = json_u64(&text(&body), "job").unwrap();
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (_, body) = http(addr, "GET", &format!("/v1/jobs/{first}"), b"");
        if text(&body).contains("\"state\":\"done\"") {
            break;
        }
        assert!(Instant::now() < deadline);
        std::thread::sleep(Duration::from_millis(5));
    }

    // The identical submission is served from the layout cache.
    let (status, body) = http(
        addr,
        "POST",
        "/v1/jobs?engine=cpu&iters=4&threads=1",
        gfa.as_bytes(),
    );
    assert_eq!(status, 202);
    let cached_text = text(&body);
    assert!(cached_text.contains("\"cached\":true"), "{cached_text}");
    let cached = json_u64(&cached_text, "job").unwrap();
    let (status, _, lines) = read_event_stream(addr, &format!("/v1/jobs/{cached}/events"));
    assert_eq!(status, 200);
    assert_eq!(lines.len(), 1, "born-done log: {lines:?}");
    assert!(lines[0].contains("\"state\":\"done\""));

    // Unknown job: 404 before any stream starts.
    let (status, _, lines) = read_event_stream(addr, "/v1/jobs/99999/events");
    assert_eq!(status, 404, "{lines:?}");

    // A TTL-expired job streams failed + its error.
    let (_, body) = http(
        addr,
        "POST",
        "/v1/jobs?engine=cpu&iters=100000&threads=1&seed=8",
        gfa.as_bytes(),
    );
    let blocker = json_u64(&text(&body), "job").unwrap();
    let (_, body) = http(
        addr,
        "POST",
        "/v1/jobs?engine=cpu&iters=3&threads=1&seed=9&ttl_ms=30",
        gfa.as_bytes(),
    );
    let doomed = json_u64(&text(&body), "job").unwrap();
    std::thread::sleep(Duration::from_millis(60));
    let (status, _) = http(addr, "POST", &format!("/v1/jobs/{blocker}/cancel"), b"");
    assert_eq!(status, 200);
    svc.wait(doomed, Duration::from_secs(60)).unwrap();
    let (status, _, lines) = read_event_stream(addr, &format!("/v1/jobs/{doomed}/events"));
    assert_eq!(status, 200);
    let last = lines.last().unwrap();
    assert!(last.contains("\"state\":\"failed\""), "{lines:?}");
    assert!(last.contains("expired in queue"), "{last}");

    handle.stop();
}

/// Streams pin handler threads, so only half the pool may stream at
/// once: with `max_conns = 4` the third concurrent watcher is shed
/// with `503 + Retry-After` instead of exhausting the pool.
#[test]
fn excess_concurrent_streams_are_shed_with_503() {
    let svc = Arc::new(LayoutService::start(
        EngineRegistry::with_default_engines(),
        ServiceConfig {
            workers: 1,
            cache_entries: 16,
            ..ServiceConfig::default()
        },
    ));
    let handle = HttpServer::bind("127.0.0.1:0", Arc::clone(&svc))
        .expect("bind")
        .with_config(rapid_pangenome_layout::service::HttpConfig {
            max_conns: 4,
            ..Default::default()
        })
        .spawn();
    let addr = handle.addr();
    let gfa = small_gfa(6);
    let (status, body) = http(
        addr,
        "POST",
        "/v1/jobs?engine=cpu&iters=100000&threads=1",
        gfa.as_bytes(),
    );
    assert_eq!(status, 202);
    let job = json_u64(&text(&body), "job").unwrap();

    // Two watchers occupy the stream budget (max_conns/2 = 2): open
    // them and confirm each got its 200 + chunked header.
    let mut watchers = Vec::new();
    for _ in 0..2 {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        s.write_all(
            format!("GET /v1/jobs/{job}/events HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
                .as_bytes(),
        )
        .unwrap();
        let mut reader = BufReader::new(s);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("200"), "watcher admitted: {line}");
        watchers.push(reader);
    }

    // The third stream is shed, with Retry-After, not hung.
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(
        format!("GET /v1/jobs/{job}/events HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
            .as_bytes(),
    )
    .unwrap();
    let mut response = Vec::new();
    s.read_to_end(&mut response).unwrap();
    let response = text(&response);
    assert!(response.contains("503"), "{response}");
    assert!(response.contains("Retry-After:"), "{response}");
    assert!(response.contains("event streams"), "{response}");

    // Other routes still answer while both streams are live.
    let (status, _) = http(addr, "GET", "/v1/healthz", b"");
    assert_eq!(status, 200);

    // Cancel the job: both admitted watchers see the terminal event and
    // their streams close, freeing the budget.
    let (status, _) = http(addr, "POST", &format!("/v1/jobs/{job}/cancel"), b"");
    assert_eq!(status, 200);
    for mut reader in watchers {
        let mut rest = String::new();
        reader.read_to_string(&mut rest).expect("stream drains");
        assert!(rest.contains("\"state\":\"cancelled\""), "{rest}");
    }
    let (status, _, lines) = read_event_stream(addr, &format!("/v1/jobs/{job}/events"));
    assert_eq!(status, 200, "budget freed: {lines:?}");

    handle.stop();
}

/// Stopping the server is prompt even while an event stream is parked
/// waiting for a quiet job — the stream notices the stop flag instead
/// of waiting out its heartbeat interval.
#[test]
fn stop_is_prompt_with_an_active_event_stream() {
    let (_svc, handle) = spawn_http(1);
    let addr = handle.addr();
    let gfa = small_gfa(7);
    // A long job occupies the worker; a second queued job generates no
    // events, so its watcher parks.
    let (status, _) = http(
        addr,
        "POST",
        "/v1/jobs?engine=cpu&iters=100000&threads=1",
        gfa.as_bytes(),
    );
    assert_eq!(status, 202);
    let (status, body) = http(
        addr,
        "POST",
        "/v1/jobs?engine=cpu&iters=4&threads=1&seed=2",
        gfa.as_bytes(),
    );
    assert_eq!(status, 202);
    let quiet = json_u64(&text(&body), "job").unwrap();

    let mut watcher = TcpStream::connect(addr).unwrap();
    watcher
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    watcher
        .write_all(
            format!("GET /v1/jobs/{quiet}/events HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
                .as_bytes(),
        )
        .unwrap();
    // Wait for the stream to be admitted (200 + first replayed event).
    let mut reader = BufReader::new(watcher);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("200"), "{line}");

    let t0 = Instant::now();
    handle.stop();
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "stop() blocked {:?} behind a parked event stream",
        t0.elapsed()
    );
}

/// The legacy alias `GET /jobs/<id>/events` streams identically — the
/// event log is one resource under two paths.
#[test]
fn legacy_events_alias_matches_v1() {
    let (_svc, handle) = spawn_http(1);
    let addr = handle.addr();
    let gfa = small_gfa(5);
    let (status, body) = http(
        addr,
        "POST",
        "/layout?engine=cpu&iters=200&threads=1",
        gfa.as_bytes(),
    );
    assert_eq!(status, 202);
    let job = json_u64(&text(&body), "job").unwrap();
    let (status, _, v1_lines) = read_event_stream(addr, &format!("/v1/jobs/{job}/events"));
    assert_eq!(status, 200);
    let (status, _, legacy_lines) = read_event_stream(addr, &format!("/jobs/{job}/events"));
    assert_eq!(status, 200);
    assert_eq!(v1_lines, legacy_lines, "one log, two paths");

    handle.stop();
}
