//! Property-based integration tests (proptest) on cross-crate invariants.

use proptest::prelude::*;
use rapid_pangenome_layout::graph::layout2d::Layout2D;
use rapid_pangenome_layout::io::{read_lay, write_lay};
use rapid_pangenome_layout::metrics::{path_stress, sampled_path_stress, SamplingConfig};
use rapid_pangenome_layout::prelude::*;
use rapid_pangenome_layout::rng::{Rng64, SplitMix64, StatePool, Xoshiro256Plus};
use rapid_pangenome_layout::workloads::{generate as gen_graph, PangenomeSpec};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any generated graph round-trips through GFA bit-identically at the
    /// lean-structure level.
    #[test]
    fn gfa_round_trip_any_graph(sites in 5usize..120, haps in 1usize..6, seed in 0u64..1000) {
        let g = gen_graph(&PangenomeSpec::basic("p", sites, haps, seed));
        let again = parse_gfa(&write_gfa(&g)).unwrap();
        let a = LeanGraph::from_graph(&g);
        let b = LeanGraph::from_graph(&again);
        prop_assert_eq!(a.node_len, b.node_len);
        prop_assert_eq!(a.step_node, b.step_node);
        prop_assert_eq!(a.step_pos, b.step_pos);
        prop_assert_eq!(a.step_rev, b.step_rev);
    }

    /// Any layout round-trips through the .lay binary format exactly.
    #[test]
    fn lay_round_trip_any_layout(coords in prop::collection::vec(-1e12f64..1e12, 0..64)) {
        let n = coords.len() / 2 * 2; // even prefix
        let xs: Vec<f64> = coords[..n].to_vec();
        let ys: Vec<f64> = coords[..n].iter().map(|v| -v).collect();
        let layout = Layout2D::from_flat(xs, ys);
        prop_assert_eq!(read_lay(&write_lay(&layout)).unwrap(), layout);
    }

    /// Path-index positions are strictly increasing prefix sums along
    /// every path, ending at the path's nucleotide length.
    #[test]
    fn path_positions_are_prefix_sums(sites in 5usize..100, seed in 0u64..500) {
        let g = gen_graph(&PangenomeSpec::basic("p", sites, 3, seed));
        let idx = PathIndex::build(&g);
        for p in 0..g.path_count() as u32 {
            let mut expect = 0u64;
            for (i, h) in idx.handles(p).iter().enumerate() {
                prop_assert_eq!(idx.pos_at(p, i), expect);
                expect += g.node_len(h.id()) as u64;
            }
            prop_assert_eq!(idx.path_nuc_len(p), expect);
        }
    }

    /// Scaling a perfect single-path line embedding by s yields exact
    /// path stress (s−1)² — for both the exact and sampled metrics.
    #[test]
    fn stress_scaling_identity(s in 0.25f64..4.0, n in 5usize..40) {
        use rapid_pangenome_layout::graph::model::{GraphBuilder, Handle};
        let mut b = GraphBuilder::new();
        let ids: Vec<u32> = (0..n).map(|i| b.add_node_len(1 + (i as u32 % 4))).collect();
        b.add_path("p", ids.iter().map(|&i| Handle::forward(i)).collect());
        b.ensure_path_edges();
        let lean = LeanGraph::from_graph(&b.build());
        let mut layout = Layout2D::zeros(lean.node_count());
        for i in 0..lean.steps_in(0) {
            let st = lean.flat_step(0, i);
            let node = lean.node_of_flat(st);
            layout.set(node, false, lean.endpoint_pos_of_flat(st, false) as f64 * s, 0.0);
            layout.set(node, true, lean.endpoint_pos_of_flat(st, true) as f64 * s, 0.0);
        }
        let expect = (s - 1.0) * (s - 1.0);
        let exact = path_stress(&layout, &lean).stress;
        prop_assert!((exact - expect).abs() < 1e-9, "exact {} vs {}", exact, expect);
        let sampled = sampled_path_stress(&layout, &lean, SamplingConfig::default()).mean;
        prop_assert!((sampled - expect).abs() < 1e-9, "sampled {} vs {}", sampled, expect);
    }

    /// State pools in both layouts generate identical streams for any
    /// (size, seed) — the coalesced-random-states functional invariant.
    #[test]
    fn state_pool_layout_equivalence(n in 1usize..80, seed in 0u64..1000, draws in 1usize..40) {
        let mut aos = StatePool::aos(n, seed);
        let mut soa = StatePool::coalesced(n, seed);
        for _ in 0..draws {
            for i in 0..n {
                prop_assert_eq!(aos.next_u32(i), soa.next_u32(i));
            }
        }
    }

    /// gen_below never exceeds its bound and hits both halves of the
    /// range for non-trivial bounds.
    #[test]
    fn gen_below_bounds(seed in 0u64..1000, bound in 2u64..1_000_000) {
        let mut rng = Xoshiro256Plus::seed_from_u64(seed);
        let mut low = false;
        let mut high = false;
        for _ in 0..256 {
            let x = rng.gen_below(bound);
            prop_assert!(x < bound);
            if x < bound / 2 { low = true; } else { high = true; }
        }
        prop_assert!(low && high, "256 draws should cover both halves");
    }

    /// SplitMix64 streams from distinct seeds differ somewhere early.
    #[test]
    fn splitmix_seed_sensitivity(a in 0u64..10_000, b in 0u64..10_000) {
        prop_assume!(a != b);
        let mut ra = SplitMix64::new(a);
        let mut rb = SplitMix64::new(b);
        let same = (0..8).all(|_| ra.next() == rb.next());
        prop_assert!(!same);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The CPU engine never produces non-finite coordinates, for any
    /// small graph and any seed.
    #[test]
    fn cpu_engine_always_finite(sites in 10usize..80, seed in 0u64..200) {
        let g = gen_graph(&PangenomeSpec::basic("p", sites, 3, seed));
        let lean = LeanGraph::from_graph(&g);
        let cfg = LayoutConfig { iter_max: 6, threads: 2, seed, ..Default::default() };
        let (layout, _) = CpuEngine::new(cfg).run(&lean);
        prop_assert!(layout.all_finite());
    }
}
