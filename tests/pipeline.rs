//! End-to-end pipeline integration tests: generator → GFA → lean graph →
//! layout engines → metrics → persistence → rendering.

use rapid_pangenome_layout::core::init::init_random;
use rapid_pangenome_layout::io::{load_lay, save_lay};
use rapid_pangenome_layout::metrics::path_stress;
use rapid_pangenome_layout::prelude::*;
use rapid_pangenome_layout::workloads::PangenomeSpec as Spec;

fn small_graph(seed: u64) -> VariationGraph {
    let mut spec = Spec::basic("it", 250, 6, seed);
    spec.sv_sites = 2;
    spec.loop_sites = 1;
    generate(&spec)
}

#[test]
fn generate_layout_score_render_persist() {
    let graph = small_graph(1);
    let lean = LeanGraph::from_graph(&graph);

    // Layout.
    let cfg = LayoutConfig {
        iter_max: 15,
        threads: 2,
        seed: 5,
        ..Default::default()
    };
    let (layout, report) = CpuEngine::new(cfg).run(&lean);
    assert!(layout.all_finite());
    assert!(report.terms_applied > 1000);

    // Quality: converged layouts score well on both metrics, and the
    // sampled estimator tracks the exact one.
    let exact = path_stress(&layout, &lean);
    let sampled = sampled_path_stress(&layout, &lean, SamplingConfig::default());
    assert!(exact.stress < 1.0, "exact stress {}", exact.stress);
    assert!(sampled.mean < 1.0, "sampled stress {}", sampled.mean);
    let ratio = sampled.mean / exact.stress.max(1e-12);
    assert!((0.1..10.0).contains(&ratio), "tracking ratio {ratio}");

    // Persistence round trip.
    let dir = std::env::temp_dir().join("rpl_pipeline_test");
    std::fs::create_dir_all(&dir).unwrap();
    let lay_path = dir.join("x.lay");
    save_lay(&layout, &lay_path).unwrap();
    let back = load_lay(&lay_path).unwrap();
    assert_eq!(back, layout);
    std::fs::remove_file(&lay_path).ok();

    // Rendering.
    let svg = to_svg(&layout, &lean, &DrawOptions::default());
    assert_eq!(svg.matches("<line ").count(), lean.node_count());
    let img = rasterize(&layout, &lean, 256);
    assert!(img.ink_fraction() > 0.0005);
}

#[test]
fn gfa_round_trip_preserves_layout_semantics() {
    // Writing a generated graph to GFA and re-parsing must preserve the
    // exact layout problem: same d_ref structure, same stress for the
    // same layout.
    let graph = small_graph(2);
    let text = write_gfa(&graph);
    let reparsed = parse_gfa(&text).expect("round trip");
    let lean_a = LeanGraph::from_graph(&graph);
    let lean_b = LeanGraph::from_graph(&reparsed);
    assert_eq!(lean_a.node_len, lean_b.node_len);
    assert_eq!(lean_a.step_node, lean_b.step_node);
    assert_eq!(lean_a.step_pos, lean_b.step_pos);

    let cfg = LayoutConfig {
        iter_max: 8,
        threads: 1,
        seed: 3,
        ..Default::default()
    };
    let (layout, _) = CpuEngine::new(cfg).run(&lean_a);
    let sa = path_stress(&layout, &lean_a).stress;
    let sb = path_stress(&layout, &lean_b).stress;
    assert!((sa - sb).abs() < 1e-12, "{sa} vs {sb}");
}

#[test]
fn path_index_agrees_with_lean_view() {
    let graph = small_graph(3);
    let idx = PathIndex::build(&graph);
    let lean = LeanGraph::from_graph(&graph);
    assert_eq!(idx.total_steps(), lean.total_steps());
    for p in 0..graph.path_count() as u32 {
        assert_eq!(idx.steps_in(p), lean.steps_in(p));
        for i in 0..idx.steps_in(p) {
            let s = lean.flat_step(p, i);
            assert_eq!(idx.pos_at(p, i), lean.pos_of_flat(s));
            assert_eq!(idx.handle_at(p, i).id(), lean.node_of_flat(s));
        }
    }
}

#[test]
fn all_three_engines_improve_the_same_random_start() {
    let graph = small_graph(4);
    let lean = LeanGraph::from_graph(&graph);
    let total: f64 = lean.node_len.iter().map(|&l| l as f64).sum();
    let random = init_random(&lean, total, 9);
    let before = path_stress(&random, &lean).stress;

    let lcfg = LayoutConfig {
        iter_max: 15,
        threads: 2,
        seed: 7,
        ..Default::default()
    };

    // CPU engine from the random start.
    let (cpu_layout, _) = CpuEngine::new(lcfg.clone()).run_from(&lean, &random);
    let cpu_q = path_stress(&cpu_layout, &lean).stress;
    assert!(cpu_q < before / 5.0, "cpu {cpu_q} vs random {before}");

    // Batch engine (linear init internally — still must land far below
    // the random-layout stress).
    let (batch_layout, _) = BatchEngine::new(lcfg.clone(), 512).run(&lean);
    let batch_q = path_stress(&batch_layout, &lean).stress;
    assert!(batch_q < before / 5.0, "batch {batch_q} vs random {before}");

    // GPU simulator.
    let (gpu_layout, _) =
        GpuEngine::new(GpuSpec::a6000(), lcfg, KernelConfig::optimized(0.01)).run(&lean);
    let gpu_q = path_stress(&gpu_layout, &lean).stress;
    assert!(gpu_q < before / 5.0, "gpu {gpu_q} vs random {before}");
}

#[test]
fn layout_tsv_export_has_all_endpoints() {
    let graph = small_graph(5);
    let lean = LeanGraph::from_graph(&graph);
    let cfg = LayoutConfig {
        iter_max: 4,
        threads: 1,
        ..Default::default()
    };
    let (layout, _) = CpuEngine::new(cfg).run(&lean);
    let tsv = layout_to_tsv(&layout);
    assert_eq!(tsv.lines().count(), 1 + 2 * lean.node_count());
}
