//! End-to-end tests of per-client HTTP rate limiting: over-budget
//! clients get `429 Too Many Requests` + `Retry-After`, the rejections
//! are visible in `/metrics` and `/stats`, and a server without
//! `--rate-limit` never throttles.

use rapid_pangenome_layout::service::{
    EngineRegistry, HttpConfig, HttpServer, LayoutService, ServiceConfig,
};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn small_service() -> Arc<LayoutService> {
    Arc::new(LayoutService::start(
        EngineRegistry::with_default_engines(),
        ServiceConfig {
            workers: 1,
            cache_entries: 4,
            ..ServiceConfig::default()
        },
    ))
}

fn spawn(
    service: &Arc<LayoutService>,
    cfg: HttpConfig,
) -> rapid_pangenome_layout::service::ServerHandle {
    HttpServer::bind("127.0.0.1:0", Arc::clone(service))
        .expect("bind ephemeral")
        .with_config(cfg)
        .spawn()
}

/// Read one HTTP response (status + raw head + Content-Length body)
/// from a keep-alive connection.
fn read_response(stream: &mut TcpStream) -> (u16, String, Vec<u8>) {
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        stream.read_exact(&mut byte).expect("read header byte");
        head.push(byte[0]);
        assert!(head.len() < 64 * 1024, "runaway response head");
    }
    let head = String::from_utf8_lossy(&head).into_owned();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status code in {head:?}"));
    let content_length: usize = head
        .lines()
        .find_map(|l| {
            let (k, v) = l.split_once(':')?;
            k.eq_ignore_ascii_case("content-length")
                .then(|| v.trim().parse().ok())?
        })
        .unwrap_or(0);
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body).expect("read body");
    (status, head, body)
}

fn send_get(stream: &mut TcpStream, path: &str) {
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: 0\r\n\r\n")
                .as_bytes(),
        )
        .unwrap();
    stream.flush().unwrap();
}

#[test]
fn over_budget_clients_get_429_with_retry_after() {
    let service = small_service();
    let handle = spawn(
        &service,
        HttpConfig {
            rate_limit: 5.0, // 5 req/s per IP, burst of 5
            ..HttpConfig::default()
        },
    );
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();

    let mut ok = 0usize;
    let mut limited = 0usize;
    let mut saw_retry_after = false;
    for _ in 0..15 {
        send_get(&mut stream, "/healthz");
        let (status, head, body) = read_response(&mut stream);
        match status {
            200 => ok += 1,
            429 => {
                limited += 1;
                saw_retry_after |= head.contains("Retry-After:");
                assert!(
                    String::from_utf8_lossy(&body).contains("rate limit"),
                    "429 explains itself"
                );
            }
            other => panic!("unexpected status {other}: {head}"),
        }
    }
    assert!(ok >= 5, "the burst allowance passes ({ok} ok)");
    assert!(limited >= 5, "the flood is throttled ({limited} limited)");
    assert!(saw_retry_after, "429s advertise Retry-After");

    // After a refill pause, the same client is served again — and the
    // rejections are visible in /metrics and /stats.
    std::thread::sleep(Duration::from_millis(1200));
    send_get(&mut stream, "/metrics");
    let (status, _, body) = read_response(&mut stream);
    assert_eq!(status, 200, "bucket refilled");
    let metrics = String::from_utf8_lossy(&body).into_owned();
    let counted: u64 = metrics
        .lines()
        .find_map(|l| l.strip_prefix("pgl_http_rate_limited_total "))
        .and_then(|v| v.trim().parse().ok())
        .expect("rate-limited counter exposed");
    assert_eq!(counted, limited as u64, "{metrics}");

    std::thread::sleep(Duration::from_millis(400));
    send_get(&mut stream, "/stats");
    let (status, _, body) = read_response(&mut stream);
    assert_eq!(status, 200);
    let stats = String::from_utf8_lossy(&body).into_owned();
    assert!(
        stats.contains(&format!("\"rate_limited_429\":{limited}")),
        "{stats}"
    );
    drop(stream);
    handle.stop();
}

#[test]
fn rate_limited_requests_keep_the_connection_alive() {
    let service = small_service();
    let handle = spawn(
        &service,
        HttpConfig {
            rate_limit: 1.0,
            ..HttpConfig::default()
        },
    );
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    send_get(&mut stream, "/healthz");
    let (status, _, _) = read_response(&mut stream);
    assert_eq!(status, 200);
    // The throttled request is answered on the same connection, which
    // stays usable for the client's (eventual) retry.
    send_get(&mut stream, "/healthz");
    let (status, head, _) = read_response(&mut stream);
    assert_eq!(status, 429);
    assert!(
        head.to_lowercase().contains("connection: keep-alive"),
        "429 does not hang up: {head}"
    );
    std::thread::sleep(Duration::from_millis(1100));
    send_get(&mut stream, "/healthz");
    let (status, _, _) = read_response(&mut stream);
    assert_eq!(status, 200, "retry on the same connection succeeds");
    drop(stream);
    handle.stop();
}

#[test]
fn disabled_rate_limit_never_throttles() {
    let service = small_service();
    let handle = spawn(&service, HttpConfig::default()); // rate_limit: 0.0
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    for _ in 0..20 {
        send_get(&mut stream, "/healthz");
        let (status, _, _) = read_response(&mut stream);
        assert_eq!(status, 200);
    }
    send_get(&mut stream, "/metrics");
    let (_, _, body) = read_response(&mut stream);
    assert!(
        String::from_utf8_lossy(&body).contains("pgl_http_rate_limited_total 0"),
        "nothing was throttled"
    );
    drop(stream);
    handle.stop();
}
