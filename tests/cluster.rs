//! End-to-end tests of the cluster tier: a coordinator routing jobs
//! across two in-process `pgl serve`-shaped workers.
//!
//! The two load-bearing claims, verified over real sockets:
//!
//! * **Consistent-hash routing keeps caches hot** — repeated
//!   by-reference submits for one graph land on the same worker, so
//!   the fleet-wide parse count stays at 1 no matter how many jobs run.
//! * **Worker death is drain-and-requeue, never silent loss** — kill
//!   the worker that owns the graph and every accepted job still
//!   reaches a terminal state, completing on the survivor.
//! * **Coordinator death loses no accepted work** — with a journal
//!   armed, kill the coordinator with jobs still queued, restart it on
//!   the same `--journal-dir`, and every accepted job replays and
//!   reaches a terminal state once workers join.

use rapid_pangenome_layout::prelude::*;
use rapid_pangenome_layout::service::{
    spawn_heartbeat, ClusterRole, Coordinator, CoordinatorConfig, ServerHandle,
};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One blocking HTTP/1.1 exchange; returns (status, body).
fn http(addr: SocketAddr, method: &str, path: &str, body: &[u8]) -> (u16, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body).unwrap();
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read response");
    let header_end = response
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("complete header");
    let head = String::from_utf8_lossy(&response[..header_end]).into_owned();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    (status, response[header_end + 4..].to_vec())
}

fn body_text(body: &[u8]) -> String {
    String::from_utf8_lossy(body).into_owned()
}

/// Pull `"field":<digits>` out of a flat JSON body.
fn json_u64(json: &str, field: &str) -> Option<u64> {
    let needle = format!("\"{field}\":");
    let at = json.find(&needle)? + needle.len();
    let digits: String = json[at..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

/// Pull `"field":"<string>"` out of a flat JSON body.
fn json_string(json: &str, field: &str) -> Option<String> {
    let needle = format!("\"{field}\":\"");
    let at = json.find(&needle)? + needle.len();
    Some(json[at..].chars().take_while(|c| *c != '"').collect())
}

/// Poll `check` until it returns `Some` or the deadline passes.
fn wait_for<T>(what: &str, timeout: Duration, mut check: impl FnMut() -> Option<T>) -> T {
    let deadline = Instant::now() + timeout;
    loop {
        if let Some(v) = check() {
            return v;
        }
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// An in-process worker: a one-thread layout service behind an HTTP
/// front end, enrolled in the fleet at `coordinator`.
struct Worker {
    addr: SocketAddr,
    server: Option<ServerHandle>,
    beat_stop: Arc<AtomicBool>,
}

fn spawn_worker(coordinator: SocketAddr) -> Worker {
    let service = Arc::new(LayoutService::start(
        EngineRegistry::with_default_engines(),
        ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        },
    ));
    let role = ClusterRole::worker(coordinator.to_string());
    let server = HttpServer::bind("127.0.0.1:0", service)
        .expect("bind worker")
        .with_config(HttpConfig {
            max_conns: 4,
            ..HttpConfig::default()
        })
        .with_role(Arc::clone(&role));
    let handle = server.spawn();
    let addr = handle.addr();
    let beat_stop = Arc::new(AtomicBool::new(false));
    let _ = spawn_heartbeat(
        coordinator.to_string(),
        addr.to_string(),
        Duration::from_millis(100),
        role,
        Arc::clone(&beat_stop),
    );
    Worker {
        addr,
        server: Some(handle),
        beat_stop,
    }
}

impl Worker {
    /// Kill the worker outright: stop heartbeating, stop serving.
    fn kill(&mut self) {
        self.beat_stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.server.take() {
            handle.stop();
        }
    }
}

impl Drop for Worker {
    fn drop(&mut self) {
        self.kill();
    }
}

fn submit_by_ref(coord: SocketAddr, graph: &str) -> u64 {
    let path = format!("/v1/jobs?graph={graph}&engine=cpu&iters=4&threads=1&seed=7");
    let (status, body) = http(coord, "POST", &path, b"");
    assert_eq!(status, 202, "{}", body_text(&body));
    json_u64(&body_text(&body), "job").expect("job ticket")
}

/// Poll a job on the coordinator until it is terminal; returns its
/// final state.
fn wait_terminal(coord: SocketAddr, job: u64) -> String {
    wait_for(
        &format!("job {job} terminal"),
        Duration::from_secs(30),
        || {
            let (status, body) = http(coord, "GET", &format!("/v1/jobs/{job}"), b"");
            assert_eq!(status, 200, "{}", body_text(&body));
            let state = json_string(&body_text(&body), "state").expect("state field");
            ["done", "failed", "cancelled", "expired"]
                .contains(&state.as_str())
                .then_some(state)
        },
    )
}

#[test]
fn fleet_routes_by_graph_hash_and_survives_worker_death() {
    let coordinator = Coordinator::bind(
        "127.0.0.1:0",
        CoordinatorConfig {
            heartbeat: Duration::from_millis(100),
            ..CoordinatorConfig::default()
        },
    )
    .expect("bind coordinator");
    let coord = coordinator.local_addr();
    let _coord_handle = coordinator.spawn();

    let mut workers = [spawn_worker(coord), spawn_worker(coord)];

    // Both workers register and report as workers in their own healthz.
    wait_for("both workers alive", Duration::from_secs(10), || {
        let (status, body) = http(coord, "GET", "/v1/healthz", b"");
        assert_eq!(status, 200);
        let text = body_text(&body);
        assert!(text.contains("\"role\":\"coordinator\""), "{text}");
        (json_u64(&text, "workers_alive") == Some(2)).then_some(())
    });
    let (status, body) = http(workers[0].addr, "GET", "/v1/healthz", b"");
    assert_eq!(status, 200);
    let text = body_text(&body);
    assert!(text.contains("\"role\":\"worker\""), "{text}");
    assert!(
        text.contains(&format!("\"coordinator\":\"{coord}\"")),
        "{text}"
    );

    // Upload once to the coordinator; every submit below is by-reference.
    let gfa = write_gfa(&generate(&PangenomeSpec::basic("cluster", 40, 3, 5)));
    let (status, body) = http(coord, "POST", "/v1/graphs", gfa.as_bytes());
    assert_eq!(status, 201, "{}", body_text(&body));
    let graph = json_string(&body_text(&body), "graph_id").expect("graph id");

    // Same graph hash ⇒ same ring owner ⇒ one worker parses, once.
    let jobs: Vec<u64> = (0..3).map(|_| submit_by_ref(coord, &graph)).collect();
    for &job in &jobs {
        assert_eq!(wait_terminal(coord, job), "done");
    }
    let (status, body) = http(coord, "GET", "/v1/stats", b"");
    assert_eq!(status, 200);
    let stats = body_text(&body);
    let fleet = stats.split("\"fleet\":").nth(1).expect("fleet block");
    assert_eq!(
        json_u64(fleet, "parses"),
        Some(1),
        "all same-graph jobs must land on one worker: {stats}"
    );

    // A finished job's event stream replays through the proxy and ends
    // with the terminal state under the coordinator's job id.
    let (status, body) = http(coord, "GET", &format!("/v1/jobs/{}/events", jobs[0]), b"");
    assert_eq!(status, 200);
    let events = body_text(&body);
    assert!(events.contains("\"state\":\"done\""), "{events}");
    assert!(events.contains(&format!("\"job\":{}", jobs[0])), "{events}");

    // Kill the worker that owns the graph (the one that parsed it).
    let owner = wait_for("finding the parsing worker", Duration::from_secs(5), || {
        workers.iter().position(|w| {
            let (status, body) = http(w.addr, "GET", "/v1/stats", b"");
            status == 200 && {
                let graphs = body_text(&body);
                let graphs = graphs
                    .split("\"graphs\":")
                    .nth(1)
                    .unwrap_or_default()
                    .to_string();
                json_u64(&graphs, "parses") == Some(1)
            }
        })
    });
    workers[owner].kill();

    // The next submit must still complete — requeued and re-routed to
    // the survivor, which parses the pushed graph itself.
    let failover_job = submit_by_ref(coord, &graph);
    assert_eq!(wait_terminal(coord, failover_job), "done");

    // No accepted job may be lost: everything submitted is terminal.
    for &job in jobs.iter().chain([&failover_job]) {
        let (status, body) = http(coord, "GET", &format!("/v1/jobs/{job}"), b"");
        assert_eq!(status, 200);
        let state = json_string(&body_text(&body), "state").expect("state");
        assert!(
            ["done", "failed", "cancelled", "expired"].contains(&state.as_str()),
            "job {job} stuck in {state}"
        );
    }

    // The death was observed and the fleet shrank to one alive worker.
    let (status, body) = http(coord, "GET", "/v1/healthz", b"");
    assert_eq!(status, 200);
    let text = body_text(&body);
    assert_eq!(json_u64(&text, "workers_alive"), Some(1), "{text}");
}

#[test]
fn coordinator_restart_recovers_journaled_jobs() {
    let journal_dir = std::env::temp_dir().join(format!(
        "pgl_cluster_journal_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&journal_dir);

    let config = || CoordinatorConfig {
        heartbeat: Duration::from_millis(100),
        journal_dir: Some(journal_dir.clone()),
        ..CoordinatorConfig::default()
    };

    // First life: accept a graph and three jobs, with no workers to
    // run them — everything is queued when the coordinator dies.
    let coordinator = Coordinator::bind("127.0.0.1:0", config()).expect("bind coordinator");
    let coord = coordinator.local_addr();
    let handle = coordinator.spawn();

    let gfa = write_gfa(&generate(&PangenomeSpec::basic("journal", 40, 3, 5)));
    let (status, body) = http(coord, "POST", "/v1/graphs", gfa.as_bytes());
    assert_eq!(status, 201, "{}", body_text(&body));
    let graph = json_string(&body_text(&body), "graph_id").expect("graph id");
    let jobs: Vec<u64> = (0..3).map(|_| submit_by_ref(coord, &graph)).collect();
    let (status, body) = http(coord, "GET", &format!("/v1/jobs/{}", jobs[0]), b"");
    assert_eq!(status, 200);
    assert_eq!(
        json_string(&body_text(&body), "state").as_deref(),
        Some("queued")
    );
    handle.stop();

    // Second life, same journal dir, fresh port: the journal replays.
    let coordinator = Coordinator::bind("127.0.0.1:0", config()).expect("rebind coordinator");
    let coord = coordinator.local_addr();
    let _handle = coordinator.spawn();

    let (status, body) = http(coord, "GET", "/v1/healthz", b"");
    assert_eq!(status, 200);
    let text = body_text(&body);
    assert_eq!(json_u64(&text, "epoch"), Some(2), "{text}");
    assert_eq!(json_u64(&text, "replayed"), Some(3), "{text}");

    // The graph catalog survived too: by-reference submits need no
    // re-upload (the GFA reloads from the vault spill on demand).
    let extra = submit_by_ref(coord, &graph);

    // Workers join the new incarnation and drain everything accepted
    // by either life of the coordinator.
    let _workers = [spawn_worker(coord), spawn_worker(coord)];
    for &job in jobs.iter().chain([&extra]) {
        assert_eq!(wait_terminal(coord, job), "done", "job {job}");
    }

    let (status, body) = http(coord, "GET", "/v1/metrics", b"");
    assert_eq!(status, 200);
    let metrics = body_text(&body);
    assert!(
        metrics.contains("pgl_coord_journal_recovered_jobs_total 3"),
        "{metrics}"
    );
    assert!(metrics.contains("pgl_coord_journal_epoch 2"), "{metrics}");

    let _ = std::fs::remove_dir_all(&journal_dir);
}

#[test]
fn jobs_queue_without_workers_and_cancel_cleanly() {
    let coordinator =
        Coordinator::bind("127.0.0.1:0", CoordinatorConfig::default()).expect("bind coordinator");
    let coord = coordinator.local_addr();
    let _handle = coordinator.spawn();

    // By-reference submits for unknown graphs are refused up front.
    let (status, body) = http(
        coord,
        "POST",
        "/v1/jobs?graph=00000000000000000000000000000000&engine=cpu",
        b"",
    );
    assert_eq!(status, 404, "{}", body_text(&body));

    let gfa = write_gfa(&generate(&PangenomeSpec::basic("queue", 30, 2, 4)));
    let (status, body) = http(coord, "POST", "/v1/graphs", gfa.as_bytes());
    assert_eq!(status, 201, "{}", body_text(&body));
    let graph = json_string(&body_text(&body), "graph_id").unwrap();

    // Uploading the same bytes again dedups.
    let (status, body) = http(coord, "POST", "/v1/graphs", gfa.as_bytes());
    assert_eq!(status, 200);
    assert!(body_text(&body).contains("\"dedup\":true"));

    // With no workers the job waits (queued), then cancels locally.
    let job = submit_by_ref(coord, &graph);
    let (status, body) = http(coord, "GET", &format!("/v1/jobs/{job}"), b"");
    assert_eq!(status, 200);
    assert_eq!(
        json_string(&body_text(&body), "state").as_deref(),
        Some("queued")
    );
    let (status, _) = http(coord, "POST", &format!("/v1/jobs/{job}/cancel"), b"");
    assert_eq!(status, 200);
    assert_eq!(wait_terminal(coord, job), "cancelled");

    // Unknown query parameters fail loudly, like the worker /v1 surface.
    let (status, body) = http(
        coord,
        "POST",
        &format!("/v1/jobs?graph={graph}&bogus=1"),
        b"",
    );
    assert_eq!(status, 400, "{}", body_text(&body));
}
