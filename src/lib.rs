//! # rapid-pangenome-layout
//!
//! A from-scratch Rust reproduction of **"Rapid GPU-Based Pangenome Graph
//! Layout"** (Li et al., SC 2024): path-guided stochastic-gradient-descent
//! layout of variation graphs, the paper's three GPU kernel optimizations
//! evaluated on a purpose-built GPU microarchitecture simulator, and the
//! *sampled path stress* layout-quality metric.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! | Crate | Role |
//! |---|---|
//! | [`graph`] (`pangraph`) | variation graphs, GFA I/O, path index, lean layout structure |
//! | [`rng`] (`pgrng`) | Xoshiro256+, XORWOW, Zipf sampling, coalesced state pools |
//! | [`core`] (`layout-core`) | Hogwild CPU engine + PyTorch-style batch engine |
//! | [`gpu`] (`gpu-sim`) | warp-accurate GPU simulator and kernels |
//! | [`metrics`] (`pgmetrics`) | path stress and sampled path stress |
//! | [`workloads`] | synthetic HPRC-like pangenome generators |
//! | [`render`] (`draw`) | SVG / PPM rendering |
//! | [`io`] (`pgio`) | `.lay` files and TSV export |
//! | [`service`] (`pgl-service`) | multi-graph job orchestration, layout cache, HTTP serving |
//!
//! ## Quickstart
//!
//! ```
//! use rapid_pangenome_layout::prelude::*;
//!
//! // Build the paper's Fig. 1 toy graph, lay it out, and score it.
//! let graph = fig1_graph();
//! let lean = LeanGraph::from_graph(&graph);
//! let engine = CpuEngine::new(LayoutConfig { threads: 2, ..Default::default() });
//! let (layout, _report) = engine.run(&lean);
//! let quality = sampled_path_stress(&layout, &lean, SamplingConfig::default());
//! assert!(quality.mean.is_finite());
//! ```

pub use draw as render;
pub use gpu_sim as gpu;
pub use layout_core as core;
pub use pangraph as graph;
pub use pgio as io;
pub use pgl_service as service;
pub use pgmetrics as metrics;
pub use pgrng as rng;
pub use workloads;

/// The most common imports in one place.
pub mod prelude {
    pub use draw::{rasterize, to_svg, DrawOptions};
    pub use gpu_sim::{GpuEngine, GpuSpec, KernelConfig};
    pub use layout_core::{
        order_quality, path_sgd_order, BatchEngine, CpuEngine, DataLayout, LayoutConfig,
        LayoutControl, LayoutEngine, PairSelection,
    };
    pub use pangraph::{
        fig1_graph, parse_gfa, write_gfa, GraphBuilder, Handle, Layout2D, LeanGraph, PathIndex,
        VariationGraph,
    };
    pub use pgio::{layout_to_tsv, read_lay, write_lay};
    pub use pgl_service::{
        ContentHash, EngineRegistry, EventKind, GraphSpec, GraphStore, HttpConfig, HttpServer,
        JobRequest, JobSpec, JobState, LayoutService, Priority, ServiceConfig,
    };
    pub use pgmetrics::{path_stress, sampled_path_stress, SampledStress, SamplingConfig};
    pub use workloads::{generate, hla_drb1, hprc_catalog, mhc_like, PangenomeSpec};
}

#[cfg(test)]
mod facade_tests {
    use super::prelude::*;

    #[test]
    fn prelude_names_resolve_and_compose() {
        let lean = LeanGraph::from_graph(&fig1_graph());
        let cfg = LayoutConfig {
            threads: 1,
            iter_max: 4,
            ..Default::default()
        };
        let engine = CpuEngine::new(cfg);
        let (layout, _) = engine.run(&lean);
        assert!(layout.all_finite());
        let svg = to_svg(&layout, &lean, &DrawOptions::default());
        assert!(svg.contains("<svg"));
    }
}
